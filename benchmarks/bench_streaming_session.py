#!/usr/bin/env python3
"""Streamed vs buffered session verification at (near-)paper scale.

The paper's verifier holds all nb = 262,144 Σ-OR coin proofs at once;
the streaming :class:`repro.api.Session` folds them chunk by chunk into
an evolving transcript + running Line 12 products, so peak memory is
O(chunk).  This script measures both modes — proofs verified per second
and the tracemalloc allocation peak (the in-process stand-in for peak
verifier RSS; ``ru_maxrss`` is also recorded for the whole process) —
and emits ``BENCH_streaming.json``, the checked-in evidence for the
acceptance bar: a streamed nb >= 65,536 run peaks below 25% of the
buffered path.

Usage:
    python benchmarks/bench_streaming_session.py              # nb = 65,536
    REPRO_STREAM_NB=262144 python benchmarks/bench_streaming_session.py
    REPRO_STREAM_NB=2048 python benchmarks/bench_streaming_session.py  # quick

The shared driver lives in :func:`repro.bench.runner.run_streaming`
(also reachable as ``python -m repro streaming``, which defaults to a
scaled-down nb).
"""

import os
import resource
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.format import print_table  # noqa: E402
from repro.bench.runner import run_streaming  # noqa: E402


def main() -> int:
    nb = int(os.environ.get("REPRO_STREAM_NB", "65536"))
    rows = run_streaming(nb=nb, emit_json=True)
    print_table(rows[:-1], title=f"== streamed vs buffered session (nb={nb}) ==")
    print(f"process ru_maxrss: "
          f"{resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024:.0f} MB")
    ratio = rows[-1]["peak_mem_ratio"]
    print(f"\nstreamed/buffered peak memory ratio: {ratio:.3f}")
    if ratio >= 0.25:
        print("FAIL: streamed peak not below 25% of buffered", file=sys.stderr)
        return 1
    print("OK: streamed peak < 25% of buffered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
