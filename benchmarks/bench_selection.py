"""Private selection: the price of verifiability for argmax queries.

ΠBin releases a whole noisy histogram (verifiable); the exponential
mechanism and report-noisy-max release only the winner (better selection
accuracy per ε, but no verifiable instantiation is known — Concluding
Remarks).  This bench measures winner-recovery rates and asserts the
qualitative ordering.
"""

from repro.analysis.selection import selection_accuracy
from repro.utils.rng import SeededRNG

DELTA = 2**-10
TIGHT_RACE = [105, 100, 95, 90]


def test_selection_accuracy_sweep(benchmark):
    result = benchmark.pedantic(
        selection_accuracy,
        args=(TIGHT_RACE, 0.5, DELTA, 100),
        kwargs={"rng": SeededRNG("bench-sel")},
        rounds=3,
        iterations=1,
    )
    assert 0 <= result.histogram_argmax <= 1


def test_selection_ordering():
    """Dedicated selection mechanisms dominate histogram-argmax on a
    tight race at equal ε — the verifiability gap for selection."""
    result = selection_accuracy(TIGHT_RACE, 0.5, DELTA, 200, rng=SeededRNG("ord"))
    assert result.exponential >= result.histogram_argmax
    assert result.noisy_max >= result.histogram_argmax


def test_wide_margin_closes_the_gap():
    """With a landslide, even the (ε, δ)-histogram route names the right
    winner essentially always — matching the election example."""
    result = selection_accuracy([400, 20, 10], 1.0, DELTA, 100, rng=SeededRNG("wide"))
    assert result.histogram_argmax > 0.9
