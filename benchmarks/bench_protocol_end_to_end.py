"""End-to-end ΠBin runs — the full protocol at small scale.

Covers the workloads of the paper's two deployment models (curator and
2-server MPC) plus the non-verifiable baseline, making the cost of
verifiability directly visible (the paper's core overhead story).  Runs
go through the Query/Session API — the same phase-driven engine the
legacy entry points now shim onto — in both buffered and streamed modes.
"""

from repro.api import CountQuery, Session
from repro.baselines.trusted_curator import NonVerifiableCurator
from repro.utils.rng import SeededRNG

BITS = [1, 0, 1, 1, 0, 0, 1, 1]
NB = 12


def run_protocol(k, seed, chunk_size=None):
    session = Session(
        CountQuery(epsilon=1.0, delta=2**-10),
        num_provers=k,
        group="p128-sim",
        nb_override=NB,
        chunk_size=chunk_size,
        rng=SeededRNG(seed),
    )
    session.submit(BITS)
    return session.release()


def test_curator_end_to_end(benchmark):
    result = benchmark.pedantic(run_protocol, args=(1, "e2e-1"), rounds=3, iterations=1)
    assert result.accepted


def test_mpc_two_servers_end_to_end(benchmark):
    result = benchmark.pedantic(run_protocol, args=(2, "e2e-2"), rounds=3, iterations=1)
    assert result.accepted


def test_streamed_curator_end_to_end(benchmark):
    result = benchmark.pedantic(
        run_protocol, args=(1, "e2e-3", 4), rounds=3, iterations=1
    )
    assert result.accepted


def test_non_verifiable_baseline(benchmark):
    curator = NonVerifiableCurator.binomial(1.0, 2**-10)
    out = benchmark(curator.release_count, BITS, SeededRNG("nv"))
    assert out.value == sum(BITS) + out.noise


def test_verifiability_overhead_is_in_sigma_stages():
    """Where does the verifiable/non-verifiable gap come from?  Table 1's
    answer: the Σ stages.  Assert they dominate the end-to-end run."""
    result = run_protocol(1, "ovh")
    stages = result.results[0].timer.stages
    sigma = stages["sigma-proof"] + stages["sigma-verification"]
    rest = stages["morra"] + stages["aggregation"] + stages["check"]
    assert sigma > rest
