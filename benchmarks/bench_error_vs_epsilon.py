"""DP-Error (Definition 6) — central O(1/ε) vs local O(√n/ε).

Context for Table 2's "Central DP" column and the Section 7 discussion:
the Binomial/Laplace mechanisms' error is independent of n, randomized
response pays √n, and ΠBin's MPC mode pays √K over the single curator.
"""

import pytest

from repro.analysis.error import empirical_error
from repro.dp.binomial import BinomialMechanism
from repro.dp.laplace import LaplaceMechanism
from repro.dp.randomized_response import RandomizedResponse
from repro.utils.rng import SeededRNG

DELTA = 2**-10
DATASET = [1 if i % 3 == 0 else 0 for i in range(1000)]


def test_binomial_error(benchmark):
    mech = BinomialMechanism(1.0, DELTA)
    err = benchmark.pedantic(
        empirical_error, args=(mech, DATASET, 30, SeededRNG("b")), rounds=3, iterations=1
    )
    assert err > 0


def test_laplace_error(benchmark):
    mech = LaplaceMechanism(1.0)
    err = benchmark.pedantic(
        empirical_error, args=(mech, DATASET, 30, SeededRNG("l")), rounds=3, iterations=1
    )
    assert err == pytest.approx(1.0, rel=1.0)


def test_randomized_response_error(benchmark):
    mech = RandomizedResponse(1.0)
    err = benchmark.pedantic(
        empirical_error, args=(mech, DATASET, 10, SeededRNG("r")), rounds=2, iterations=1
    )
    assert err > 0


def test_error_shape_central_vs_local():
    """The crossover the paper's Section 7 describes: at n = 1000 the
    local model's error is already an order of magnitude worse."""
    rng = SeededRNG("shape")
    central = empirical_error(BinomialMechanism(1.0, DELTA), DATASET, 40, rng)
    local = empirical_error(RandomizedResponse(1.0), DATASET, 40, rng)
    assert local > 3 * central


def test_error_shape_epsilon_scaling():
    """Central error ∝ 1/ε for Laplace (exact) — the O(1/ε) claim."""
    rng = SeededRNG("eps-scale")
    e1 = empirical_error(LaplaceMechanism(0.5), DATASET, 800, rng)
    e2 = empirical_error(LaplaceMechanism(2.0), DATASET, 800, rng)
    assert e1 / e2 == pytest.approx(4.0, rel=0.5)
