"""Multiexp engine crossover — naive vs Straus-wNAF vs Pippenger.

The tiered engine in :mod:`repro.crypto.multiexp` is the hot primitive
under batched Σ-verification, the Line 12/13 checks, and every
commitment product; this bench pins its crossover behaviour per batch
size.  ``python -m repro multiexp`` runs the same sweep through the
bench runner and emits ``BENCH_multiexp.json`` (checked in as the perf
evidence for the batched-verification pipeline).
"""

import pytest

from repro.crypto.multiexp import multi_exponentiation, select_algorithm
from repro.crypto.schnorr_group import SchnorrGroup
from repro.utils.rng import SeededRNG

SIZES = [4, 64, 1024]
ALGORITHMS = ["naive", "straus", "pippenger"]


def make_instance(group, n, seed="bench-me"):
    rng = SeededRNG(f"{seed}-{n}")
    bases = [group.random_element(rng) for _ in range(n)]
    exps = [rng.field_element(group.order) for _ in range(n)]
    return bases, exps


@pytest.fixture(scope="module")
def group128():
    return SchnorrGroup.named("p128-sim")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_multiexp_tier(benchmark, group128, n, algorithm):
    bases, exps = make_instance(group128, n)
    benchmark(
        lambda: multi_exponentiation(group128, bases, exps, algorithm=algorithm)
    )


@pytest.mark.parametrize("n", SIZES)
def test_multiexp_auto(benchmark, group128, n):
    bases, exps = make_instance(group128, n)
    benchmark(lambda: multi_exponentiation(group128, bases, exps))


def test_auto_selection_is_near_optimal(group128):
    """The automatic tier is never far behind the best measured tier."""
    import time

    for n in (2, 16, 256):
        bases, exps = make_instance(group128, n, seed="opt")
        timings = {}
        for algorithm in ALGORITHMS + [None]:
            start = time.perf_counter()
            for _ in range(3):
                multi_exponentiation(group128, bases, exps, algorithm=algorithm)
            timings[algorithm] = time.perf_counter() - start
        best = min(timings[a] for a in ALGORITHMS)
        # 2x slack: timer noise plus the coarse cost model.
        assert timings[None] < best * 2 + 1e-3


def test_pippenger_dominates_at_scale(group128):
    """At verifier batch sizes Pippenger must crush the naive product."""
    import time

    n = 4096
    bases, exps = make_instance(group128, n, seed="scale")
    kernel = group128.multiexp_kernel()
    assert (
        select_algorithm(
            n,
            group128.order.bit_length(),
            native_pow=kernel.native_pow,
            op_overhead=kernel.op_overhead,
        )
        == "pippenger"
    )
    start = time.perf_counter()
    multi_exponentiation(group128, bases, exps, algorithm="pippenger")
    pippenger = time.perf_counter() - start
    start = time.perf_counter()
    multi_exponentiation(group128, bases[:256], exps[:256], algorithm="naive")
    naive_256 = time.perf_counter() - start
    naive_full = naive_256 * (n / 256)  # naive is perfectly linear
    assert pippenger * 3 < naive_full
