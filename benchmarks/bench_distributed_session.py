#!/usr/bin/env python3
"""Distributed serving: parallel verification speedup and e2e node runs.

Measures the two parallel axes `repro.net.workers` exposes at nb = 4096
(K = 2 provers, p128-sim — identical code paths to production groups):

* **per prover** — the single-process verifier's batched
  ``verify_all_coin_commitments`` vs a :class:`VerificationPool` with 1
  and with N worker processes (one task per prover), and
* **per chunk**  — a streamed prover's 8 × 512-coin chunks verified
  sequentially vs pooled (workers fast-forward the shared transcript by
  hashing, then verify their own chunk's multiexp).

Then runs the full 2-server multi-client session as separate OS
processes over both ``MultiprocessTransport`` and ``SocketTransport``
and records wall time, exact front-end wire bytes and the
byte-identical-to-in-process check.  Emits ``BENCH_distributed.json``.

Speedups scale with available cores (``cpu_count`` is recorded; on a
single-core container the pool's value is isolation, not speed).

Usage:
    python benchmarks/bench_distributed_session.py          # nb = 4096
    REPRO_DIST_NB=1024 python benchmarks/bench_distributed_session.py
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.queries import CountQuery  # noqa: E402
from repro.bench.format import print_table  # noqa: E402
from repro.bench.runner import write_bench_json  # noqa: E402
from repro.core.params import setup  # noqa: E402
from repro.core.prover import Prover  # noqa: E402
from repro.core.verifier import PublicVerifier  # noqa: E402
from repro.crypto.serialization import decode_message, encode_message  # noqa: E402
from repro.net.serve import run_distributed_session  # noqa: E402
from repro.net.workers import VerificationPool  # noqa: E402
from repro.utils.rng import SeededRNG  # noqa: E402

GROUP = "p128-sim"
CONTEXT = b"bench-distributed"


def bench_parallel_verification(nb: int, num_provers: int = 2) -> list[dict]:
    params = setup(1.0, 2**-10, num_provers=num_provers, group=GROUP, nb_override=nb)
    cores = os.cpu_count() or 1
    rows = []

    # Per-prover axis: K monolithic coin messages.
    frames = []
    for k in range(num_provers):
        prover = Prover(f"prover-{k}", params, SeededRNG(f"bench-{k}"))
        frames.append(encode_message(prover.commit_coins(CONTEXT)))

    # Apples to apples: every mode starts from wire frames, as a serving
    # front-end does — decoding (with its per-element membership checks)
    # is part of the verification work wherever it runs.
    verifier = PublicVerifier(params, SeededRNG("bench-v"))
    start = time.perf_counter()
    messages = [decode_message(params.group, frame) for frame in frames]
    verdicts = verifier.verify_all_coin_commitments(messages, CONTEXT)
    single = time.perf_counter() - start
    assert all(verdicts.values())

    timings = {"single-process": single}
    for workers in sorted({1, 2, cores}):
        with VerificationPool(params, processes=workers) as pool:
            start = time.perf_counter()
            results = pool.verify_prover_messages(frames, CONTEXT)
            timings[f"pool-{workers}"] = time.perf_counter() - start
        assert all(ok for _, ok, _ in results)
    for label, seconds in timings.items():
        rows.append(
            {
                "axis": "per-prover",
                "mode": label,
                "nb": nb,
                "provers": num_provers,
                "group": GROUP,
                "cpu_count": cores,
                "seconds": seconds,
                "speedup_vs_single": single / seconds if seconds else float("inf"),
            }
        )

    # Per-chunk axis: one prover streamed in 8 chunks.
    chunks = 8
    chunk_rows = nb // chunks
    prover = Prover("prover-0", params, SeededRNG("bench-chunked"))
    prover.begin_coin_stream(CONTEXT)
    chunk_frames = []
    for _ in range(chunks):
        message = prover.commit_coin_chunk(chunk_rows)
        chunk_frames.append(encode_message(message))
        prover.absorb_public_bits([[0]] * chunk_rows)

    stream_verifier = PublicVerifier(params, SeededRNG("bench-sv"))
    stream_verifier.begin_coin_stream("prover-0", CONTEXT)
    start = time.perf_counter()
    for frame in chunk_frames:
        assert stream_verifier.verify_coin_chunk(decode_message(params.group, frame))
        stream_verifier.apply_public_bits_chunk(
            "prover-0", [[0]] * chunk_rows
        )
    assert stream_verifier.finish_coin_stream("prover-0")
    sequential = time.perf_counter() - start

    chunk_timings = {"single-process": sequential}
    for workers in sorted({1, 2, cores}):
        with VerificationPool(params, processes=workers) as pool:
            start = time.perf_counter()
            ok, note = pool.verify_chunked_stream(
                chunk_frames, CONTEXT, rows_per_chunk=chunk_rows
            )
            chunk_timings[f"pool-{workers}"] = time.perf_counter() - start
        assert ok, note
    for label, seconds in chunk_timings.items():
        rows.append(
            {
                "axis": "per-chunk",
                "mode": label,
                "nb": nb,
                "provers": 1,
                "group": GROUP,
                "cpu_count": cores,
                "seconds": seconds,
                "speedup_vs_single": sequential / seconds if seconds else float("inf"),
            }
        )
    return rows


def bench_end_to_end(nb: int) -> list[dict]:
    query = CountQuery(epsilon=1.0, delta=2**-10)
    values = [i % 2 for i in range(8)]
    rows = []
    for transport in ("multiprocess", "socket"):
        outcome = run_distributed_session(
            query,
            values,
            transport=transport,
            num_servers=2,
            group=GROUP,
            nb_override=nb,
            seed="bench-e2e",
        )
        rows.append(
            {
                "axis": "end-to-end",
                "mode": transport,
                "nb": outcome["nb"],
                "provers": outcome["num_servers"],
                "group": GROUP,
                "cpu_count": os.cpu_count() or 1,
                "seconds": outcome["elapsed_s"],
                "accepted": outcome["accepted"],
                "byte_identical": outcome["byte_identical"],
                "frontend_bytes_sent": outcome["frontend_bytes_sent"],
                "frontend_bytes_received": outcome["frontend_bytes_received"],
            }
        )
    return rows


def main() -> int:
    nb = int(os.environ.get("REPRO_DIST_NB", "4096"))
    rows = bench_parallel_verification(nb)
    rows += bench_end_to_end(min(nb, 512))
    write_bench_json("distributed", rows)
    print_table(
        [r for r in rows if r["axis"] != "end-to-end"],
        title=f"== parallel coin verification (nb={nb}, {GROUP}) ==",
    )
    print_table(
        [r for r in rows if r["axis"] == "end-to-end"],
        title="== end-to-end distributed sessions ==",
    )
    bad = [r for r in rows if r["axis"] == "end-to-end" and not r["byte_identical"]]
    if bad:
        print("FAIL: distributed release not byte-identical", file=sys.stderr)
        return 1
    print("OK: distributed releases byte-identical to in-process Session")
    return 0


if __name__ == "__main__":
    sys.exit(main())
