#!/usr/bin/env python3
"""Fleet serving: aggregate sessions/sec past one front-end's ceiling.

Measures what :class:`repro.net.fleet.FleetDispatcher` buys over a
single :class:`~repro.net.aio.SessionMux` front-end: the same session
stream placed across F front-end processes (capacity C each, K = 2
servers, p64-sim), under the RPC-delay regime that models remote
provers — the regime where a single front-end's capacity is the
ceiling and a fleet's aggregate keeps scaling.

Honesty rule (the reason this file exists in this form): a 1-core
container cannot demonstrate parallel speedup — every extra process
time-slices the same CPU, so "scaling" rows would measure dispatch
overhead, exactly the mistake ROADMAP's measurement caveat documents
for the earlier sharded/distributed BENCH files.  On ``cpu_count == 1``
this benchmark refuses to claim scaling: it records the measured
numbers, prints the caveat, and emits an explicit ``caveat`` row in
``BENCH_fleet.json`` instead of asserting a speedup.  Byte-identity is
asserted unconditionally — determinism does not need cores.

Usage:
    python benchmarks/bench_fleet.py               # nb = 64
    REPRO_FLEET_NB=256 python benchmarks/bench_fleet.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.queries import CountQuery  # noqa: E402
from repro.bench.format import print_table  # noqa: E402
from repro.bench.runner import write_bench_json  # noqa: E402
from repro.net.fleet import run_fleet  # noqa: E402

GROUP = "p64-sim"
RPC_DELAY = 0.03
SESSIONS = 4
# (frontends, capacity, shards): one front-end's ceiling, then the
# fleet, then the fleet with the --shards composition.
FLEET_SHAPES = ((1, 2, 0), (2, 2, 0), (2, 2, 2))

ROADMAP_CAVEAT = (
    "Measurement caveat: produced on a 1-core container (cpu_count: 1 "
    "recorded per row), so these rows show dispatch overhead, not "
    "parallel speedup — real multi-core scaling is still unmeasured "
    "(see ROADMAP 'Measurement caveats')."
)


def bench_fleet(nb: int, clients: int = 6, num_servers: int = 2) -> list[dict]:
    query = CountQuery(epsilon=1.0, delta=2**-10)
    values = [i % 2 for i in range(clients)]
    rows = []
    base_rate = None
    for frontends, capacity, shards in FLEET_SHAPES:
        outcome = run_fleet(
            query,
            values,
            sessions=SESSIONS,
            frontends=frontends,
            capacity=capacity,
            shards=shards,
            num_servers=num_servers,
            group=GROUP,
            nb_override=nb,
            seed=f"bench-fleet-{frontends}x{capacity}s{shards}",
            timeout=120.0,
            reply_delay=RPC_DELAY,
        )
        rate = outcome["sessions_per_sec"]
        if base_rate is None:
            base_rate = rate
        rows.append(
            {
                "axis": "fleet",
                "frontends": frontends,
                "capacity": capacity,
                "shards": shards,
                "sessions": SESSIONS,
                "rpc_delay_ms": RPC_DELAY * 1000.0,
                "nb": outcome["nb"],
                "clients_per_session": clients,
                "provers": num_servers,
                "group": GROUP,
                "wall_s": outcome["elapsed_s"],
                "sessions_per_sec": rate,
                "speedup_vs_f1": rate / base_rate if base_rate else float("inf"),
                "released": outcome["released"],
                "restarts": sum(outcome["restarts"].values()),
                "stolen": outcome["stolen"],
                "frontends_used": len(outcome["frontends_used"]),
                "accepted": outcome["accepted"],
                "byte_identical": outcome["byte_identical"],
            }
        )
    return rows


def main() -> int:
    nb = int(os.environ.get("REPRO_FLEET_NB", "64"))
    cores = os.cpu_count() or 1
    rows = bench_fleet(nb)

    bad = [
        r
        for r in rows
        if not r["byte_identical"]
        or not r["accepted"]
        or r["released"] != r["sessions"]
    ]
    single_core = cores < 2
    if single_core:
        # Refuse to claim scaling: record the measurement, flag it.
        rows.append(
            {
                "axis": "caveat",
                "frontends": 0,
                "capacity": 0,
                "shards": 0,
                "scaling_claim": "withheld",
                "note": ROADMAP_CAVEAT,
            }
        )
    write_bench_json("fleet", rows)
    print_table(
        [r for r in rows if r["axis"] == "fleet"],
        title=f"== fleet serving (nb={nb}, {GROUP}, {SESSIONS} sessions) ==",
    )
    if bad:
        print(
            "FAIL: a fleet-served session was not byte-identical/released",
            file=sys.stderr,
        )
        return 1
    if single_core:
        print(ROADMAP_CAVEAT)
        print(
            "OK: byte-identical across all fleet shapes; "
            "scaling claim withheld on this host"
        )
        return 0
    fleet_rows = [r for r in rows if r["axis"] == "fleet" and r["frontends"] > 1]
    top = max(fleet_rows, key=lambda r: r["speedup_vs_f1"])
    if top["speedup_vs_f1"] <= 1.0:
        print(
            "FAIL: fleet aggregate did not scale past one front-end's ceiling",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: byte-identical; F={top['frontends']} front-ends serve "
        f"{top['speedup_vs_f1']:.2f}x one front-end's aggregate throughput"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
