#!/usr/bin/env python3
"""Fleet serving: aggregate sessions/sec past one front-end's ceiling.

A thin wrapper over the declarative harness
(:mod:`repro.bench.harness`) — the run table below is the whole
experiment definition, and ``repro bench run`` with an equivalent JSON
table reproduces it exactly.  Measures what
:class:`repro.net.fleet.FleetDispatcher` buys over a single
:class:`~repro.net.aio.SessionMux` front-end: the same session stream
placed across F front-end processes (capacity 2 each, K = 2 servers,
p64-sim), under the RPC-delay regime that models remote provers — the
regime where one front-end's capacity is the ceiling and a fleet's
aggregate keeps scaling.

Honesty rule: a 1-core container cannot demonstrate parallel speedup —
the harness appends an explicit ``caveat`` row on ``cpu_count < 2`` and
this script withholds the scaling claim, exactly as before the port.
Byte-identity is asserted unconditionally by the harness (``strict``):
determinism does not need cores.

Usage:
    python benchmarks/bench_fleet.py               # nb = 64
    REPRO_FLEET_NB=256 python benchmarks/bench_fleet.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.format import print_table  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    CAVEAT_NOTE,
    HarnessError,
    RunTable,
    run_table,
)
from repro.bench.runner import write_bench_json  # noqa: E402

RPC_DELAY = 0.03
SESSIONS = 4
# (frontends, shards): one front-end's ceiling, then the fleet, then
# the fleet with the --shards composition (capacity fixed at 2).
FLEET_SHAPES = ((1, 0), (2, 0), (2, 2))


def build_table(nb: int) -> RunTable:
    return RunTable(
        name="fleet",
        description="fleet serving vs one front-end's ceiling",
        cells=[
            {
                "topology": "fleet",
                "nb": nb,
                "sessions": SESSIONS,
                "frontends": frontends,
                "shards": shards,
                "reply_delay": RPC_DELAY,
            }
            for frontends, shards in FLEET_SHAPES
        ],
        fixed={"capacity": 2, "seed": "bench-fleet"},
    )


def main() -> int:
    nb = int(os.environ.get("REPRO_FLEET_NB", "64"))
    try:
        rows = run_table(build_table(nb), emit_raw=False)
    except HarnessError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    fleet_rows = [r for r in rows if r.get("kind") != "caveat"]
    base_rate = fleet_rows[0]["sessions_per_sec"]
    for row in fleet_rows:
        row["speedup_vs_f1"] = (
            row["sessions_per_sec"] / base_rate if base_rate else float("inf")
        )
    write_bench_json("fleet", rows)
    print_table(
        fleet_rows,
        title=f"== fleet serving (nb={nb}, p64-sim, {SESSIONS} sessions) ==",
    )

    if (os.cpu_count() or 1) < 2:
        print(CAVEAT_NOTE)
        print(
            "OK: byte-identical across all fleet shapes; "
            "scaling claim withheld on this host"
        )
        return 0
    top = max(
        (r for r in fleet_rows if r["frontends"] > 1),
        key=lambda r: r["speedup_vs_f1"],
    )
    if top["speedup_vs_f1"] <= 1.0:
        print(
            "FAIL: fleet aggregate did not scale past one front-end's ceiling",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: byte-identical; F={top['frontends']} front-ends serve "
        f"{top['speedup_vs_f1']:.2f}x one front-end's aggregate throughput"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
