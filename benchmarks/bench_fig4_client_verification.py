"""Figure 4 — validating one client's M-dimensional one-hot input.

Σ-OR proofs per coordinate (ours; robust against malicious servers) vs
the PRIO/Poplar linear sketch (lightweight; vulnerable to Figure 1).
Both costs grow with M; the Σ approach pays the public-key premium the
paper quantifies ("approximately an order of magnitude" on their stack).
"""

import pytest

from repro.baselines.sketch import OneHotSketch
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.onehot import prove_one_hot, verify_one_hot
from repro.utils.rng import SeededRNG

DIMENSIONS = [1, 8, 32]


def one_hot(m):
    return [1] + [0] * (m - 1)


@pytest.mark.parametrize("m", DIMENSIONS)
def test_sigma_onehot_prove(benchmark, params_128, m):
    rng = SeededRNG(f"f4p{m}")
    cs, os_ = params_128.pedersen.commit_vector(one_hot(m), rng)

    def run():
        return prove_one_hot(params_128.pedersen, cs, os_, Transcript("f4"), rng)

    benchmark(run)


@pytest.mark.parametrize("m", DIMENSIONS)
def test_sigma_onehot_verify(benchmark, params_128, m):
    rng = SeededRNG(f"f4v{m}")
    cs, os_ = params_128.pedersen.commit_vector(one_hot(m), rng)
    proof = prove_one_hot(params_128.pedersen, cs, os_, Transcript("f4"), rng)
    benchmark(lambda: verify_one_hot(params_128.pedersen, cs, proof, Transcript("f4")))


@pytest.mark.parametrize("m", DIMENSIONS)
def test_sigma_onehot_verify_batched(benchmark, params_128, m):
    """The verifier's actual path: one-hot validation via SigmaBatch."""
    from repro.crypto.sigma.batch import batch_verify_one_hot

    rng = SeededRNG(f"f4b{m}")
    cs, os_ = params_128.pedersen.commit_vector(one_hot(m), rng)
    proof = prove_one_hot(params_128.pedersen, cs, os_, Transcript("f4"), rng)
    benchmark(
        lambda: batch_verify_one_hot(
            params_128.pedersen, cs, proof, Transcript("f4"), rng
        )
    )


def test_batched_client_validation_wins_at_scale(params_128):
    """Cross-client aggregation: 64 clients' one-hot proofs, one multiexp."""
    import time

    from repro.crypto.sigma.batch import SigmaBatch

    m, n_clients = 8, 64
    rng = SeededRNG("f4x")
    clients = []
    for i in range(n_clients):
        cs, os_ = params_128.pedersen.commit_vector(one_hot(m), rng)
        proof = prove_one_hot(params_128.pedersen, cs, os_, Transcript(f"c{i}"), rng)
        clients.append((cs, proof))

    start = time.perf_counter()
    for i, (cs, proof) in enumerate(clients):
        verify_one_hot(params_128.pedersen, cs, proof, Transcript(f"c{i}"))
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    batch = SigmaBatch(params_128.pedersen, SeededRNG("g"))
    for i, (cs, proof) in enumerate(clients):
        batch.add_one_hot(cs, proof, Transcript(f"c{i}"))
    batch.verify()
    batched = time.perf_counter() - start
    assert batched * 3 < sequential, (
        f"batched {batched * 1e3:.1f}ms vs sequential {sequential * 1e3:.1f}ms"
    )


@pytest.mark.parametrize("m", DIMENSIONS)
def test_sketch_validate(benchmark, params_128, m):
    sketch = OneHotSketch(m, params_128.q)
    packages = sketch.client_prepare(one_hot(m), SeededRNG(f"f4s{m}"))
    result = benchmark(sketch.validate, packages, b"bench")
    assert result


def test_sigma_costs_more_than_sketch(params_128):
    """The paper's headline Figure 4 comparison, asserted."""
    import time

    m = 8
    rng = SeededRNG("cmp")
    cs, os_ = params_128.pedersen.commit_vector(one_hot(m), rng)
    start = time.perf_counter()
    proof = prove_one_hot(params_128.pedersen, cs, os_, Transcript("f4"), rng)
    verify_one_hot(params_128.pedersen, cs, proof, Transcript("f4"))
    sigma = time.perf_counter() - start

    sketch = OneHotSketch(m, params_128.q)
    packages = sketch.client_prepare(one_hot(m), rng)
    start = time.perf_counter()
    sketch.validate(packages, b"x")
    lightweight = time.perf_counter() - start

    assert sigma > lightweight
