"""Table 1 — per-stage latency of ΠBin.

Paper row (n = 10⁶, nb = 262144, Apple M1, Rust):

    Σ-proof 6609 ms | Σ-verification 6708 ms | Morra 4987 ms |
    Aggregation 198 ms | Check 263 ms

Each benchmark here measures one stage at a fixed batch size on the
paper's backend (modp-2048); per-item costs extrapolate linearly (the
stages have no cross-item interaction).  ``python -m repro table1``
prints measured + extrapolated rows side by side with the paper's.
"""

import pytest

from repro.bench.stages import (
    time_aggregation,
    time_check,
    time_morra,
    time_sigma_prove,
    time_sigma_verify,
)
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.or_bit import prove_bits, verify_bits
from repro.mpc.morra import MorraParticipant, run_morra_batch
from repro.utils.rng import SeededRNG

NB = 16  # coins per benchmark iteration
N_AGG = 10_000  # aggregation batch


@pytest.fixture(scope="module")
def coin_batch(params_2048):
    rng = SeededRNG("t1-coins")
    commitments, openings = [], []
    for _ in range(NB):
        c, o = params_2048.pedersen.commit_fresh(rng.coin(), rng)
        commitments.append(c)
        openings.append(o)
    proofs = prove_bits(params_2048.pedersen, commitments, openings, Transcript("b"), rng)
    return commitments, openings, proofs


def test_stage_sigma_proof(benchmark, params_2048, coin_batch):
    commitments, openings, _ = coin_batch

    def run():
        return prove_bits(
            params_2048.pedersen, commitments, openings, Transcript("b"), SeededRNG("p")
        )

    result = benchmark(run)
    assert len(result) == NB


def test_stage_sigma_verification(benchmark, params_2048, coin_batch):
    commitments, _, proofs = coin_batch
    benchmark(
        lambda: verify_bits(params_2048.pedersen, commitments, proofs, Transcript("b"))
    )


def test_stage_morra(benchmark, params_2048):
    def run():
        prover = MorraParticipant("p", SeededRNG("mp"))
        verifier = MorraParticipant("v", SeededRNG("mv"))
        return run_morra_batch([prover, verifier], params_2048.q, NB)

    outcome = benchmark(run)
    assert len(outcome.values) == NB


def test_stage_aggregation(benchmark, params_2048):
    rng = SeededRNG("agg")
    values = [rng.field_element(params_2048.q) for _ in range(N_AGG)]

    def run():
        acc = 0
        for value in values:
            acc = (acc + value) % params_2048.q
        return acc

    benchmark(run)


def test_stage_check(benchmark, params_2048, coin_batch):
    commitments, _, _ = coin_batch
    rng = SeededRNG("chk")
    bits = [rng.coin() for _ in range(NB)]

    def run():
        pedersen = params_2048.pedersen
        product = pedersen.commitment_to_constant(0)
        for commitment, bit in zip(commitments, bits):
            adjusted = pedersen.one_minus(commitment) if bit else commitment
            product = product * adjusted
        return pedersen.commit(123, 456)

    benchmark(run)


def test_table1_stage_ordering(params_2048):
    """The paper's qualitative shape: Σ-proof ≈ Σ-verify ≫ aggregation,
    check; Morra cheaper per coin than either Σ stage."""
    rng = SeededRNG("order")
    prove, commitments, proofs = time_sigma_prove(params_2048, 12, rng)
    verify = time_sigma_verify(params_2048, commitments, proofs)
    morra, bits = time_morra(params_2048, 12, rng)
    agg = time_aggregation(params_2048, 2_000, rng)
    check = time_check(params_2048, commitments, bits, rng)
    assert prove.per_item > morra.per_item
    assert verify.per_item > morra.per_item
    assert prove.per_item > agg.per_item
    assert check.seconds < prove.seconds
