"""Shared fixtures for the benchmark suite.

Workload sizing: benchmarks run the paper's *operations* at reduced batch
sizes (pure Python); per-operation costs are what matter, since every
stage of ΠBin is linear in its batch size.  The experiment harness
(``python -m repro <exp>``) prints the extrapolations to paper scale.

Group choice: ``modp-2048`` is the paper's production backend and is used
for the microbenchmarks; the protocol-level benchmarks use ``p128-sim``
(identical code paths, smaller bignums) so the whole suite stays under a
few minutes.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import write_bench_json
from repro.core.params import setup
from repro.utils.rng import SeededRNG

PAPER_DELTA = 2**-10


def pytest_sessionfinish(session, exitstatus):
    """Persist the pytest-benchmark suite through ``write_bench_json`` so
    its rows carry the same host metadata (cpu_count, platform, python)
    as every other BENCH artifact — a micro number without its
    measurement context is exactly the mistake ROADMAP's measurement
    caveat documents."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    rows = []
    for bench in bench_session.benchmarks:
        stats = bench.stats
        rows.append(
            {
                "test": bench.fullname,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_s": stats.mean,
                "stdev_s": stats.stddev,
                "min_s": stats.min,
                "max_s": stats.max,
            }
        )
    path = write_bench_json("micro_suite", rows)
    print(f"\nbenchmark rows written to {path}")


@pytest.fixture(scope="session")
def params_2048():
    return setup(1.0, PAPER_DELTA, group="modp-2048", nb_override=31)


@pytest.fixture(scope="session")
def params_128():
    return setup(1.0, PAPER_DELTA, group="p128-sim", nb_override=31)


@pytest.fixture(scope="session")
def params_ristretto():
    return setup(1.0, PAPER_DELTA, group="ristretto255", nb_override=31)


@pytest.fixture()
def rng():
    return SeededRNG("bench")
