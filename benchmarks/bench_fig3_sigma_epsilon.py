"""Figure 3 — Σ-proof create/verify latency vs privacy parameter ε.

The paper's four panels show prove/verify time growing as ε shrinks, on
both group backends, because nb ∝ 1/ε² (Lemma 2.1) and the per-coin cost
is constant.  We benchmark the per-coin cost on each backend and assert
the nb scaling; ``python -m repro fig3`` prints the projected totals per
ε exactly as the figure's series.
"""

import pytest

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.or_bit import prove_bit, verify_bit
from repro.dp.binomial import coins_for_privacy
from repro.utils.rng import SeededRNG

EPSILONS = [0.5, 1.25, 4.0]


@pytest.mark.parametrize("backend", ["params_2048", "params_ristretto"])
def test_prove_per_coin(benchmark, backend, request):
    params = request.getfixturevalue(backend)
    rng = SeededRNG(f"f3p-{backend}")
    c, o = params.pedersen.commit_fresh(1, rng)

    def run():
        return prove_bit(params.pedersen, c, o, Transcript("f3"), rng)

    benchmark(run)


@pytest.mark.parametrize("backend", ["params_2048", "params_ristretto"])
def test_verify_per_coin(benchmark, backend, request):
    params = request.getfixturevalue(backend)
    rng = SeededRNG(f"f3v-{backend}")
    c, o = params.pedersen.commit_fresh(0, rng)
    proof = prove_bit(params.pedersen, c, o, Transcript("f3"), rng)
    benchmark(lambda: verify_bit(params.pedersen, c, proof, Transcript("f3")))


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_total_work_scales_with_inverse_epsilon_squared(epsilon):
    """nb(ε) ∝ 1/ε² pins the figure's x-axis relationship."""
    delta = 2**-10
    nb = coins_for_privacy(epsilon, delta)
    nb_double = coins_for_privacy(2 * epsilon, delta)
    assert nb / nb_double == pytest.approx(4.0, rel=0.15)
