#!/usr/bin/env python3
"""Sharded serving: verification throughput vs shard count.

Serves one seeded session — K = 2 prover servers, a client population
and the analyst front-end as separate OS processes over
``multiprocessing`` pipes — unsharded and with S ∈ {1, 2, 4}
:class:`~repro.net.shard.ShardWorker` verification peers, and reports
**verification throughput**: Σ-OR proofs checked (every client validity
proof plus every prover coin proof) per second of end-to-end wall time.
Every sharded release is asserted byte-identical to the in-process
:class:`repro.api.Session` under the same seed and chunk size — sharding
must never change the released bytes, only who does the checking.

Speedups scale with available cores (``cpu_count`` is recorded): on a
single-core container the shards time-slice one CPU and the expected
result is parity-with-overhead, which is still evidence the dispatch
path is cheap; on a >= 4-core box the shard workers own the RLC
multi-exponentiations while the front-end runs Morra and the dispatch
loop, and S = 4 is the headline number.

Usage:
    python benchmarks/bench_sharded_session.py            # nb = 2048
    REPRO_SHARD_NB=512 python benchmarks/bench_sharded_session.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.queries import CountQuery  # noqa: E402
from repro.bench.format import print_table  # noqa: E402
from repro.bench.runner import write_bench_json  # noqa: E402
from repro.net.serve import run_distributed_session  # noqa: E402

GROUP = "p64-sim"
NUM_SERVERS = 2
SHARD_COUNTS = (0, 1, 2, 4)


def bench_sharded(nb: int, n_clients: int) -> list[dict]:
    query = CountQuery(epsilon=1.0, delta=2**-10)
    values = [i % 2 for i in range(n_clients)]
    cores = os.cpu_count() or 1
    # One chunk size for every configuration so all releases (sharded,
    # unsharded, in-process) are comparable byte for byte; sized so the
    # widest fan-out still round-robins at least twice per shard.
    chunk = max(1, nb // (2 * max(SHARD_COUNTS)))
    proofs = n_clients + nb * NUM_SERVERS  # validity + coin proofs checked

    rows = []
    baseline = None
    for shards in SHARD_COUNTS:
        outcome = run_distributed_session(
            query,
            values,
            transport="multiprocess",
            num_servers=NUM_SERVERS,
            shards=shards,
            group=GROUP,
            nb_override=nb,
            chunk_size=chunk,
            seed="bench-sharded",
        )
        assert outcome["accepted"], "seeded run must accept"
        assert outcome["byte_identical"], "sharded release must match in-process"
        if shards == 0:
            baseline = outcome["elapsed_s"]
        rows.append(
            {
                "mode": "unsharded" if shards == 0 else f"sharded S={shards}",
                "shards": shards,
                "nb": nb,
                "n_clients": n_clients,
                "provers": NUM_SERVERS,
                "group": GROUP,
                "chunk": chunk,
                "cpu_count": cores,
                "seconds": outcome["elapsed_s"],
                "proofs_per_s": proofs / outcome["elapsed_s"],
                "speedup_vs_unsharded": baseline / outcome["elapsed_s"],
                "byte_identical": outcome["byte_identical"],
            }
        )
    return rows


def main() -> int:
    nb = int(os.environ.get("REPRO_SHARD_NB", "2048"))
    n_clients = int(os.environ.get("REPRO_SHARD_CLIENTS", "64"))
    rows = bench_sharded(nb, n_clients)
    write_bench_json("sharded", rows)
    print_table(
        rows,
        title=(
            f"== sharded verification serving (nb={nb}, n={n_clients}, "
            f"K={NUM_SERVERS}, {GROUP}, multiprocess) =="
        ),
    )
    if not all(row["byte_identical"] for row in rows):
        print("FAIL: a sharded release diverged from the in-process Session",
              file=sys.stderr)
        return 1
    print("OK: all sharded releases byte-identical to the in-process Session")
    return 0


if __name__ == "__main__":
    sys.exit(main())
