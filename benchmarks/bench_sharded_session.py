#!/usr/bin/env python3
"""Sharded serving: verification throughput vs shard count.

A thin wrapper over the declarative harness
(:mod:`repro.bench.harness`): the experiment is the ``shards`` sweep
below, and ``repro bench run`` with an equivalent JSON table reproduces
it exactly.

Serves one seeded session — K = 2 prover servers, the client population
and the analyst front-end as separate OS processes over
``multiprocessing`` pipes — unsharded (S = 0) and with S ∈ {1, 2, 4}
:class:`~repro.net.shard.ShardWorker` verification peers, and reports
**verification throughput**: Σ-OR proofs checked (every client validity
proof plus every prover coin proof) per second of end-to-end wall time.
The harness asserts every sharded release byte-identical to the
in-process :class:`repro.api.Session` under the same seed and chunk
size — sharding must never change the released bytes, only who does the
checking.

Speedups scale with available cores (``cpu_count`` is stamped on every
artifact): on a single-core container the shards time-slice one CPU and
parity-with-overhead is the expected (and still useful) result.

Usage:
    python benchmarks/bench_sharded_session.py            # nb = 2048
    REPRO_SHARD_NB=512 python benchmarks/bench_sharded_session.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.format import print_table  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    HarnessError,
    RunTable,
    run_table,
)
from repro.bench.runner import write_bench_json  # noqa: E402

NUM_SERVERS = 2
SHARD_COUNTS = [0, 1, 2, 4]


def build_table(nb: int, n_clients: int) -> RunTable:
    # One chunk size for every configuration so all releases (sharded,
    # unsharded, in-process) are comparable byte for byte; sized so the
    # widest fan-out still round-robins at least twice per shard.
    chunk = max(1, nb // (2 * max(SHARD_COUNTS)))
    return RunTable(
        name="sharded",
        description="verification throughput vs shard count",
        factors={
            "topology": ["sharded"],
            "nb": [nb],
            "shards": SHARD_COUNTS,
        },
        fixed={
            "clients": n_clients,
            "num_servers": NUM_SERVERS,
            "chunk": chunk,
            "seed": "bench-sharded",
        },
    )


def main() -> int:
    nb = int(os.environ.get("REPRO_SHARD_NB", "2048"))
    n_clients = int(os.environ.get("REPRO_SHARD_CLIENTS", "64"))
    try:
        rows = run_table(build_table(nb, n_clients), emit_raw=False)
    except HarnessError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    shard_rows = [r for r in rows if r.get("kind") != "caveat"]
    proofs = n_clients + nb * NUM_SERVERS  # validity + coin proofs checked
    baseline = next(r["wall_s"] for r in shard_rows if r["shards"] == 0)
    for row in shard_rows:
        row["proofs_per_s"] = proofs / row["wall_s"]
        row["speedup_vs_unsharded"] = baseline / row["wall_s"]
    write_bench_json("sharded", rows)
    print_table(
        shard_rows,
        title=(
            f"== sharded verification serving (nb={nb}, n={n_clients}, "
            f"K={NUM_SERVERS}, p64-sim, multiprocess) =="
        ),
    )
    print("OK: all sharded releases byte-identical to the in-process Session")
    return 0


if __name__ == "__main__":
    sys.exit(main())
