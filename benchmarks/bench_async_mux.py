#!/usr/bin/env python3
"""Async multiplexed serving: aggregate sessions/sec vs session count N.

A thin wrapper over the declarative harness
(:mod:`repro.bench.harness`): the experiment is the factor cross
``sessions × reply_delay`` below, and ``repro bench run`` with an
equivalent JSON table reproduces it exactly.

Measures what the :class:`repro.net.aio.SessionMux` front-end buys: N
concurrent sessions through *one* front-end process (K = 2 async server
hosts, p64-sim), for N ∈ {1, 2, 4}, in two latency regimes:

* ``reply_delay > 0`` — every server sleeps before each RPC reply,
  modelling remote provers.  This is the regime the mux exists for:
  aggregate sessions/sec scales with N while the front-end overlaps the
  idle time across sessions.
* ``reply_delay = 0`` — localhost loopback, pure-compute bound; on a
  single-core container scaling tracks ``cpu_count`` (stamped on every
  artifact by the harness).

Byte-identity against the solo seeded Session is asserted per cell by
the harness (``strict``).  Emits ``BENCH_async.json``.

Usage:
    python benchmarks/bench_async_mux.py               # nb = 64
    REPRO_ASYNC_NB=256 python benchmarks/bench_async_mux.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.format import print_table  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    HarnessError,
    RunTable,
    run_table,
)
from repro.bench.runner import write_bench_json  # noqa: E402

SESSION_COUNTS = [1, 2, 4]
RPC_DELAYS = [0.0, 0.03]


def build_table(nb: int) -> RunTable:
    return RunTable(
        name="async",
        description="mux aggregate throughput vs session count",
        factors={
            "topology": ["async"],
            "nb": [nb],
            "sessions": SESSION_COUNTS,
            "reply_delay": RPC_DELAYS,
        },
        fixed={"seed": "bench-async"},
    )


def main() -> int:
    nb = int(os.environ.get("REPRO_ASYNC_NB", "64"))
    try:
        rows = run_table(build_table(nb), emit_raw=False)
    except HarnessError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    mux_rows = [r for r in rows if r.get("kind") != "caveat"]
    # Speedup relative to N=1 within each delay regime.
    base_rate: dict[float, float] = {}
    for row in sorted(mux_rows, key=lambda r: (r["reply_delay_ms"], r["sessions"])):
        base = base_rate.setdefault(row["reply_delay_ms"], row["sessions_per_sec"])
        row["speedup_vs_n1"] = row["sessions_per_sec"] / base if base else float("inf")
    write_bench_json("async", rows)
    print_table(
        mux_rows,
        title=f"== async multiplexed serving (nb={nb}, p64-sim) ==",
    )

    delayed = [r for r in mux_rows if r["reply_delay_ms"] > 0]
    top = max(delayed, key=lambda r: r["sessions"])
    if top["speedup_vs_n1"] <= 1.0:
        print(
            "FAIL: aggregate sessions/sec did not scale with N under RPC latency",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: byte-identical; {top['sessions']} muxed sessions under "
        f"{top['reply_delay_ms']:.0f}ms RPC latency serve "
        f"{top['speedup_vs_n1']:.2f}x the aggregate throughput of one"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
