#!/usr/bin/env python3
"""Async multiplexed serving: aggregate sessions/sec vs session count N.

Measures what the :class:`repro.net.aio.SessionMux` front-end buys: N
concurrent sessions through *one* front-end process (K = 2 async server
hosts, one async client-runner process, p64-sim — identical code paths
to production groups), for N ∈ {1, 2, 4}.

Two latency regimes per N:

* ``rpc_delay > 0`` — every server sleeps that long before each RPC
  reply, modelling remote provers (WAN hop, HSM, a loaded curator).
  This is the regime the mux exists for: a solo front-end burns that
  idle time, the mux overlaps it across sessions, so aggregate
  sessions/sec scales with N while p50 per-session latency stays
  bounded.
* ``rpc_delay = 0`` — localhost loopback, pure-compute bound.  On a
  single-core container every party time-slices one CPU and the mux can
  only pipeline the front-end's own idle gaps (client proof generation,
  prover Σ-proofs run in other processes), so scaling tracks
  ``cpu_count`` (recorded per row).

Every seeded session is also checked byte-identical to its solo
in-process :class:`repro.api.Session` run.  Emits ``BENCH_async.json``.

Usage:
    python benchmarks/bench_async_mux.py               # nb = 64
    REPRO_ASYNC_NB=256 python benchmarks/bench_async_mux.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.queries import CountQuery  # noqa: E402
from repro.bench.format import print_table  # noqa: E402
from repro.bench.runner import write_bench_json  # noqa: E402
from repro.net.serve import run_async_sessions  # noqa: E402

GROUP = "p64-sim"
SESSION_COUNTS = (1, 2, 4)
RPC_DELAYS = (0.0, 0.03)


def bench_mux(nb: int, clients: int = 6, num_servers: int = 2) -> list[dict]:
    query = CountQuery(epsilon=1.0, delta=2**-10)
    values = [i % 2 for i in range(clients)]
    cores = os.cpu_count() or 1
    rows = []
    for delay in RPC_DELAYS:
        base_rate = None
        for sessions in SESSION_COUNTS:
            outcome = run_async_sessions(
                query,
                values,
                sessions=sessions,
                num_servers=num_servers,
                group=GROUP,
                nb_override=nb,
                seed=f"bench-async-{delay}",
                timeout=120.0,
                reply_delay=delay,
            )
            rate = outcome["sessions_per_sec"]
            if base_rate is None:
                base_rate = rate
            rows.append(
                {
                    "axis": "mux",
                    "sessions": sessions,
                    "rpc_delay_ms": delay * 1000.0,
                    "nb": outcome["nb"],
                    "clients_per_session": clients,
                    "provers": num_servers,
                    "group": GROUP,
                    "cpu_count": cores,
                    "wall_s": outcome["elapsed_s"],
                    "sessions_per_sec": rate,
                    "p50_session_s": outcome["p50_session_s"],
                    "speedup_vs_n1": rate / base_rate if base_rate else float("inf"),
                    "accepted": outcome["accepted"],
                    "byte_identical": outcome["byte_identical"],
                }
            )
    return rows


def main() -> int:
    nb = int(os.environ.get("REPRO_ASYNC_NB", "64"))
    rows = bench_mux(nb)
    write_bench_json("async", rows)
    print_table(
        rows,
        title=f"== async multiplexed serving (nb={nb}, {GROUP}) ==",
    )
    bad = [r for r in rows if not r["byte_identical"] or not r["accepted"]]
    if bad:
        print("FAIL: a multiplexed session was not byte-identical", file=sys.stderr)
        return 1
    delayed = [r for r in rows if r["rpc_delay_ms"] > 0]
    top = max(delayed, key=lambda r: r["sessions"])
    if top["speedup_vs_n1"] <= 1.0:
        print(
            "FAIL: aggregate sessions/sec did not scale with N under RPC latency",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: byte-identical; {top['sessions']} muxed sessions under "
        f"{top['rpc_delay_ms']:.0f}ms RPC latency serve "
        f"{top['speedup_vs_n1']:.2f}x the aggregate throughput of one"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
