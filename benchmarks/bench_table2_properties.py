"""Table 2 — qualitative system properties, validated by execution.

The 'benchmark' here is the cost of the validation probes themselves:
running the Figure 1 attack against PRIO (succeeds silently) and against
ΠBin (detected), which is how the table's PRIO and "Our work" rows are
derived mechanically rather than transcribed.
"""

from repro.attacks import (
    exclusion_attack_on_pibin,
    exclusion_attack_on_prio,
    noise_biasing_on_pibin,
)
from repro.bench.runner import run_table2
from repro.utils.rng import SeededRNG


def test_table2_rows(benchmark):
    rows = benchmark.pedantic(run_table2, kwargs={"validate": False}, rounds=3, iterations=1)
    assert len(rows) == 10


def test_probe_prio_exclusion(benchmark):
    outcome = benchmark.pedantic(
        lambda: exclusion_attack_on_prio(rng=SeededRNG("t2-prio")),
        rounds=3,
        iterations=1,
    )
    assert outcome.succeeded and not outcome.detected


def test_probe_pibin_exclusion(benchmark):
    outcome = benchmark.pedantic(
        lambda: exclusion_attack_on_pibin(rng=SeededRNG("t2-ours")),
        rounds=2,
        iterations=1,
    )
    assert outcome.detected


def test_probe_pibin_noise_biasing(benchmark):
    outcome = benchmark.pedantic(
        lambda: noise_biasing_on_pibin(rng=SeededRNG("t2-bias")),
        rounds=2,
        iterations=1,
    )
    assert outcome.detected
