"""Ablation — batch verification vs sequential Σ-OR verification.

Batch verification (random linear combination + one Pippenger
multi-exponentiation) is our main optimization over the paper's
verifier, and it is now the default ``PublicVerifier`` path.  This bench
quantifies it at micro scale (pytest-benchmark) and asserts the headline
speedup at a realistic verifier batch — nb = 4096 coin proofs on the
Schnorr backend must verify at least 3× faster batched than
sequentially (measured: ~6–8× at nb = 4096, growing with nb).
"""

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.batch import batch_verify_bits
from repro.crypto.sigma.or_bit import prove_bits, verify_bits
from repro.utils.rng import SeededRNG

BATCH = 32
SCALE_NB = 4096
SCALE_SPEEDUP = 3.0


def make_batch(params, n, seed="ablate"):
    rng = SeededRNG(seed)
    bits = [rng.coin() for _ in range(n)]
    cs, os_ = params.pedersen.commit_vector(bits, rng)
    proofs = prove_bits(params.pedersen, cs, os_, Transcript("a"), rng)
    return cs, proofs


def test_sequential_verification(benchmark, params_128):
    cs, proofs = make_batch(params_128, BATCH)
    benchmark(lambda: verify_bits(params_128.pedersen, cs, proofs, Transcript("a")))


def test_batched_verification(benchmark, params_128):
    cs, proofs = make_batch(params_128, BATCH)
    rng = SeededRNG("gamma")
    benchmark(
        lambda: batch_verify_bits(params_128.pedersen, cs, proofs, Transcript("a"), rng)
    )


def test_batching_speedup(params_128):
    import time

    cs, proofs = make_batch(params_128, 64)
    start = time.perf_counter()
    verify_bits(params_128.pedersen, cs, proofs, Transcript("a"))
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    batch_verify_bits(params_128.pedersen, cs, proofs, Transcript("a"), SeededRNG("g"))
    batched = time.perf_counter() - start
    # The batch path must at minimum be competitive; typically 2-5x faster.
    assert batched < sequential * 1.2


def test_batching_speedup_at_verifier_scale(params_128):
    """Acceptance bar: ≥3× at nb ≥ 4096 on the Schnorr backend."""
    import time

    cs, proofs = make_batch(params_128, SCALE_NB, seed="scale")
    start = time.perf_counter()
    verify_bits(params_128.pedersen, cs, proofs, Transcript("a"))
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    batch_verify_bits(
        params_128.pedersen, cs, proofs, Transcript("a"), SeededRNG("g")
    )
    batched = time.perf_counter() - start
    assert batched * SCALE_SPEEDUP < sequential, (
        f"batched {batched * 1e3:.1f}ms vs sequential {sequential * 1e3:.1f}ms "
        f"(speedup {sequential / batched:.2f}x < {SCALE_SPEEDUP}x)"
    )


def test_verifier_end_to_end_ablation(params_128):
    """The PublicVerifier's batch flag reproduces the same verdicts."""
    import time

    from repro.core.params import setup
    from repro.core.prover import Prover
    from repro.core.verifier import PublicVerifier

    params = setup(1.0, 2**-10, group="p128-sim", nb_override=512)
    message = Prover("prover-0", params, SeededRNG("p")).commit_coins(b"ctx")
    timings = {}
    for batch in (True, False):
        verifier = PublicVerifier(params, SeededRNG("v"), batch=batch)
        start = time.perf_counter()
        assert verifier.verify_coin_commitments(message, b"ctx")
        timings[batch] = time.perf_counter() - start
    # Margin for single-run timer noise, as elsewhere in this file.
    assert timings[True] < timings[False] * 1.2
