"""Ablation — batch verification vs sequential Σ-OR verification.

DESIGN.md calls out batch verification (random linear combination + one
multi-exponentiation) as our main optimization over the paper's verifier.
This bench quantifies it and asserts the batch path is never slower at
realistic batch sizes.
"""

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.sigma.batch import batch_verify_bits
from repro.crypto.sigma.or_bit import prove_bits, verify_bits
from repro.utils.rng import SeededRNG

BATCH = 32


def make_batch(params, n):
    rng = SeededRNG("ablate")
    bits = [rng.coin() for _ in range(n)]
    cs, os_ = params.pedersen.commit_vector(bits, rng)
    proofs = prove_bits(params.pedersen, cs, os_, Transcript("a"), rng)
    return cs, proofs


def test_sequential_verification(benchmark, params_128):
    cs, proofs = make_batch(params_128, BATCH)
    benchmark(lambda: verify_bits(params_128.pedersen, cs, proofs, Transcript("a")))


def test_batched_verification(benchmark, params_128):
    cs, proofs = make_batch(params_128, BATCH)
    rng = SeededRNG("gamma")
    benchmark(
        lambda: batch_verify_bits(params_128.pedersen, cs, proofs, Transcript("a"), rng)
    )


def test_batching_speedup(params_128):
    import time

    cs, proofs = make_batch(params_128, 64)
    start = time.perf_counter()
    verify_bits(params_128.pedersen, cs, proofs, Transcript("a"))
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    batch_verify_bits(params_128.pedersen, cs, proofs, Transcript("a"), SeededRNG("g"))
    batched = time.perf_counter() - start
    # The batch path must at minimum be competitive; typically 1.5-4x faster.
    assert batched < sequential * 1.2
