"""Section 6 microbenchmarks — group exponentiation per backend.

Paper (native code, Apple M1): one exponentiation costs 35 µs on
Gq ⊂ Z*p and 328 µs on Ristretto.  In pure Python the ordering inverts
(255-bit Edwards beats 2048-bit ``pow``); both numbers are reported and
the inversion is documented in repro.bench.runner.run_micro.
"""

import pytest

from repro.crypto.ristretto import RistrettoGroup
from repro.crypto.schnorr_group import SchnorrGroup
from repro.utils.rng import SeededRNG

EXPONENT_BITS = 256


@pytest.fixture(scope="module")
def exponents():
    rng = SeededRNG("exp")
    return [rng.randbits(EXPONENT_BITS) for _ in range(8)]


def test_exponentiation_modp2048(benchmark, exponents):
    group = SchnorrGroup.named("modp-2048")
    g = group.generator()

    def run():
        for e in exponents:
            g ** e

    benchmark(run)


def test_exponentiation_ristretto(benchmark, exponents):
    group = RistrettoGroup.instance()
    g = group.generator()

    def run():
        for e in exponents:
            g ** e

    benchmark(run)


def test_pedersen_commit_modp2048(benchmark, params_2048, rng):
    benchmark(params_2048.pedersen.commit, 12345, 67890)


def test_pedersen_commit_fixed_base_speedup(params_2048):
    """The comb tables must beat direct double exponentiation."""
    import time

    pedersen = params_2048.pedersen
    start = time.perf_counter()
    for i in range(20):
        pedersen.commit(i, i + 1)
    with_tables = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(20):
        (pedersen.g ** i) * (pedersen.h ** (i + 1))
    direct = time.perf_counter() - start
    assert with_tables < direct


def test_multi_exponentiation_vs_naive(benchmark, params_128):
    group = params_128.group
    rng = SeededRNG("me")
    bases = [group.random_element(rng) for _ in range(32)]
    exps = [group.random_scalar(rng) for _ in range(32)]
    result = benchmark(group.multi_scale, bases, exps)
    naive = group.identity()
    for b, e in zip(bases, exps):
        naive = naive * b ** e
    assert result == naive


def test_hash_to_group_modp(benchmark):
    group = SchnorrGroup.named("modp-2048")
    benchmark(group.hash_to_group, b"bench-label")


def test_ristretto_encode_decode(benchmark):
    group = RistrettoGroup.instance()
    point = group.generator() ** 987654321

    def run():
        return group.from_bytes(point.to_bytes())

    benchmark(run)
