"""Ablation — hash commitments vs Pedersen commitments inside Morra.

Algorithm 1 needs binding+hiding but not homomorphism, so our Morra uses
hash commitments.  This ablation quantifies the design choice the paper's
Table 1 reflects implicitly (Morra an order of magnitude cheaper per coin
than the Σ stages, which *do* need Pedersen).
"""

from repro.mpc.commit import HashCommitmentScheme
from repro.utils.rng import SeededRNG

COINS = 64


def test_hash_commit_batch(benchmark):
    scheme = HashCommitmentScheme()
    rng = SeededRNG("hc")
    values = [rng.field_element(2**61 - 1) for _ in range(COINS)]

    def run():
        return [scheme.commit(v, rng) for v in values]

    benchmark(run)


def test_pedersen_commit_batch(benchmark, params_128):
    rng = SeededRNG("pc")
    values = [rng.field_element(params_128.q) for _ in range(COINS)]

    def run():
        return [params_128.pedersen.commit_fresh(v, rng) for v in values]

    benchmark(run)


def test_hash_commitments_cheaper():
    import time

    scheme = HashCommitmentScheme()
    rng = SeededRNG("cmp")
    values = [rng.field_element(2**61 - 1) for _ in range(200)]

    start = time.perf_counter()
    for v in values:
        scheme.commit(v, rng)
    hash_cost = time.perf_counter() - start

    from repro.core.params import setup

    params = setup(1.0, 2**-10, group="p128-sim", nb_override=31)
    start = time.perf_counter()
    for v in values[:50]:
        params.pedersen.commit_fresh(v, rng)
    pedersen_cost = (time.perf_counter() - start) * 4  # normalize to 200

    assert hash_cost < pedersen_cost
