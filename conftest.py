"""Repo-root pytest hook: make ``src/`` importable without installation.

The canonical setup is ``pip install -e .``; this fallback keeps
``pytest tests/`` and ``pytest benchmarks/`` working in environments that
cannot build editable installs (e.g. offline containers missing the
``wheel`` package — see README's install note).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
