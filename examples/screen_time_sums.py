#!/usr/bin/env python3
"""Extension demo: verifiable DP *sums* of bounded values.

The paper's protocol verifies counting queries (bits) and one-hot
histograms.  A natural extension — built in `repro.core.bounded_sum`
entirely from the paper's own ingredients — handles k-bit bounded values:
each client range-proves its value via bit-decomposition commitments
(Σ-OR proof per bit), the value commitment is derived homomorphically,
and the curator adds Δ-scaled verifiable Binomial noise (Lemma B.1 with
sensitivity Δ = 2^k - 1).

Scenario: a screen-time study.  Participants report daily app minutes
bucketed to 4-bit values (0–15, in units of 30 min).  The study publishes
the verified DP total; a participant who claims 90 units is rejected by
the range proof, and a curator that shades the total is caught.

Run:  python examples/screen_time_sums.py
"""

from repro.core.bounded_sum import VerifiableBoundedSum
from repro.utils.rng import SeededRNG


def main() -> None:
    study = VerifiableBoundedSum(
        value_bits=4,          # values in [0, 15]
        epsilon=1.0,
        delta=2**-10,
        group="p128-sim",      # demo-sized group
        nb_override=16,        # demo-sized coin count
        rng=SeededRNG("study"),
    )
    print(f"bounded-sum study: values in [0, {study.sensitivity}], "
          f"eps={study.epsilon}, delta=2^-10, nb={study.params.nb} coins "
          f"(calibrated at eps/Delta per Lemma B.1)")

    reports = [3, 7, 12, 5, 0, 15, 9, 4, 6, 11]
    submissions = [
        study.submit(f"participant-{i}", v, SeededRNG(f"p{i}"))
        for i, v in enumerate(reports)
    ]
    release = study.run(submissions, curator_rng=SeededRNG("curator"))
    print(f"\ntrue total            : {sum(reports)}")
    print(f"verified DP estimate  : {release.estimate:+.1f}")
    print(f"accepted              : {release.accepted}")
    assert release.accepted

    # An out-of-range report cannot even be *created* honestly; a forged
    # one (commitments shuffled to fake a big value) fails validation.
    from repro.core.bounded_sum import RangeCommitment

    forged_base, forged_open = study.submit("cheater", 15, SeededRNG("f"))
    forged = (
        RangeCommitment(
            "cheater",
            forged_base.bit_commitments[::-1],  # tampered decomposition
            forged_base.bit_proofs,
        ),
        forged_open,
    )
    release2 = study.run(submissions + [forged], curator_rng=SeededRNG("curator2"))
    print(f"\nforged range proof    : rejected={list(release2.rejected_clients)}")
    assert release2.rejected_clients == ("cheater",)
    assert release2.accepted

    # A curator shading the total by +20 "noise" is caught.
    release3 = study.run(submissions, curator_rng=SeededRNG("curator3"), tamper_bias=20)
    print(f"tampering curator     : accepted={release3.accepted}")
    assert not release3.accepted


if __name__ == "__main__":
    main()
