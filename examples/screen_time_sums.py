#!/usr/bin/env python3
"""Extension demo: verifiable DP *sums* of bounded values.

The paper's protocol verifies counting queries (bits) and one-hot
histograms.  A natural extension — a BoundedSumQuery, built entirely
from the paper's own ingredients — handles k-bit bounded values: each
client range-proves its value via bit-decomposition commitments (Σ-OR
proof per bit), the value commitment is derived homomorphically, and
each prover adds Δ-scaled verifiable Binomial noise (Lemma B.1 with
sensitivity Δ = 2^k - 1).

Scenario: a screen-time study.  Participants report daily app minutes
bucketed to 4-bit values (0–15, in units of 30 min).  The study publishes
the verified DP total; a participant who forges a range proof is
rejected by name, and a curator that shades the total is caught.

Run:  python examples/screen_time_sums.py
"""

from repro import BoundedSumQuery, Session
from repro.api.engine import ProtocolEngine
from repro.core.prover import OutputTamperingProver
from repro.utils.rng import SeededRNG


def main() -> None:
    query = BoundedSumQuery(
        value_bits=4,          # values in [0, 15]
        epsilon=1.0,
        delta=2**-10,
    )
    session = Session(
        query,
        group="p128-sim",      # demo-sized group
        nb_override=16,        # demo-sized coin count
        rng=SeededRNG("study"),
    )
    print(f"bounded-sum study: values in [0, {query.sensitivity}], "
          f"eps={query.epsilon}, delta=2^-10, nb={session.params.nb} coins "
          f"(calibrated at eps/Delta per Lemma B.1)")

    reports = [3, 7, 12, 5, 0, 15, 9, 4, 6, 11]
    session.submit(reports)
    result = session.release()
    total = result.results[0]
    print(f"\ntrue total            : {sum(reports)}")
    print(f"verified DP estimate  : {total.estimate:+.1f}")
    print(f"accepted              : {result.accepted}")
    assert result.accepted

    # An out-of-range report cannot even be *created* honestly; a forged
    # one (commitments shuffled to fake a big value) fails validation and
    # is excluded by name in the public audit record.
    import dataclasses

    params = session.params
    forger = query.make_client("cheater", 15, SeededRNG("f"))
    broadcast, privates = forger.submit(params)
    forged = dataclasses.replace(
        broadcast,
        share_commitments=(tuple(reversed(broadcast.share_commitments[0])),),
    )
    session2 = Session(query, group="p128-sim", nb_override=16, rng=SeededRNG("study2"))
    session2.submit(reports)
    session2.engines[0].submit_prepared([(forged, privates)])
    result2 = session2.release()
    audit2 = result2.results[0].audit
    rejected = [cid for cid in audit2.clients if cid not in audit2.valid_clients()]
    print(f"\nforged range proof    : rejected={rejected}")
    assert rejected == ["cheater"]
    assert result2.accepted

    # A curator shading the total by +20 "noise" is caught.
    cheater = OutputTamperingProver(
        "prover-0", params, SeededRNG("bias"), bias=20, plan=query.build_plan()
    )
    engine = ProtocolEngine(
        params, plan=query.build_plan(), provers=[cheater], rng=SeededRNG("study3")
    )
    engine.submit_clients(
        query.make_client(f"p-{i}", v, SeededRNG(f"p{i}")) for i, v in enumerate(reports)
    )
    result3 = engine.run_release().release
    print(f"tampering curator     : accepted={result3.accepted}")
    assert not result3.accepted


if __name__ == "__main__":
    main()
