#!/usr/bin/env python3
"""Browser telemetry, PRIO-style, under attack — Figure 1 live.

Mozilla deploys PRIO/Poplar-style aggregation for telemetry (the paper's
Section 4.2 setting): clients secret-share a one-hot "which feature did
you use" vector to two servers, who validate inputs with a lightweight
sketch and publish a DP histogram.  This example runs the paper's two
attacks against that baseline and then against ΠBin:

* Figure 1(a): a corrupted server silently drops an honest client;
* Figure 1(b): a dishonest client + corrupted server smuggle in an
  illegal triple-count report;
* Section 1: a curator biases its "DP noise".

Baseline: attacks succeed, nothing flags.  ΠBin: attacks fail, the
culprit is named in a publicly replayable audit record.

Run:  python examples/telemetry_attacks.py
"""

from repro.attacks import (
    collusion_attack_on_pibin,
    collusion_attack_on_prio,
    exclusion_attack_on_pibin,
    exclusion_attack_on_prio,
    noise_biasing_on_curator,
    noise_biasing_on_pibin,
)
from repro.utils.rng import SeededRNG


def main() -> None:
    scenarios = [
        ("Figure 1(a) exclusion", exclusion_attack_on_prio, exclusion_attack_on_pibin),
        ("Figure 1(b) collusion", collusion_attack_on_prio, collusion_attack_on_pibin),
        ("noise biasing", noise_biasing_on_curator, noise_biasing_on_pibin),
    ]
    print(f"{'attack':24s} {'system':8s} {'adversary wins':15s} {'detected':9s} culprit")
    print("-" * 75)
    for i, (label, baseline, ours) in enumerate(scenarios):
        for fn in (baseline, ours):
            outcome = fn(rng=SeededRNG(f"demo-{i}-{fn.__name__}"))
            print(
                f"{label:24s} {outcome.system:8s} "
                f"{str(outcome.succeeded):15s} {str(outcome.detected):9s} "
                f"{outcome.culprit or '-'}"
            )
            if outcome.system == "pibin":
                assert outcome.detected and not outcome.succeeded
            else:
                assert outcome.succeeded and not outcome.detected
        print()
    print("baseline systems: every attack lands silently.")
    print("PiBin: every attack fails, with the cheater publicly named.")


if __name__ == "__main__":
    main()
