#!/usr/bin/env python3
"""Distributed serving: the same session in-process, on threads, and as
separate OS processes — with byte-identical releases.

The `repro.net` node layer splits ΠBin into its real deployment roles: a
client population submitting wire-encoded enrollments, K prover servers,
and an analyst front-end driving the unchanged protocol engine over a
transport.  Under a seeded RNG every substrate produces the *same bytes*
— the protocol is the protocol, only the plumbing changes.

Run:  python examples/distributed_serving.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CountQuery, Session  # noqa: E402
from repro.crypto.serialization import decode_message, encode_message  # noqa: E402
from repro.net import run_distributed_session  # noqa: E402
from repro.utils.rng import SeededRNG  # noqa: E402

SEED = "distributed-example"
VALUES = [1, 0, 1, 1, 0, 1, 0, 1]  # five opted in


def main() -> None:
    # The reference: an ordinary in-process session.
    session = Session(
        CountQuery(epsilon=1.0, delta=2**-10),
        num_provers=2,
        group="p64-sim",
        nb_override=32,
        rng=SeededRNG(SEED),
    )
    session.submit(VALUES)
    reference = session.release().release
    reference_bytes = encode_message(reference)
    print(f"in-process release:   estimate={reference.estimate[0]:+.1f}, "
          f"{len(reference_bytes)} wire bytes")

    # The same session as communicating nodes, two substrates.
    for transport in ("memory", "multiprocess"):
        outcome = run_distributed_session(
            CountQuery(epsilon=1.0, delta=2**-10),
            VALUES,
            transport=transport,
            num_servers=2,
            group="p64-sim",
            nb_override=32,
            seed=SEED,
            verify_equivalence=False,
        )
        distributed_bytes = encode_message(outcome["release"])
        match = distributed_bytes == reference_bytes
        print(f"{transport:12s} release: estimate={outcome['estimate'][0]:+.1f}, "
              f"front-end traffic {outcome['frontend_bytes_received']}B in / "
              f"{outcome['frontend_bytes_sent']}B out, byte-identical={match}")
        assert match, f"{transport} release diverged from the in-process path"

    # The release frame itself is a public, self-describing artifact: any
    # third party can decode it and re-read the audit record.
    replayed = decode_message(session.params.group, reference_bytes)
    assert replayed == reference
    assert replayed.audit.all_provers_honest()
    print("release frame decodes identically; audit: all provers honest")


if __name__ == "__main__":
    main()
