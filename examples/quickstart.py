#!/usr/bin/env python3
"""Quickstart: a verifiable DP count in the trusted-curator model.

A curator holds n client bits (say, "did you opt in to telemetry?") and
publishes a differentially private count.  Classically you must *trust*
the curator's noise; with ΠBin the curator also convinces a public
verifier — without revealing the noise — that the release is the true
count plus honest Binomial randomness.

Run:  python examples/quickstart.py
"""

from repro import setup, VerifiableBinomialProtocol
from repro.core.prover import OutputTamperingProver
from repro.utils.rng import SeededRNG


def main() -> None:
    # 1. Agree on public parameters: privacy budget, group, one curator.
    #    (p128-sim keeps this demo fast; use "modp-2048" in production.)
    params = setup(
        epsilon=1.0,
        delta=2**-10,
        num_provers=1,
        group="p128-sim",
        nb_override=64,  # demo-sized coin count; omit to use Lemma 2.1
    )
    print(f"public parameters: eps={params.epsilon:.3g} delta={params.delta:.3g} "
          f"nb={params.nb} coins, group={params.group.name}")

    # 2. Run the protocol over the clients' bits.
    bits = [1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 1]
    protocol = VerifiableBinomialProtocol(params, rng=SeededRNG("quickstart"))
    result = protocol.run_bits(bits)

    release = result.release
    print(f"\ntrue count            : {sum(bits)}")
    print(f"verified DP estimate  : {release.scalar_estimate:+.1f}")
    print(f"verifier accepted     : {release.accepted}")
    print(f"clients validated     : {len(release.audit.valid_clients())}/{len(bits)}")
    print("stage timings (ms)    : "
          + ", ".join(f"{k}={v:.0f}" for k, v in result.timer.milliseconds().items()))

    # 3. The point of the paper: a curator that shades the tally by +5
    #    "noise" is caught deterministically, not statistically.
    cheater = OutputTamperingProver("prover-0", params, SeededRNG("cheat"), bias=5)
    rigged = VerifiableBinomialProtocol(params, provers=[cheater], rng=SeededRNG("r"))
    bad = rigged.run_bits(bits).release
    print(f"\ntampering curator     : accepted={bad.accepted} "
          f"audit={ {k: v.value for k, v in bad.audit.provers.items()} }")
    assert not bad.accepted


if __name__ == "__main__":
    main()
