#!/usr/bin/env python3
"""Quickstart: a verifiable DP count in the trusted-curator model.

A curator holds n client bits (say, "did you opt in to telemetry?") and
publishes a differentially private count.  Classically you must *trust*
the curator's noise; with ΠBin the curator also convinces a public
verifier — without revealing the noise — that the release is the true
count plus honest Binomial randomness.

The query API is declarative: describe *what* to release (a CountQuery
at a given budget), submit clients, release.  The Session underneath is
an explicit phase machine (ENROLL → VALIDATE → COMMIT_COINS → MORRA →
ADJUST → RELEASE); pass ``chunk_size`` to stream millions of clients
through it in O(chunk) memory.

Run:  python examples/quickstart.py
"""

from repro import CountQuery, Session
from repro.api.engine import ProtocolEngine
from repro.core.client import Client
from repro.core.prover import OutputTamperingProver
from repro.utils.rng import SeededRNG


def main() -> None:
    # 1. Describe the query: privacy budget, one curator, demo-sized group.
    #    (p128-sim keeps this demo fast; use "modp-2048" in production.)
    query = CountQuery(epsilon=1.0, delta=2**-10)
    session = Session(
        query,
        num_provers=1,
        group="p128-sim",
        nb_override=64,  # demo-sized coin count; omit to use Lemma 2.1
        rng=SeededRNG("quickstart"),
    )
    params = session.params
    print(f"public parameters: eps={params.epsilon:.3g} delta={params.delta:.3g} "
          f"nb={params.nb} coins, group={params.group.name}")

    # 2. Submit the clients' bits (chunked — call submit as data arrives).
    bits = [1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 1]
    session.submit(bits[:6])
    session.submit(bits[6:])
    result = session.release()

    count = result.results[0]
    print(f"\ntrue count            : {sum(bits)}")
    print(f"verified DP estimate  : {count.estimate:+.1f}")
    print(f"verifier accepted     : {result.accepted}")
    print(f"clients validated     : {len(count.audit.valid_clients())}/{len(bits)}")
    print(f"budget ledger         : {session.accountant.ledger()}")
    print("stage timings (ms)    : "
          + ", ".join(f"{k}={v:.0f}" for k, v in count.timer.milliseconds().items()))

    # 3. The point of the paper: a curator that shades the tally by +5
    #    "noise" is caught deterministically, not statistically.  Custom
    #    (cheating) parties plug into the same engine the Session drives.
    cheater = OutputTamperingProver("prover-0", params, SeededRNG("cheat"), bias=5)
    engine = ProtocolEngine(params, provers=[cheater], rng=SeededRNG("r"))
    engine.submit_clients(
        Client(f"client-{i}", [bit], SeededRNG(f"c{i}")) for i, bit in enumerate(bits)
    )
    bad = engine.run_release().release
    print(f"\ntampering curator     : accepted={bad.accepted} "
          f"audit={ {k: v.value for k, v in bad.audit.provers.items()} }")
    assert not bad.accepted


if __name__ == "__main__":
    main()
