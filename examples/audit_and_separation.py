#!/usr/bin/env python3
"""Public auditability and the limits of verifiable DP.

Part 1 — **anyone can re-verify a release.**  The verifier of ΠBin
consumes only public messages, so a third party (a newspaper, a court, a
rival campaign) can replay the checks and reach the same verdicts.  We
run a release, then replay the simulator-style Line 12/13 check from
nothing but the public transcript.

Part 2 — **why computational assumptions are necessary (Theorem 5.2).**
On a deliberately tiny group where discrete logs are feasible, we play
the unbounded adversary both ways: equivocating a Pedersen commitment
(breaking soundness) and extracting from a perfectly-binding ElGamal
commitment (breaking privacy).  No commitment scheme resists both, so
information-theoretic verifiable DP cannot exist.

Run:  python examples/audit_and_separation.py
"""

from repro import CountQuery, Session, setup
from repro.analysis.separation import demonstrate_separation
from repro.api.engine import ProtocolEngine
from repro.core.client import Client
from repro.core.verifier import PublicVerifier
from repro.utils.rng import SeededRNG


def third_party_replay() -> None:
    session = Session(
        CountQuery(epsilon=1.0, delta=2**-10),
        num_provers=1,
        group="p128-sim",
        nb_override=32,
        rng=SeededRNG("audit"),
    )
    bits = [1, 1, 0, 1, 0]
    session.submit(bits)
    result = session.release()
    print("— part 1: third-party audit replay —")
    print(f"  original verifier accepted: {result.accepted}")

    # A third party reruns client validation from the public broadcasts.
    # (In this simulation we reconstruct the broadcasts by re-running the
    # deterministic clients; on a real deployment they are on the bulletin
    # board.)
    # batch=False: an auditor whose RNG is public (it must be, for anyone
    # to reproduce the verdicts) cannot rely on the random-linear-
    # combination batch — its weights would be predictable to a forger.
    params = setup(1.0, 2**-10, num_provers=1, group="p128-sim", nb_override=32)
    replica = PublicVerifier(params, SeededRNG("auditor"), name="newspaper", batch=False)
    engine = ProtocolEngine(params, verifier=replica, rng=SeededRNG("audit"))
    engine.submit_clients(
        Client(f"client-{i}", [bit], SeededRNG(f"c{i}")) for i, bit in enumerate(bits)
    )
    replay = engine.run_release()
    print(f"  newspaper's replica agrees: {replay.release.accepted}")
    print(f"  identical audit verdicts  : "
          f"{replay.release.audit.clients == result.results[0].audit.clients}\n")
    assert replay.release.accepted == result.accepted


def separation_demo() -> None:
    print("— part 2: Theorem 5.2 on a toy group —")
    report = demonstrate_separation(bias=7, secret=1, rng=SeededRNG("sep"))
    print(f"  {report.summary()}\n")
    assert report.pedersen_equivocation_succeeded
    assert report.elgamal_extraction_succeeded
    print("  conclusion: against unbounded adversaries you can keep the")
    print("  tally honest (binding) or the inputs hidden (hiding) — never")
    print("  both.  Verifiable DP therefore requires computational DP.")


def main() -> None:
    third_party_replay()
    separation_demo()


if __name__ == "__main__":
    main()
