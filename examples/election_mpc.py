#!/usr/bin/env python3
"""The paper's motivating scenario: a verifiable plurality election.

Voters pick 1 of M pizza toppings (Section 1's example).  Nobody — not
even the two tallying servers — should learn an individual vote, the
published histogram must be differentially private, and a corrupted
server must not be able to "nudge" the winner and blame DP noise.

The run below shows, in order:
1. an honest 2-server election (client-server MPC-DP, like PRIO/Poplar)
   through the declarative HistogramQuery/Session API;
2. a corrupted server trying to exclude a voter — caught and named;
3. a dishonest voter submitting 3 votes at once — rejected publicly.

Run:  python examples/election_mpc.py
"""

from repro import HistogramQuery, Session, setup
from repro.api.engine import ProtocolEngine
from repro.core.client import Client, NonBinaryClient
from repro.core.prover import InputDroppingProver, Prover
from repro.utils.rng import SeededRNG

TOPPINGS = ["margherita", "mushroom", "hawaiian", "anchovy"]


def honest_election() -> None:
    votes = [0] * 18 + [1] * 9 + [2] * 4 + [3] * 2  # margherita landslide
    session = Session(
        HistogramQuery(bins=len(TOPPINGS), epsilon=1.0, delta=2**-10),
        num_provers=2,
        group="p128-sim",
        nb_override=16,
        rng=SeededRNG("election"),
    )
    session.submit(votes)
    result = session.release()
    histogram = result.results[0]
    print("— honest 2-server election —")
    print(f"  accepted: {result.accepted}   "
          f"(charged end-to-end budget: {session.accountant.ledger()})")
    for name, count in zip(TOPPINGS, histogram.counts):
        print(f"  {name:12s} {count:+6.1f}")
    print(f"  winner: {TOPPINGS[histogram.argmax()]}\n")
    assert result.accepted
    assert histogram.argmax() == 0  # landslide survives the noise


def corrupted_server() -> None:
    params = setup(1.0, 2**-10, num_provers=2, group="p128-sim", nb_override=16)
    provers = [
        Prover("server-A", params, SeededRNG("A")),
        InputDroppingProver("server-B", params, SeededRNG("B"), victim="voter-0"),
    ]
    engine = ProtocolEngine(params, provers=provers, rng=SeededRNG("cs"))
    engine.submit_clients(
        Client(f"voter-{i}", [1], SeededRNG(f"v{i}")) for i in range(8)
    )
    release = engine.run_release().release
    print("— corrupted server drops voter-0's ballot —")
    print(f"  accepted: {release.accepted}")
    print(f"  audit   : { {k: v.value for k, v in release.audit.provers.items()} }\n")
    assert not release.accepted  # guaranteed inclusion of honest clients


def dishonest_voter() -> None:
    params = setup(1.0, 2**-10, num_provers=2, group="p128-sim", nb_override=16)
    engine = ProtocolEngine(params, rng=SeededRNG("dv"))
    voters = [Client(f"voter-{i}", [i % 2], SeededRNG(f"v{i}")) for i in range(6)]
    voters.append(NonBinaryClient("stuffer", [3], SeededRNG("s")))  # 3 votes!
    engine.submit_clients(voters)
    release = engine.run_release().release
    print("— ballot stuffer submits x = 3 —")
    print(f"  accepted: {release.accepted} (the election stands)")
    print(f"  stuffer : {release.audit.clients['stuffer'].value}")
    print(f"  honest voters counted: {len(release.audit.valid_clients())}")
    assert release.accepted
    assert "stuffer" not in release.audit.valid_clients()


def main() -> None:
    honest_election()
    corrupted_server()
    dishonest_voter()


if __name__ == "__main__":
    main()
