"""An open-loop load generator for the serving fleet (``repro loadgen``).

Closed-loop clients (issue, wait, issue) measure the *server's* pace:
when the fleet slows down, a closed loop offers less load, and the
latency numbers flatter the system — the coordinated-omission trap.
This generator is **open-loop** in the Locust/YCSB sense: session
arrivals follow a Poisson process at ``--rate`` per second, scheduled
*before* the run starts, and a slow fleet changes nothing about when
the next session is offered — queueing delay shows up in the latency
percentiles where it belongs.

Determinism: the whole offered load — arrival instants, the churning
client population behind every session, each session's root seed, and
therefore the exact bytes written to the wire — is computed up front
from ``--seed`` via :class:`~repro.utils.rng.SeededRNG`.  Two runs with
the same seed offer byte-identical load (``bytes_sent`` is exact and
reproducible); only the measured latencies differ.  Session *i* runs
under seed ``{seed}/g{i}``, so any served session can be replayed solo
through :class:`repro.api.Session` for the byte-identity check.

The population churns: the generator keeps ``--clients`` members and
replaces ``--churn`` of them (round-robin positions, freshly drawn
values) before each arrival — a stream of overlapping-but-distinct
populations rather than one frozen cohort, which is what a long-lived
deployment actually sees.

The target is a :class:`~repro.net.gateway.FleetGateway`
(``repro serve --fleet --listen PORT``); the protocol is one JSON line
per session out, one reply line per outcome back, fully pipelined.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.utils.rng import SeededRNG

__all__ = ["Arrival", "LoadPlan", "build_plan", "run_loadgen", "percentile"]


@dataclass
class Arrival:
    """One offered session: when, and the exact bytes that offer it."""

    index: int
    at_s: float
    payload: dict
    line: bytes


@dataclass
class LoadPlan:
    """The full offered load, computed before the run starts."""

    seed: str
    rate: float
    duration: float
    clients: int
    churn: int
    arrivals: list[Arrival] = field(default_factory=list)

    @property
    def bytes_planned(self) -> int:
        """Exact wire bytes the plan will send (deterministic per seed)."""
        return sum(len(arrival.line) for arrival in self.arrivals)


def _uniform(rng: SeededRNG) -> float:
    """A uniform draw in (0, 1] — SeededRNG deals in integers only, so
    build the float from 53 bits (IEEE double mantissa width); +1 keeps
    0 out of the log below."""
    return (rng.randbits(53) + 1) / 2.0**53


def build_plan(
    *,
    rate: float,
    duration: float,
    seed: str,
    clients: int = 6,
    churn: int = 1,
    bins: int = 1,
) -> LoadPlan:
    """Precompute the Poisson arrival schedule and per-session payloads.

    Inter-arrival gaps are exponential with mean ``1/rate`` (the Poisson
    process), drawn from ``SeededRNG(seed).fork("arrivals")``; the
    churning population draws from ``fork("population")`` — two
    independent deterministic streams, so changing the churn policy
    never shifts the arrival schedule.
    """
    if rate <= 0:
        raise ParameterError("rate must be > 0 sessions/sec")
    if duration <= 0:
        raise ParameterError("duration must be > 0 seconds")
    if clients < 1:
        raise ParameterError("clients must be >= 1")
    if not 0 <= churn <= clients:
        raise ParameterError("churn must be between 0 and clients")
    if bins < 1:
        raise ParameterError("bins must be >= 1")
    root = SeededRNG(seed)
    arrival_rng = root.fork("arrivals")
    population_rng = root.fork("population")
    values = [i % max(2, bins) if bins > 1 else i % 2 for i in range(clients)]

    plan = LoadPlan(
        seed=seed, rate=rate, duration=duration, clients=clients, churn=churn
    )
    t = 0.0
    index = 0
    while True:
        t += -math.log(_uniform(arrival_rng)) / rate
        if t >= duration:
            return plan
        for c in range(churn):
            pos = (index * churn + c) % clients
            values[pos] = (
                population_rng.coin() if bins == 1 else population_rng.randbelow(bins)
            )
        payload = {
            "op": "session",
            "id": index,
            "values": list(values),
            "seed": f"{seed}/g{index}",
        }
        line = (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        plan.arrivals.append(Arrival(index, t, payload, line))
        index += 1


def percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile over an ascending list (None when empty)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_loadgen(
    *,
    host: str = "127.0.0.1",
    port: int,
    rate: float,
    duration: float,
    seed: str = "loadgen",
    clients: int = 6,
    churn: int = 1,
    bins: int = 1,
    drain_timeout: float = 120.0,
    plan: LoadPlan | None = None,
) -> dict:
    """Offer the plan to a gateway and report what came back.

    Open-loop discipline: the send loop sleeps until each arrival's
    instant and writes its line, never waiting for a reply; a reader
    thread collects outcome lines concurrently.  After the offered
    window closes the run lingers up to ``drain_timeout`` for
    outstanding replies (they count as completed-late, not lost).
    """
    if plan is None:
        plan = build_plan(
            rate=rate,
            duration=duration,
            seed=seed,
            clients=clients,
            churn=churn,
            bins=bins,
        )

    sent_at: dict[int, float] = {}
    replies: dict[int, dict] = {}
    latencies: dict[int, float] = {}
    bytes_received = 0
    reply_lock = threading.Lock()
    all_replied = threading.Event()
    expected = len(plan.arrivals)

    sock = socket.create_connection((host, port), timeout=drain_timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def read_replies() -> None:
        nonlocal bytes_received
        try:
            with sock.makefile("rb") as lines:
                for raw in lines:
                    now = time.monotonic()
                    with reply_lock:
                        bytes_received += len(raw)
                    try:
                        reply = json.loads(raw)
                    except ValueError:
                        continue
                    rid = reply.get("id")
                    with reply_lock:
                        if rid is not None and rid not in replies:
                            replies[rid] = reply
                            if rid in sent_at:
                                latencies[rid] = now - sent_at[rid]
                        done = len(replies) >= expected
                    if done:
                        all_replied.set()
                        return
        except OSError:
            pass
        all_replied.set()

    reader = threading.Thread(target=read_replies, name="loadgen-reader", daemon=True)
    reader.start()

    bytes_sent = 0
    start = time.monotonic()
    try:
        for arrival in plan.arrivals:
            delay = start + arrival.at_s - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            sent_at[arrival.index] = time.monotonic()
            sock.sendall(arrival.line)
            bytes_sent += len(arrival.line)
        all_replied.wait(timeout=drain_timeout)
    finally:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
        reader.join(timeout=5.0)
    wall_s = time.monotonic() - start

    with reply_lock:
        statuses: dict[str, int] = {}
        for reply in replies.values():
            status = reply.get("status", "unknown")
            statuses[status] = statuses.get(status, 0) + 1
        released = statuses.get("released", 0)
        released_latencies = sorted(
            latencies[rid]
            for rid, reply in replies.items()
            if reply.get("status") == "released" and rid in latencies
        )
        completed = len(replies)

    return {
        "seed": plan.seed,
        "rate": plan.rate,
        "duration_s": plan.duration,
        "clients": plan.clients,
        "churn": plan.churn,
        "offered": expected,
        "completed": completed,
        "lost": expected - completed,
        "released": released,
        "aborted": statuses.get("aborted", 0),
        "crashed": statuses.get("crashed", 0),
        "rejected": statuses.get("rejected", 0),
        "timeout": statuses.get("timeout", 0),
        "wall_s": wall_s,
        "offered_rate": expected / plan.duration,
        "throughput_sessions_per_sec": released / wall_s if wall_s > 0 else 0.0,
        "p50_s": percentile(released_latencies, 0.50),
        "p95_s": percentile(released_latencies, 0.95),
        "p99_s": percentile(released_latencies, 0.99),
        "bytes_sent": bytes_sent,
        "bytes_planned": plan.bytes_planned,
        "bytes_received": bytes_received,
    }
