"""Core types for ``repro lint``: findings, pragmas, and the rule registry.

The linter is a *protocol-invariant* checker, not a style tool.  Every
rule encodes one invariant the test suite can only probe dynamically —
an unseeded RNG in a protocol path, a message type without a wire codec,
a blocking call on the event loop, an unattributed abort, a resource
leaked on the exception path.  Rules work purely on the AST (plus raw
source lines for pragma extraction); nothing here imports the modules it
checks, so linting cannot execute protocol code.

Suppression contract
--------------------
A finding is suppressed by a *pragma comment on the flagged line*::

    risky_call()  # repro: allow[REP001] -- seeded upstream by the harness

The justification text after ``--`` (or ``—``/``:``) is **required**:
an empty justification is itself a finding (:data:`PRAGMA_RULE`), as is
a pragma that suppresses nothing (dead pragmas rot).  Pragma-hygiene
findings cannot themselves be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "ModuleContext",
    "Pragma",
    "Rule",
    "ProjectRule",
    "RULES",
    "register",
    "rule_codes",
    "PRAGMA_RULE",
    "parse_pragmas",
]

# Pseudo-rule for pragma hygiene (bad or dead pragmas).  Not in the
# registry: it has no checker of its own and cannot be suppressed.
PRAGMA_RULE = "REP000"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source line.

    ``code`` is the stripped source text of the flagged line; baseline
    matching uses ``(rule, path, code)`` and ignores the line number so
    unrelated edits above a grandfathered finding do not un-baseline it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    code: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
        }


@dataclass
class ModuleContext:
    """Everything a rule gets to see about one source file."""

    path: str  # as reported in findings (relative when possible)
    module: str  # dotted module name ('' when not under the repro package)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            code=self.line_text(line),
        )


class Rule:
    """A per-module checker.  Subclasses set the class attributes and
    implement :meth:`check_module`.

    ``scope`` is a tuple of dotted-module prefixes the rule applies to
    *within the repro package*.  Files that do not resolve to a repro
    module at all (test fixtures, scratch files) are checked by every
    rule — scoping narrows the production tree, it never exempts code
    the user pointed the linter at explicitly.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()  # empty = everywhere

    def applies_to(self, module: str) -> bool:
        if not module or not self.scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A cross-module checker (sees every linted file at once)."""

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        return []

    def check_project(self, modules: list[ModuleContext]) -> list[Finding]:
        raise NotImplementedError


RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    instance = rule_cls()
    if not instance.code:
        raise ValueError(f"{rule_cls.__name__} has no rule code")
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return rule_cls


def rule_codes() -> list[str]:
    return sorted(RULES)


# Pragma parsing --------------------------------------------------------------

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*(?:--|—|–|:)\s*(?P<why>.*?))?\s*$"
)
_RULE_LIST_RE = re.compile(r"^REP\d{3}(\s*,\s*REP\d{3})*$")


@dataclass
class Pragma:
    """A parsed ``# repro: allow[...]`` suppression comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    used: bool = False


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(line, text) for every comment token.  Tokenizing (rather than
    regex over raw lines) keeps pragma *documentation* inside docstrings
    and string literals from parsing as live suppressions."""
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass  # the file already failed to parse; runner reports it
    return out


def parse_pragmas(ctx: ModuleContext) -> tuple[dict[int, Pragma], list[Finding]]:
    """Extract per-line pragmas; malformed ones become REP000 findings."""
    pragmas: dict[int, Pragma] = {}
    findings: list[Finding] = []

    def bad(lineno: int, message: str) -> None:
        findings.append(
            Finding(
                rule=PRAGMA_RULE,
                path=ctx.path,
                line=lineno,
                col=1,
                message=message,
                code=ctx.line_text(lineno),
            )
        )

    for lineno, text in _comment_tokens(ctx.source):
        if "repro:" not in text or "allow" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            # A comment that *looks* like a suppression attempt but does
            # not parse must not silently fail open.
            if re.search(r"#\s*repro:\s*allow", text):
                bad(lineno, "malformed pragma: expected "
                    "'# repro: allow[RULE] -- justification'")
            continue
        rules_text = match.group("rules").strip()
        if not _RULE_LIST_RE.match(rules_text):
            bad(lineno, f"pragma names no valid rule list: {rules_text!r}")
            continue
        rules = tuple(r.strip() for r in rules_text.split(","))
        if PRAGMA_RULE in rules:
            bad(lineno, f"{PRAGMA_RULE} (pragma hygiene) cannot be suppressed")
            continue
        why = (match.group("why") or "").strip()
        if not why:
            bad(
                lineno,
                f"pragma allow[{rules_text}] has no justification — write "
                "why the finding is acceptable after '--'",
            )
            continue
        pragmas[lineno] = Pragma(line=lineno, rules=rules, justification=why)
    return pragmas, findings
