"""``repro.lint`` — AST-based protocol-invariant static analysis.

``python -m repro lint [paths]`` checks the invariants every PR must
preserve but that dynamic tests only probe point-wise:

* **REP001 determinism** — protocol/wire/crypto paths draw randomness
  from injected :mod:`repro.utils.rng` handles, read clocks
  monotonically, and never iterate unordered sets.
* **REP002 wire exhaustiveness** — every message class in
  :mod:`repro.core.messages` has a uniquely-tagged codec in
  :mod:`repro.crypto.serialization`'s registry.
* **REP003 async hygiene** — no blocking calls inside ``async def``
  bodies; blocking work is awaited or executor-routed.
* **REP004 abort attribution** — ``ProtocolAbort`` raises carry
  ``party=``; no bare ``except``; broad handlers justify themselves.
* **REP005 resource lifecycle** — started processes and opened
  transports are released on the exception path.

Findings are suppressed per line with ``# repro: allow[RULE] -- why``
(justification mandatory) or grandfathered via ``lint-baseline.json``.
Dependency-free by design: pure ``ast`` + stdlib, and it never imports
the code it checks.
"""

from repro.lint.base import (
    Finding,
    ModuleContext,
    PRAGMA_RULE,
    ProjectRule,
    Rule,
    RULES,
    parse_pragmas,
    register,
)
from repro.lint.runner import (
    LintResult,
    build_parser,
    collect_files,
    lint_paths,
    main,
    module_name_for,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "PRAGMA_RULE",
    "ProjectRule",
    "Rule",
    "RULES",
    "parse_pragmas",
    "register",
    "LintResult",
    "build_parser",
    "collect_files",
    "lint_paths",
    "main",
    "module_name_for",
]
