"""The ``repro lint`` driver: file collection, pragmas, baseline, output.

Usage (see also ``python -m repro lint --help``)::

    python -m repro lint src/                 # report, exit 0
    python -m repro lint --strict src/        # exit 1 on any finding
    python -m repro lint --format json src/   # machine-readable
    python -m repro lint --write-baseline src/   # grandfather findings

Resolution order for each raw finding:

1. a ``# repro: allow[RULE] -- why`` pragma on the flagged line
   suppresses it (the justification is mandatory; pragma-hygiene
   violations surface as REP000 and cannot themselves be suppressed);
2. a matching entry in the baseline file grandfathers it (matching by
   ``(rule, path, source line text)``, so findings do not un-baseline
   themselves when unrelated lines move);
3. otherwise it is *actionable*: printed, and fatal under ``--strict``.

The baseline file defaults to ``lint-baseline.json`` in the current
directory when present; baselines are for adopting the linter on an
existing tree, not for waving new findings through — new code gets a
pragma with a written justification or a fix.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys

from repro.lint import base as _base
from repro.lint.base import (
    Finding,
    ModuleContext,
    ProjectRule,
    RULES,
    parse_pragmas,
)

# Importing the rule modules populates the registry.
from repro.lint import aborts as _aborts  # noqa: F401
from repro.lint import async_hygiene as _async_hygiene  # noqa: F401
from repro.lint import determinism as _determinism  # noqa: F401
from repro.lint import lifecycle as _lifecycle  # noqa: F401
from repro.lint import wire as _wire  # noqa: F401

__all__ = ["LintResult", "lint_paths", "collect_files", "module_name_for", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py"):
            out.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(out)


def module_name_for(path: str) -> str:
    """Dotted module name when ``path`` sits under the ``repro`` package,
    else ``''`` (standalone files are checked by every rule)."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            candidate = parts[i:]
            # Require the package layout (repro/__init__.py exists).
            package_dir = os.sep.join(parts[: i + 1])
            if not os.path.isfile(os.path.join(package_dir, "__init__.py")):
                continue
            dotted = ".".join(candidate)
            if dotted.endswith(".py"):
                dotted = dotted[: -len(".py")]
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            return dotted
    return ""


class LintResult:
    """Outcome of one lint run."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []  # actionable
        self.suppressed: list[tuple[Finding, str]] = []  # (finding, why)
        self.baselined: list[Finding] = []
        self.errors: list[str] = []  # unreadable/unparseable files
        self.checked_files = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_json(self) -> dict:
        return {
            "checked_files": self.checked_files,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [
                dict(f.to_json(), justification=why) for f, why in self.suppressed
            ],
            "baselined": [f.to_json() for f in self.baselined],
            "errors": self.errors,
            "rules": {
                code: rule.description for code, rule in sorted(RULES.items())
            },
        }


def _load_context(path: str, errors: list[str]) -> ModuleContext | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        errors.append(f"{path}: {type(exc).__name__}: {exc}")
        return None
    rel = os.path.relpath(path)
    reported = rel if not rel.startswith("..") else path
    return ModuleContext(
        path=reported, module=module_name_for(path), source=source, tree=tree
    )


def _load_baseline(path: str | None, errors: list[str]) -> set[tuple[str, str, str]]:
    if path is None:
        return set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)
    except (OSError, ValueError) as exc:
        errors.append(f"baseline {path}: {type(exc).__name__}: {exc}")
        return set()
    fingerprints: set[tuple[str, str, str]] = set()
    if not isinstance(entries, list):
        errors.append(f"baseline {path}: expected a JSON list of findings")
        return fingerprints
    for entry in entries:
        if isinstance(entry, dict) and {"rule", "path", "code"} <= set(entry):
            fingerprints.add((entry["rule"], entry["path"], entry["code"]))
        else:
            errors.append(f"baseline {path}: malformed entry {entry!r}")
    return fingerprints


def write_baseline(path: str, findings: list[Finding]) -> None:
    entries = [
        {"rule": f.rule, "path": f.path, "line": f.line, "code": f.code}
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")


def lint_paths(
    paths: list[str],
    *,
    baseline: str | None = None,
    rules: list[str] | None = None,
) -> LintResult:
    """Run the registered rules over ``paths`` and resolve suppressions."""
    result = LintResult()
    try:
        files = collect_files(paths)
    except FileNotFoundError as exc:
        result.errors.append(str(exc))
        return result

    selected = {
        code: rule
        for code, rule in RULES.items()
        if rules is None or code in rules
    }
    contexts: list[ModuleContext] = []
    for path in files:
        ctx = _load_context(path, result.errors)
        if ctx is not None:
            contexts.append(ctx)
    result.checked_files = len(contexts)

    raw: list[Finding] = []
    pragma_findings: list[Finding] = []
    pragmas_by_path: dict[str, dict[int, _base.Pragma]] = {}
    for ctx in contexts:
        pragmas, bad = parse_pragmas(ctx)
        pragmas_by_path[ctx.path] = pragmas
        pragma_findings.extend(bad)
        for rule in selected.values():
            if isinstance(rule, ProjectRule):
                continue
            if not rule.applies_to(ctx.module):
                continue
            raw.extend(rule.check_module(ctx))
    for rule in selected.values():
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(contexts))

    baseline_fps = _load_baseline(baseline, result.errors)

    for finding in raw:
        pragma = pragmas_by_path.get(finding.path, {}).get(finding.line)
        if pragma is not None and finding.rule in pragma.rules:
            pragma.used = True
            result.suppressed.append((finding, pragma.justification))
            continue
        if finding.fingerprint() in baseline_fps:
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    # Dead pragmas: a suppression that suppressed nothing this run.  Only
    # meaningful for rules that actually ran (partial runs with --rules
    # must not flag pragmas for rules they skipped).
    for path, pragmas in sorted(pragmas_by_path.items()):
        for pragma in pragmas.values():
            if pragma.used or not set(pragma.rules) & set(selected):
                continue
            ctx_lines = next(
                (c for c in contexts if c.path == path), None
            )
            code = ctx_lines.line_text(pragma.line) if ctx_lines else ""
            result.findings.append(
                Finding(
                    rule=_base.PRAGMA_RULE,
                    path=path,
                    line=pragma.line,
                    col=1,
                    message=(
                        f"dead pragma allow[{', '.join(pragma.rules)}] — "
                        "suppresses nothing on this line; remove it"
                    ),
                    code=code,
                )
            )
    result.findings.extend(pragma_findings)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


# CLI -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based protocol-invariant static analysis "
        "(see DESIGN.md 'Static analysis & invariants')",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/ when present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any non-baselined, unsuppressed finding remains "
        "(the CI mode)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} when it exists; 'none' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write every current finding to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset to run (e.g. REP001,REP004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.name:20s} {rule.description}")
        print(
            f"{_base.PRAGMA_RULE}  {'pragma-hygiene':20s} pragmas need a "
            "justification and must suppress something (not suppressible)"
        )
        return 0

    paths = list(args.paths or [])
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]

    rules: list[str] | None = None
    if args.rules:
        rules = [code.strip() for code in args.rules.split(",") if code.strip()]
        unknown = [code for code in rules if code not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    baseline = args.baseline
    if baseline == "none":
        baseline = None
    elif baseline is None and not args.write_baseline:
        baseline = DEFAULT_BASELINE if os.path.isfile(DEFAULT_BASELINE) else None

    result = lint_paths(paths, baseline=baseline, rules=rules)

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {target} "
            f"({result.checked_files} files checked)"
        )
        return 0 if not result.errors else 1

    if args.format == "json":
        json.dump(result.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for finding in result.findings:
            print(finding.render())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        summary = (
            f"{result.checked_files} file(s) checked: "
            f"{len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed by pragma, "
            f"{len(result.baselined)} baselined"
        )
        print(summary)

    if result.errors:
        return 2
    if args.strict and result.findings:
        return 1
    return 0
