"""REP003 — no blocking calls on the event loop.

The async serving stack (``net.aio``, ``net.fleet``, ``net.gateway``)
multiplexes N sessions on one loop; a single blocking call in an
``async def`` body stalls *every* session behind it.  The equivalence
tests cannot see this — a blocked loop still produces byte-identical
releases, just one session at a time — so concurrency regressions slip
through dynamically.  Statically, the contract is simple: inside an
``async def``, blocking work is either awaited or routed to an
executor thread (:class:`repro.net.aio.SessionChannel` is the sync
facade built for exactly that).

Flags, inside ``async def`` bodies only (nested *sync* ``def``/
``lambda`` bodies are skipped — they are what ``run_in_executor``
runs, so blocking calls are legal there):

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* constructing or connecting the *sync* transports
  (``SocketTransport(...)``, ``SocketTransport.connect/listen``,
  ``MultiprocessTransport(...)``) — the loop must speak
  ``AsyncSocketTransport``; blocking peers belong in executor threads;
* un-awaited calls to classically blocking I/O methods — ``.recv()``,
  ``.accept()``, ``.sendall()``, ``.recv_into()``, ``.makefile()`` —
  and blocking ``socket`` module constructors
  (``socket.create_connection``, ``socket.create_server``);
* ``subprocess.run/call/check_output`` and ``input()``.
"""

from __future__ import annotations

import ast

from repro.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["AsyncHygieneRule"]

_SYNC_TRANSPORTS = {"SocketTransport", "MultiprocessTransport", "InMemoryTransport"}
_BLOCKING_METHODS = {"recv", "recv_into", "accept", "sendall", "makefile"}
_BLOCKING_SOCKET_FUNCS = {"create_connection", "create_server", "getaddrinfo"}
_BLOCKING_SUBPROCESS = {"run", "call", "check_call", "check_output"}


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Walks one ``async def`` body; does not descend into nested sync
    scopes (their bodies run off-loop) but does follow nested async
    defs (they run on the loop too — handled by their own visit)."""

    def __init__(self, rule: "AsyncHygieneRule", ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._awaited: set[int] = set()

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(self.rule.code, node, message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync scope: executor-bound, blocking is legal

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # visited separately at top level

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        awaited = id(node) in self._awaited
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "time"
                and func.attr == "sleep"
            ):
                self.flag(node, "time.sleep() blocks the event loop — "
                          "await asyncio.sleep() instead")
            elif (
                isinstance(base, ast.Name)
                and base.id in _SYNC_TRANSPORTS
                and func.attr in {"connect", "listen"}
            ):
                self.flag(node, f"{base.id}.{func.attr}() is the blocking "
                          "transport — the loop speaks AsyncSocketTransport; "
                          "run sync peers in executor threads via "
                          "SessionChannel")
            elif (
                isinstance(base, ast.Name)
                and base.id == "socket"
                and func.attr in _BLOCKING_SOCKET_FUNCS
            ):
                self.flag(node, f"socket.{func.attr}() blocks the event "
                          "loop — use asyncio.open_connection/start_server")
            elif (
                isinstance(base, ast.Name)
                and base.id == "subprocess"
                and func.attr in _BLOCKING_SUBPROCESS
            ):
                self.flag(node, f"subprocess.{func.attr}() blocks the event "
                          "loop — use asyncio.create_subprocess_exec")
            elif func.attr in _BLOCKING_METHODS and not awaited:
                self.flag(node, f"un-awaited .{func.attr}() in an async "
                          "body — blocking I/O must be awaited (async "
                          "transport) or routed through "
                          "SessionChannel/run_in_executor")
        elif isinstance(func, ast.Name):
            if func.id in _SYNC_TRANSPORTS:
                self.flag(node, f"{func.id}(...) constructed in an async "
                          "body — the loop must use the async transport; "
                          "blocking peers belong in executor threads")
            elif func.id == "input":
                self.flag(node, "input() blocks the event loop")
            elif func.id == "sleep" and not awaited:
                self.flag(node, "un-awaited sleep() in an async body — "
                          "if this is time.sleep, use asyncio.sleep")
        self.generic_visit(node)


@register
class AsyncHygieneRule(Rule):
    code = "REP003"
    name = "async-hygiene"
    description = (
        "async def bodies must not make blocking calls; blocking work is "
        "awaited or routed through SessionChannel/executor threads"
    )
    # The check only inspects `async def` bodies, so it is safe (and
    # cheap) to apply across the package; the async serving stack lives
    # in net.aio / net.fleet / net.gateway.
    scope = ("repro",)

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                visitor = _AsyncBodyVisitor(self, ctx)
                for stmt in node.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings
