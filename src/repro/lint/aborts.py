"""REP004 — abort attribution and exception-handler discipline.

Verifiable DP's public-auditability story (Section 4.3) rests on every
failure naming a party: a :class:`repro.errors.ProtocolAbort` that
cannot say *who* broke the protocol forces operators to discard the
run with no recourse, and a broad ``except`` that swallows a typo-level
``AttributeError`` converts an implementation bug into a silent
protocol verdict.  Three checks:

* ``raise ProtocolAbort(...)`` / ``raise EarlyExit(...)`` must pass the
  ``party=`` keyword.  Sites where no single party is attributable (an
  accept timeout with several absent peers, a merge inconsistency) must
  say so in a pragma justification — the audit trail is the point.
* a bare ``except:`` is forbidden outright (it eats ``SystemExit`` and
  ``KeyboardInterrupt``).
* ``except Exception`` / ``except BaseException`` (alone or inside a
  tuple) requires a pragma justification — *unless* the handler ends by
  re-raising the caught exception bare (``raise``), the
  cleanup-then-propagate idiom, which preserves the original failure
  and its attribution.
"""

from __future__ import annotations

import ast

from repro.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["AbortAttributionRule"]

_ABORT_TYPES = {"ProtocolAbort", "EarlyExit"}
_BROAD = {"Exception", "BaseException"}


def _broad_names(type_node: ast.expr | None) -> list[ast.expr]:
    """The Exception/BaseException name nodes in an except clause."""
    if type_node is None:
        return []
    candidates = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for node in candidates:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            out.append(node)
        elif isinstance(node, ast.Attribute) and node.attr in _BROAD:
            out.append(node)
    return out


def _reraises_bare(handler: ast.ExceptHandler) -> bool:
    """True when the handler body's control flow ends in a bare ``raise``
    (cleanup-then-propagate keeps the original exception alive)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Raise) and stmt.exc is None:
            return True
    return False


@register
class AbortAttributionRule(Rule):
    code = "REP004"
    name = "abort-attribution"
    description = (
        "ProtocolAbort raises must attribute a party; bare except is "
        "forbidden; except Exception needs a justified pragma unless it "
        "re-raises bare"
    )
    scope = ()  # everywhere

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                findings.extend(self._check_raise(ctx, node))
            elif isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(ctx, node))
        return findings

    def _check_raise(self, ctx: ModuleContext, node: ast.Raise) -> list[Finding]:
        exc = node.exc
        if not isinstance(exc, ast.Call):
            return []
        func = exc.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name not in _ABORT_TYPES:
            return []
        for kw in exc.keywords:
            if kw.arg == "party":
                return []
            if kw.arg is None:  # **kwargs — cannot see inside; trust it
                return []
        return [
            ctx.finding(
                self.code, node,
                f"{name} raised without party= attribution — public "
                "auditability requires naming the misbehaving party (or a "
                "pragma explaining why none is attributable)",
            )
        ]

    def _check_handler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> list[Finding]:
        if node.type is None:
            return [
                ctx.finding(
                    self.code, node,
                    "bare except: forbidden — it swallows SystemExit/"
                    "KeyboardInterrupt; name the exception types",
                )
            ]
        broad = _broad_names(node.type)
        if not broad or _reraises_bare(node):
            return []
        return [
            ctx.finding(
                self.code, anchor,
                f"except {anchor.id if isinstance(anchor, ast.Name) else anchor.attr} "
                "without re-raise — narrow the type (ReproError/OSError/...) "
                "or justify the supervisor boundary with a pragma",
            )
            for anchor in broad
        ]
