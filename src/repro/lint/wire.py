"""REP002 — wire-codec exhaustiveness for protocol message types.

Every wire-visible message class defined in :mod:`repro.core.messages`
— by convention a ``@dataclass(frozen=True)`` at module top level —
must have a codec entry in :mod:`repro.crypto.serialization`'s
``_REGISTRY`` (tag → ``(type, encode_body, decode_body)``), and every
tag must be unique.  Historically a new message type without a codec
survived until a *distributed* smoke test first tried to send it; this
rule turns that into a lint failure on the defining line.

This is a cross-module check: it parses both files' ASTs and joins
class names against registry entries.  When only one side of the pair
is in the linted path set, the counterpart is loaded from its sibling
location on disk so ``repro lint src/repro/core/messages.py`` still
sees the whole invariant.

The static claim has a dynamic twin: ``tests/core`` auto-generates an
encode→decode round-trip test from the same registry, catching codec
*bugs* where this rule catches codec *absence*.
"""

from __future__ import annotations

import ast
import os

from repro.lint.base import Finding, ModuleContext, ProjectRule, register

__all__ = ["WireExhaustivenessRule"]

MESSAGES_MODULE = "repro.core.messages"
SERIALIZATION_MODULE = "repro.crypto.serialization"
# messages.py path suffix -> serialization.py path suffix (and back), for
# loading the counterpart from disk.
_SIBLINGS = {
    MESSAGES_MODULE: os.path.join("core", "messages.py"),
    SERIALIZATION_MODULE: os.path.join("crypto", "serialization.py"),
}


def message_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Top-level ``@dataclass(frozen=True)`` classes — the wire-visible
    message surface (status enums and mutable records are not framed
    individually; they travel inside other messages' bodies)."""
    out: dict[str, ast.ClassDef] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for dec in node.decorator_list:
            if (
                isinstance(dec, ast.Call)
                and isinstance(dec.func, ast.Name)
                and dec.func.id == "dataclass"
                and any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
            ):
                out[node.name] = node
    return out


def registry_entries(tree: ast.Module) -> list[tuple[bytes | None, str | None, ast.expr]]:
    """(tag, class name, key node) triples from the ``_REGISTRY`` dict
    literal, wherever it is assigned (module level or inside the lazy
    ``_registry()`` initializer)."""
    entries: list[tuple[bytes | None, str | None, ast.expr]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "_REGISTRY" not in targets or not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            tag = key.value if isinstance(key, ast.Constant) and isinstance(key.value, bytes) else None
            cls_name: str | None = None
            if isinstance(value, ast.Tuple) and value.elts:
                first = value.elts[0]
                if isinstance(first, ast.Attribute):
                    cls_name = first.attr
                elif isinstance(first, ast.Name):
                    cls_name = first.id
            entries.append((tag, cls_name, key if key is not None else node))
    return entries


def _load_counterpart(present: ModuleContext, missing_module: str) -> ModuleContext | None:
    """Given one half of the pair, read the other from its sibling path."""
    suffix = _SIBLINGS[
        MESSAGES_MODULE if present.module == SERIALIZATION_MODULE else SERIALIZATION_MODULE
    ]
    package_root = present.path
    for _ in range(2):  # strip core/messages.py or crypto/serialization.py
        package_root = os.path.dirname(package_root)
    candidate = os.path.join(package_root, suffix)
    if not os.path.isfile(candidate):
        return None
    with open(candidate, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=candidate)
    except SyntaxError:
        return None
    return ModuleContext(
        path=candidate, module=missing_module, source=source, tree=tree
    )


@register
class WireExhaustivenessRule(ProjectRule):
    code = "REP002"
    name = "wire-exhaustiveness"
    description = (
        "every frozen-dataclass message in core.messages needs a "
        "uniquely-tagged codec entry in crypto.serialization's registry"
    )

    def check_project(self, modules: list[ModuleContext]) -> list[Finding]:
        by_module = {ctx.module: ctx for ctx in modules if ctx.module}
        messages_ctx = by_module.get(MESSAGES_MODULE)
        serial_ctx = by_module.get(SERIALIZATION_MODULE)
        if messages_ctx is None and serial_ctx is None:
            return []
        if messages_ctx is None:
            messages_ctx = _load_counterpart(serial_ctx, MESSAGES_MODULE)
        if serial_ctx is None:
            serial_ctx = _load_counterpart(messages_ctx, SERIALIZATION_MODULE)
        if messages_ctx is None or serial_ctx is None:
            # Half the invariant is unreadable: report on what we have.
            present = by_module.get(MESSAGES_MODULE) or by_module.get(SERIALIZATION_MODULE)
            return [
                present.finding(
                    self.code,
                    present.tree,
                    "cannot locate the counterpart module for the wire "
                    "registry cross-check (messages.py <-> serialization.py)",
                )
            ]
        return self.check_pair(messages_ctx, serial_ctx)

    def check_pair(
        self, messages_ctx: ModuleContext, serial_ctx: ModuleContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        classes = message_classes(messages_ctx.tree)
        entries = registry_entries(serial_ctx.tree)

        if not entries:
            findings.append(
                serial_ctx.finding(
                    self.code,
                    serial_ctx.tree,
                    "no _REGISTRY dict literal found — the wire codec "
                    "registry must be a statically-visible dict",
                )
            )
            return findings

        seen_tags: dict[bytes, ast.expr] = {}
        registered: dict[str, ast.expr] = {}
        for tag, cls_name, node in entries:
            if tag is None:
                findings.append(
                    serial_ctx.finding(
                        self.code, node,
                        "registry tag is not a bytes literal — tags must be "
                        "statically checkable",
                    )
                )
            elif tag in seen_tags:
                findings.append(
                    serial_ctx.finding(
                        self.code, node,
                        f"duplicate wire tag {tag!r} — tags must be unique "
                        "or decode_message dispatch is ambiguous",
                    )
                )
            else:
                seen_tags[tag] = node
            if cls_name is None:
                findings.append(
                    serial_ctx.finding(
                        self.code, node,
                        "registry entry's first element is not a message "
                        "class reference",
                    )
                )
                continue
            if cls_name in registered:
                findings.append(
                    serial_ctx.finding(
                        self.code, node,
                        f"message class {cls_name} registered twice",
                    )
                )
            registered[cls_name] = node
            if cls_name not in classes:
                findings.append(
                    serial_ctx.finding(
                        self.code, node,
                        f"registry references {cls_name}, which is not a "
                        "frozen dataclass in core.messages",
                    )
                )

        for cls_name, class_node in sorted(classes.items()):
            if cls_name not in registered:
                findings.append(
                    messages_ctx.finding(
                        self.code, class_node,
                        f"message class {cls_name} has no codec entry in "
                        "crypto.serialization's registry — it cannot cross "
                        "a transport (add an encode/decode pair and a "
                        "unique tag)",
                    )
                )
        return findings
