"""REP001 — determinism in protocol, wire, and crypto paths.

The repo's load-bearing guarantee is that every serving topology
releases bytes identical to the seeded in-process ``Session``.  That
only holds if *all* randomness flows through injected
:class:`repro.utils.rng.RNG` handles and all deadlines are monotonic.
An ``os.urandom`` call, a module-level ``random.*`` draw, a ``uuid4``
tie-breaker, or a wall-clock ``time.time()`` deadline in a protocol
path silently breaks byte-equivalence in ways the equivalence tests can
only catch if a test happens to cross that code path with a seed.

Flags, inside the protocol/wire/crypto scope:

* calls into the ``random`` module (``random.random()``,
  ``random.randint()``, …) — including names imported *from* it
  (``from random import shuffle``).  Constructing an explicitly seeded
  ``random.Random(seed)`` instance is allowed; ``random.SystemRandom``
  is not (it is ``os.urandom`` in a hat).
* ``os.urandom``, any ``secrets.*`` call, and ``uuid.uuid1/3/4``
  — unseeded entropy must come from ``utils.rng.SystemRNG`` via an
  injected handle so tests can swap in ``SeededRNG``.
* wall-clock reads used where code needs "now": ``time.time()``,
  ``time.time_ns()``, ``datetime.now()``/``utcnow()``/``today()`` —
  deadlines and elapsed-time math must use ``time.monotonic()`` /
  ``time.perf_counter()`` (NTP steps must not fire protocol timeouts).
* iteration over an unordered ``set`` (a set literal, ``set(...)``
  call, or set comprehension as the iterable of a ``for`` or a
  comprehension clause) — Python sets iterate in hash order, which is
  salted for strings; anything order-sensitive must ``sorted(...)``
  first.
"""

from __future__ import annotations

import ast

from repro.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["DeterminismRule"]

# Wall-clock attribute calls: module alias -> banned attributes.
_WALL_CLOCK = {
    "time": {"time", "time_ns"},
    "datetime": {"now", "utcnow", "today"},
}
_UUID_BANNED = {"uuid1", "uuid3", "uuid4"}
_RANDOM_ALLOWED = {"Random"}  # explicit seeded instance is fine


def _collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """Map local alias -> module, and local name -> 'module.attr' for
    ``from module import name`` bindings."""
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


@register
class DeterminismRule(Rule):
    code = "REP001"
    name = "determinism"
    description = (
        "protocol/wire/crypto paths must draw randomness from injected "
        "utils.rng handles, read clocks monotonically, and never iterate "
        "an unordered set"
    )
    scope = (
        "repro.core",
        "repro.crypto",
        "repro.mpc",
        "repro.api",
        "repro.net",
        "repro.sharing",
        "repro.dp",
        "repro.loadgen",
    )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        modules, from_names = _collect_imports(ctx.tree)
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(ctx.finding(self.code, node, message))

        def check_call(node: ast.Call) -> None:
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base = modules.get(func.value.id)
                attr = func.attr
                if base == "random" and attr not in _RANDOM_ALLOWED:
                    flag(node, f"module-level random.{attr}() — draw from an "
                         "injected utils.rng handle (SeededRNG in tests)")
                elif base == "secrets":
                    flag(node, f"secrets.{attr}() — unseeded entropy; use "
                         "utils.rng.SystemRNG via an injected RNG handle")
                elif base == "os" and attr == "urandom":
                    flag(node, "os.urandom() — unseeded entropy; use an "
                         "injected utils.rng handle")
                elif base == "uuid" and attr in _UUID_BANNED:
                    flag(node, f"uuid.{attr}() — nondeterministic identifier; "
                         "derive ids from session seeds/counters")
                elif base in _WALL_CLOCK and attr in _WALL_CLOCK[base]:
                    flag(node, f"{base}.{attr}() — wall clock; use "
                         "time.monotonic()/perf_counter() for deadlines "
                         "and elapsed time")
                elif (
                    base is None
                    and from_names.get(func.value.id) == "datetime.datetime"
                    and attr in _WALL_CLOCK["datetime"]
                ):
                    flag(node, f"datetime.{attr}() — wall clock; protocol "
                         "code needs monotonic time")
            elif isinstance(func, ast.Attribute):
                # datetime.datetime.now() — two-level attribute chain.
                value = func.value
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and modules.get(value.value.id) == "datetime"
                    and func.attr in _WALL_CLOCK["datetime"]
                ):
                    flag(node, f"datetime.{value.attr}.{func.attr}() — wall "
                         "clock; protocol code needs monotonic time")
            elif isinstance(func, ast.Name):
                origin = from_names.get(func.id)
                if origin is None:
                    return
                module, _, attr = origin.rpartition(".")
                if module == "random" and attr not in _RANDOM_ALLOWED:
                    flag(node, f"{func.id}() (from random) — draw from an "
                         "injected utils.rng handle")
                elif module == "secrets":
                    flag(node, f"{func.id}() (from secrets) — unseeded "
                         "entropy; use an injected utils.rng handle")
                elif module == "os" and attr == "urandom":
                    flag(node, "urandom() (from os) — unseeded entropy; use "
                         "an injected utils.rng handle")
                elif module == "uuid" and attr in _UUID_BANNED:
                    flag(node, f"{func.id}() (from uuid) — nondeterministic "
                         "identifier")
                elif module == "time" and attr in _WALL_CLOCK["time"]:
                    flag(node, f"{func.id}() (from time) — wall clock; use "
                         "time.monotonic()/perf_counter()")
                elif module == "datetime" and attr == "datetime":
                    pass  # the class itself; calls are caught above

        def check_iteration(iter_node: ast.expr) -> None:
            if _is_set_expr(iter_node):
                flag(iter_node, "iteration over an unordered set — wrap in "
                     "sorted(...) so the order is deterministic")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                check_call(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                check_iteration(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    check_iteration(gen.iter)
        return findings
