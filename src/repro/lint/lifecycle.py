"""REP005 — resource release on the exception path.

The exact bug class PR 5 fixed by hand in ``serve._start_socket``: a
function starts child processes or opens a transport/listener, an
exception fires before the happy-path cleanup, and the children/sockets
outlive the session (CI hangs on join, ports stay bound).  Dynamic
tests only catch the leak when a test happens to force the exact
failure ordering; statically the discipline is checkable per function:

    a locally-acquired resource must be released on the exception path
    — a ``with`` block, a release call inside a ``finally`` or
    ``except`` handler, or ownership must visibly leave the function.

**Acquire sites** (heuristic, tuned to this repo's idiom):

* ``var = SocketTransport.connect/listen(...)``,
  ``var = await AsyncSocketTransport.listen(...)``,
  ``var = MultiprocessTransport(...)``, ``var = socket.socket(...)``,
  ``var = socket.create_server/create_connection(...)``;
* ``var.start()`` where ``var`` is process-like — its name contains
  ``proc`` or it was assigned from a ``*Process(...)`` call.  (Threads
  are deliberately exempt: daemon worker threads are the repo's idiom
  and die with the process.)

**Release evidence** (any one suffices):

* the acquire happens in a ``with``/``async with`` item;
* somewhere in the function, inside a ``finally`` block or ``except``
  handler, there is a release call — ``var.close()``, ``var.aclose()``,
  ``var.terminate()``, ``var.kill()``, ``var.join()``, ``var.stop()``
  — or a call passing ``var``, or a call to a helper whose *name* is
  release-shaped (``_terminate_processes(...)``, ``*_cleanup(...)``);
* ownership escapes: ``var`` is returned/yielded, stored on an
  attribute or subscript, or passed to a non-release call (a
  constructor like ``ServerNode(transport, ...)`` takes over closing).

A release that only happens on the straight-line path (no try/finally)
is precisely the bug and is flagged.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import Finding, ModuleContext, Rule, register

__all__ = ["ResourceLifecycleRule"]

_TRANSPORT_CLASSES = {
    "SocketTransport",
    "AsyncSocketTransport",
    "MultiprocessTransport",
}
_OPENER_METHODS = {"connect", "listen"}
_SOCKET_FUNCS = {"socket", "create_server", "create_connection"}
_RELEASE_METHODS = {
    "close", "aclose", "terminate", "kill", "join", "stop", "shutdown",
    "cancel", "release", "disconnect",
}
_RELEASE_NAME_RE = re.compile(
    r"terminate|close|cleanup|teardown|stop|shutdown|kill|release", re.IGNORECASE
)
_PROCESS_NAME_RE = re.compile(r"proc", re.IGNORECASE)


def _unwrap_await(node: ast.expr) -> ast.expr:
    return node.value if isinstance(node, ast.Await) else node


def _is_opener_call(node: ast.expr) -> bool:
    node = _unwrap_await(node)
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in _TRANSPORT_CLASSES and func.attr in _OPENER_METHODS:
            return True
        if func.value.id == "socket" and func.attr in _SOCKET_FUNCS:
            return True
    if isinstance(func, ast.Name) and func.id in _TRANSPORT_CLASSES:
        return True
    return False


def _func_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


class _FunctionScan:
    """Single-function analysis: acquires, protected regions, escapes."""

    def __init__(self, rule: "ResourceLifecycleRule", ctx: ModuleContext,
                 func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.rule = rule
        self.ctx = ctx
        self.func = func
        # name -> acquire node (first acquire wins for the report anchor)
        self.acquires: dict[str, ast.AST] = {}
        self.process_like: set[str] = set()
        self.local_containers: set[str] = set()
        self.protected_calls: list[ast.Call] = []  # calls in finally/except
        self.with_acquired: set[str] = set()
        self.escaped: set[str] = set()
        self.released_inline: set[str] = set()  # release calls outside finally/except

    def run(self) -> list[Finding]:
        self._collect(self.func.body, protected=False)
        findings: list[Finding] = []
        for name, node in sorted(self.acquires.items(), key=lambda kv: kv[1].lineno):
            if name in self.with_acquired or name in self.escaped:
                continue
            if self._protected_release(name):
                continue
            if name in self.released_inline:
                message = (
                    f"{name!r} is released only on the straight-line path — "
                    "an exception before the release leaks it; move the "
                    "release into a finally block or use a context manager"
                )
            else:
                message = (
                    f"{name!r} is acquired here but never released on the "
                    "exception path — close/terminate it in a finally/except "
                    "or hand ownership off explicitly"
                )
            findings.append(self.ctx.finding(self.rule.code, node, message))
        return findings

    # -- pass 1: walk statements, tracking finally/except protection ------

    def _collect(self, body: list[ast.stmt], protected: bool) -> None:
        for stmt in body:
            self._collect_stmt(stmt, protected)

    def _collect_stmt(self, stmt: ast.stmt, protected: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested function: its own scan
        if isinstance(stmt, ast.Try):
            self._collect(stmt.body, protected)
            self._collect(stmt.orelse, protected)
            for handler in stmt.handlers:
                self._collect(handler.body, True)
            self._collect(stmt.finalbody, True)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if _is_opener_call(item.context_expr):
                    if isinstance(item.optional_vars, ast.Name):
                        self.with_acquired.add(item.optional_vars.id)
                        self.acquires.setdefault(item.optional_vars.id, stmt)
            self._collect(stmt.body, protected)
            return
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            self._scan_exprs([stmt], protected, shallow=True)
            self._collect(stmt.body, protected)
            self._collect(getattr(stmt, "orelse", []) or [], protected)
            return
        # Plain statement: record acquires/containers, then scan
        # expressions for releases and escapes.
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            stmt = ast.copy_location(
                ast.Assign(targets=[stmt.target], value=stmt.value), stmt
            )
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
            if isinstance(target, ast.Name):
                if _is_opener_call(value):
                    self.acquires.setdefault(target.id, stmt)
                unwrapped = _unwrap_await(value)
                if isinstance(unwrapped, ast.Call) and _func_name(unwrapped).endswith(
                    "Process"
                ):
                    self.process_like.add(target.id)
                if isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in {"list", "dict", "set"}
                ):
                    self.local_containers.add(target.id)
                if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
                    self.local_containers.add(target.id)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                for name_node in ast.walk(stmt.value):
                    if isinstance(name_node, ast.Name):
                        self.escaped.add(name_node.id)
        self._scan_exprs([stmt], protected)

    # -- expression-level scanning ----------------------------------------

    def _scan_exprs(self, nodes, protected: bool, *, shallow: bool = False) -> None:
        for root in nodes:
            for node in self._walk_no_nested(root, shallow):
                if isinstance(node, ast.Call):
                    self._note_call(node, protected)
                elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    value = getattr(node, "value", None)
                    if value is not None:
                        for name_node in ast.walk(value):
                            if isinstance(name_node, ast.Name):
                                self.escaped.add(name_node.id)

    def _walk_no_nested(self, root, shallow: bool):
        """Walk without descending into nested function bodies; when
        ``shallow``, only the statement's own header expressions."""
        if shallow:
            for field in ("test", "iter", "target"):
                child = getattr(root, field, None)
                if child is not None:
                    yield from ast.walk(child)
            return
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def _note_call(self, call: ast.Call, protected: bool) -> None:
        func = call.func
        name = _func_name(call)
        # process-like acquire: var.start()
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "start"
            and isinstance(func.value, ast.Name)
        ):
            var = func.value.id
            if var in self.process_like or _PROCESS_NAME_RE.search(var):
                self.acquires.setdefault(var, call)
        if protected:
            self.protected_calls.append(call)
            return
        # Release on the straight-line path only.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RELEASE_METHODS
            and isinstance(func.value, ast.Name)
        ):
            self.released_inline.add(func.value.id)
            return
        # Ownership transfer: var passed to a non-release call.  Appends
        # into *local* containers keep ownership in this function.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.local_containers
            and func.attr in {"append", "add", "insert", "extend", "setdefault"}
        ):
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for name_node in ast.walk(arg):
                if isinstance(name_node, ast.Name):
                    self.escaped.add(name_node.id)

    # -- verdicts -----------------------------------------------------------

    def _protected_release(self, var: str) -> bool:
        for call in self.protected_calls:
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == var
                and func.attr in _RELEASE_METHODS
            ):
                return True
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for name_node in ast.walk(arg):
                    if isinstance(name_node, ast.Name) and name_node.id == var:
                        return True
            name = _func_name(call)
            if isinstance(func, ast.Name) and _RELEASE_NAME_RE.search(name):
                # A release-shaped helper (e.g. _terminate_processes)
                # in a finally/except is taken on faith for container-
                # held resources the helper was written next to.
                return True
        return False


@register
class ResourceLifecycleRule(Rule):
    code = "REP005"
    name = "resource-lifecycle"
    description = (
        "started processes and opened transports/listeners must be "
        "released on the exception path (finally/except/with) or visibly "
        "change owner"
    )
    scope = ()  # everywhere

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_FunctionScan(self, ctx, node).run())
        return findings
