"""Attack scenarios from the paper.

Each scenario is run twice: against the baseline system (where it
succeeds silently) and against ΠBin (where it is detected/prevented and
publicly attributed).  The test-suite asserts both halves; the CLI
(`python -m repro attacks`) prints the side-by-side outcome.
"""

from repro.attacks.scenarios import (
    AttackOutcome,
    exclusion_attack_on_prio,
    exclusion_attack_on_pibin,
    collusion_attack_on_prio,
    collusion_attack_on_pibin,
    noise_biasing_on_curator,
    noise_biasing_on_pibin,
)

__all__ = [
    "AttackOutcome",
    "exclusion_attack_on_prio",
    "exclusion_attack_on_pibin",
    "collusion_attack_on_prio",
    "collusion_attack_on_pibin",
    "noise_biasing_on_curator",
    "noise_biasing_on_pibin",
]
