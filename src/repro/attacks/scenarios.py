"""Executable versions of the paper's attacks (Figure 1 and Section 1).

Three attacks, each against the vulnerable baseline and against ΠBin:

* **Exclusion** (Figure 1a): a corrupted server makes an honest client
  fail validation, erasing its vote.  In PRIO/Poplar the honest server
  "cannot distinguish between an honest run and a corrupted run"; in
  ΠBin the dropped commitment breaks the Line 13 product and the server
  is named.
* **Collusion** (Figure 1b, footnote 6): a dishonest client leaks its
  sketch mask and peer-share to a corrupted server, which publishes the
  exact complement of the honest server's messages, admitting an illegal
  input (e.g. 3 votes at once).  In ΠBin the client's Σ-OR proof cannot
  be forged, so the input is publicly rejected no matter what any server
  does.
* **Noise biasing** (Section 1's motivating attack): a malicious curator
  shifts the tally and blames DP noise.  Statistically invisible for
  shifts within the noise scale; ΠBin rejects it deterministically.

Each function returns an :class:`AttackOutcome` so tests and the CLI can
assert/print the contrast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.prio import CorruptPrioServer, PrioSystem
from repro.baselines.trusted_curator import MaliciousCurator, NonVerifiableCurator
from repro.core.client import Client, NonBinaryClient, encode_choice
from repro.core.messages import ClientStatus, ProverStatus
from repro.core.params import setup
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.prover import InputDroppingProver, OutputTamperingProver, Prover
from repro.utils.rng import RNG, SeededRNG, default_rng

__all__ = [
    "AttackOutcome",
    "exclusion_attack_on_prio",
    "exclusion_attack_on_pibin",
    "collusion_attack_on_prio",
    "collusion_attack_on_pibin",
    "noise_biasing_on_curator",
    "noise_biasing_on_pibin",
]

_TEST_GROUP = "p128-sim"


@dataclass(frozen=True)
class AttackOutcome:
    """What happened when the attack ran."""

    system: str
    attack: str
    succeeded: bool  # did the adversary achieve its goal?
    detected: bool  # did any honest party (or the public) notice?
    culprit: str | None  # who the audit names, if anyone
    details: str


# ---------------------------------------------------------------------------
# Figure 1(a): exclusion of an honest client.
# ---------------------------------------------------------------------------


def exclusion_attack_on_prio(
    n_clients: int = 20, victim: str = "client-0", rng: RNG | None = None
) -> AttackOutcome:
    """Corrupted PRIO server fails the victim's sketch; nobody can tell."""
    rng = rng or SeededRNG("fig1a-prio")
    q = 2**127 - 1  # any large modulus works for the baseline
    dimension = 2
    system = PrioSystem(dimension, q, epsilon=1.0, delta=2**-10, rng=rng)
    corrupt = CorruptPrioServer(
        "server-1",
        1,
        system.sketch,
        system.nb,
        rng=rng,
        drop_clients=frozenset({victim}),
    )
    system.servers = (system.servers[0], corrupt)
    submissions = [
        system.submit(f"client-{i}", encode_choice(i % dimension, dimension), rng)
        for i in range(n_clients)
    ]
    result = system.run(submissions)
    succeeded = victim not in result.accepted_clients
    return AttackOutcome(
        system="prio",
        attack="fig1a-exclusion",
        succeeded=succeeded,
        detected=False,  # the sketch verdict looks like an ordinary client failure
        culprit=None,
        details=(
            f"victim excluded={succeeded}; accepted {len(result.accepted_clients)}"
            f"/{n_clients} clients; the public sees only 'sketch failed'"
        ),
    )


def exclusion_attack_on_pibin(
    n_clients: int = 12, victim: str = "client-0", rng: RNG | None = None
) -> AttackOutcome:
    """The same goal inside ΠBin: the dropping prover fails Line 13."""
    rng = rng or SeededRNG("fig1a-pibin")
    params = setup(1.0, 2**-10, num_provers=2, group=_TEST_GROUP, nb_override=32)
    provers = [
        Prover("prover-0", params, rng.fork("p0")),
        InputDroppingProver("prover-1", params, rng.fork("p1"), victim=victim),
    ]
    protocol = VerifiableBinomialProtocol(params, provers=provers, rng=rng)
    clients = [
        Client(f"client-{i}", [i % 2], rng.fork(f"c{i}")) for i in range(n_clients)
    ]
    result = protocol.run(clients)
    audit = result.release.audit
    detected = audit.provers.get("prover-1") is ProverStatus.FAILED_FINAL_CHECK
    victim_included = audit.clients.get(victim) is ClientStatus.VALID
    return AttackOutcome(
        system="pibin",
        attack="fig1a-exclusion",
        succeeded=result.release.accepted and not victim_included,
        detected=detected,
        culprit="prover-1" if detected else None,
        details=(
            f"release accepted={result.release.accepted}; victim still publicly "
            f"valid={victim_included}; audit={audit.provers}"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 1(b): collusion admits an illegal input.
# ---------------------------------------------------------------------------


def collusion_attack_on_prio(
    n_clients: int = 20, rng: RNG | None = None
) -> AttackOutcome:
    """Dishonest client (3 votes in one bin) + corrupted server: accepted."""
    rng = rng or SeededRNG("fig1b-prio")
    q = 2**127 - 1
    dimension = 2
    system = PrioSystem(dimension, q, epsilon=1.0, delta=2**-10, rng=rng)
    cheater_id = "client-evil"
    illegal_vector = [3, 0]  # three votes for bin 0
    packages = system.sketch.client_prepare(illegal_vector, rng)
    # The dishonest client leaks its server-0 package to corrupted server 1.
    corrupt = CorruptPrioServer(
        "server-1",
        1,
        system.sketch,
        system.nb,
        rng=rng,
        collude_with={cheater_id: (packages[0], 0)},
    )
    system.servers = (system.servers[0], corrupt)
    submissions = [
        system.submit(f"client-{i}", encode_choice(i % dimension, dimension), rng)
        for i in range(n_clients)
    ]
    from repro.baselines.prio import PrioClientSubmission

    submissions.append(PrioClientSubmission(cheater_id, packages))
    result = system.run(submissions)
    succeeded = cheater_id in result.accepted_clients
    return AttackOutcome(
        system="prio",
        attack="fig1b-collusion",
        succeeded=succeeded,
        detected=False,
        culprit=None,
        details=(
            f"illegal 3-vote input accepted={succeeded}; bin-0 estimate inflated by 3; "
            "honest server's view is consistent with an honest run"
        ),
    )


def collusion_attack_on_pibin(
    n_clients: int = 12, rng: RNG | None = None
) -> AttackOutcome:
    """ΠBin: the illegal input cannot carry a valid Σ-OR proof — rejected."""
    rng = rng or SeededRNG("fig1b-pibin")
    params = setup(1.0, 2**-10, num_provers=2, group=_TEST_GROUP, nb_override=32)
    protocol = VerifiableBinomialProtocol(params, rng=rng)
    clients: list[Client] = [
        Client(f"client-{i}", [i % 2], rng.fork(f"c{i}")) for i in range(n_clients)
    ]
    cheater = NonBinaryClient("client-evil", [3], rng.fork("evil"))
    clients.append(cheater)
    result = protocol.run(clients)
    audit = result.release.audit
    status = audit.clients.get("client-evil")
    rejected = status is ClientStatus.INVALID_PROOF
    return AttackOutcome(
        system="pibin",
        attack="fig1b-collusion",
        succeeded=not rejected,
        detected=rejected,
        culprit="client-evil" if rejected else None,
        details=f"cheating client status={status}; release accepted={result.release.accepted}",
    )


# ---------------------------------------------------------------------------
# Noise biasing: the paper's motivating attack.
# ---------------------------------------------------------------------------


def noise_biasing_on_curator(
    n_clients: int = 1000,
    bias: float = 15.0,
    epsilon: float = 1.0,
    delta: float = 2**-10,
    rng: RNG | None = None,
) -> AttackOutcome:
    """A malicious curator shifts the count by ``bias`` "noise".

    Reports the z-score of the released value under the *honest* noise
    distribution: for bias around one noise standard deviation the release
    is statistically unremarkable — the perfect alibi.
    """
    rng = default_rng(rng or SeededRNG("noise-bias"))
    dataset = [1 if i % 3 == 0 else 0 for i in range(n_clients)]
    curator = MaliciousCurator(
        NonVerifiableCurator.binomial(epsilon, delta).mechanism, bias=bias
    )
    release = curator.release_count(dataset, rng)
    true_count = sum(dataset)
    nb = curator.mechanism.nb  # type: ignore[attr-defined]
    noise_std = math.sqrt(nb) / 2.0
    z_score = (release.value - true_count) / noise_std
    return AttackOutcome(
        system="curator",
        attack="noise-biasing",
        succeeded=True,
        detected=abs(z_score) > 4.0,  # only a wildly implausible shift stands out
        culprit=None,
        details=(
            f"released {release.value:.1f} vs true {true_count}; bias {bias}; "
            f"z-score under honest noise = {z_score:+.2f} (|z|<4 ⇒ plausible noise)"
        ),
    )


def noise_biasing_on_pibin(
    n_clients: int = 40, bias: int = 15, rng: RNG | None = None
) -> AttackOutcome:
    """The same shift inside ΠBin is caught deterministically (Line 13)."""
    rng = rng or SeededRNG("noise-bias-pibin")
    params = setup(1.0, 2**-10, num_provers=1, group=_TEST_GROUP, nb_override=32)
    cheater = OutputTamperingProver("prover-0", params, rng.fork("p0"), bias=bias)
    protocol = VerifiableBinomialProtocol(params, provers=[cheater], rng=rng)
    clients = [
        Client(f"client-{i}", [1 if i % 3 == 0 else 0], rng.fork(f"client-{i}"))
        for i in range(n_clients)
    ]
    result = protocol.run(clients)
    audit = result.release.audit
    detected = audit.provers.get("prover-0") is ProverStatus.FAILED_FINAL_CHECK
    return AttackOutcome(
        system="pibin",
        attack="noise-biasing",
        succeeded=result.release.accepted,
        detected=detected,
        culprit="prover-0" if detected else None,
        details=f"release accepted={result.release.accepted}; audit={audit.provers}",
    )
