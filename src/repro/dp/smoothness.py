"""(ε, δ, k)-smoothness of noise distributions (Definition 13, Appendix B).

A distribution D over Z is (ε, δ, k)-smooth if for every shift |k'| <= k,

    Pr_{Y~D}[  Pr[Y' = Y] / Pr[Y' = Y + k']  >=  e^{|k'|ε}  ]  <=  δ.

Lemma B.1 turns smoothness into DP: adding smooth noise to a k-incremental
query of L1-sensitivity Δ is (εΔ, δΔ)-DP.  Lemma B.2 shows
Binomial(n, p <= 1/2) is smooth.  This module computes the *exact*
smoothness failure mass for the Binomial by direct enumeration of the PMF,
so tests can check Lemma 2.1's constants end-to-end (and show the paper's
bound is conservative).
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = ["binomial_log_pmf", "smoothness_delta", "is_smooth"]


def binomial_log_pmf(n: int, y: int) -> float:
    """log Pr[Binomial(n, 1/2) = y] computed stably via lgamma."""
    if not 0 <= y <= n:
        return float("-inf")
    return (
        math.lgamma(n + 1)
        - math.lgamma(y + 1)
        - math.lgamma(n - y + 1)
        - n * math.log(2.0)
    )


def smoothness_delta(n: int, epsilon: float, k: int = 1) -> float:
    """Exact δ for which Binomial(n, 1/2) is (ε, δ, k)-smooth.

    δ = max over |k'| <= k of Pr_Y[ log PMF(Y) - log PMF(Y+k') >= |k'|·ε ].
    Enumerates the full PMF (O(n·k) time), fine for nb up to ~10^6.
    """
    if n < 1:
        raise ParameterError("n must be positive")
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    if k < 1:
        raise ParameterError("k must be at least 1")

    log_pmf = [binomial_log_pmf(n, y) for y in range(n + 1)]
    worst = 0.0
    for shift in range(-k, k + 1):
        if shift == 0:
            continue
        threshold = abs(shift) * epsilon
        mass = 0.0
        for y in range(n + 1):
            target = y + shift
            if 0 <= target <= n:
                ratio = log_pmf[y] - log_pmf[target]
            else:
                ratio = float("inf")  # denominator zero: ratio unbounded
            if ratio >= threshold:
                mass += math.exp(log_pmf[y])
        worst = max(worst, mass)
    return worst


def is_smooth(n: int, epsilon: float, delta: float, k: int = 1) -> bool:
    """True iff Binomial(n, 1/2) is (ε, δ, k)-smooth (exact check)."""
    return smoothness_delta(n, epsilon, k) <= delta
