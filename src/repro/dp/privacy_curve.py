"""Exact privacy curves for the Binomial mechanism.

Lemma 2.1 gives a *sufficient* (ε, δ) via smoothness + Chernoff bounds.
This module computes the mechanism's exact privacy loss directly: the
hockey-stick divergence between the output distributions on neighbouring
datasets,

    δ(ε) = max over direction of  Σ_z max(0, P(z) - e^ε · Q(z))

where P = Binomial(nb, 1/2) and Q is its ±1 shift (counting query has
sensitivity 1, so neighbours differ by one in the released support).
This is the tightest possible (ε, δ) statement for the mechanism, used to

* verify Lemma 2.1 end-to-end (the lemma's (ε, δ) always dominates the
  exact curve — it is sound), and
* quantify its conservatism (the exact ε for a given nb is ~5-10× smaller
  than the lemma's, i.e. the protocol delivers much more privacy than
  advertised — or equivalently could use ~25-100× fewer coins, a
  practically relevant observation for Table 1's cost).
"""

from __future__ import annotations

import math

from repro.dp.smoothness import binomial_log_pmf
from repro.errors import ParameterError

__all__ = ["hockey_stick_delta", "exact_epsilon", "privacy_profile"]


def hockey_stick_delta(nb: int, epsilon: float, *, shift: int = 1) -> float:
    """Exact δ such that the Binomial mechanism is (ε, δ)-DP for the
    counting query with the given neighbour ``shift``.

    Maximizes over both shift directions (the distribution is symmetric,
    so they coincide, but we compute both for self-checking).
    """
    if nb < 1:
        raise ParameterError("nb must be positive")
    if epsilon < 0:
        raise ParameterError("epsilon must be non-negative")
    if shift < 1:
        raise ParameterError("shift must be at least 1")

    log_pmf = [binomial_log_pmf(nb, z) for z in range(nb + 1)]

    def one_direction(direction: int) -> float:
        total = 0.0
        for z in range(nb + 1):
            p = math.exp(log_pmf[z])
            neighbour = z - direction * shift
            q = math.exp(log_pmf[neighbour]) if 0 <= neighbour <= nb else 0.0
            mass = p - math.exp(epsilon) * q
            if mass > 0:
                total += mass
        return total

    return max(one_direction(+1), one_direction(-1))


def exact_epsilon(nb: int, delta: float, *, shift: int = 1, tolerance: float = 1e-6) -> float:
    """Smallest ε with hockey-stick δ(ε) <= delta (binary search).

    The curve δ(ε) is non-increasing and continuous in ε, so bisection on
    [0, hi] converges; hi starts at the worst-case log-likelihood ratio.
    """
    if not 0 < delta < 1:
        raise ParameterError("delta must be in (0, 1)")
    lo, hi = 0.0, 1.0
    while hockey_stick_delta(nb, hi, shift=shift) > delta:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - degenerate parameters
            raise ParameterError("no finite epsilon achieves this delta")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if hockey_stick_delta(nb, mid, shift=shift) <= delta:
            hi = mid
        else:
            lo = mid
    return hi


def privacy_profile(nb: int, epsilons: list[float]) -> list[tuple[float, float]]:
    """The (ε, δ(ε)) curve at the requested ε values."""
    return [(eps, hockey_stick_delta(nb, eps)) for eps in epsilons]
