"""The (analytic-constant) Gaussian mechanism.

Adds N(0, σ²) noise with σ = sensitivity·sqrt(2·ln(1.25/δ))/ε — the
classical calibration giving (ε, δ)-DP for ε <= 1.  Another central-model
baseline for the error experiments; like Laplace, no verifiable variant is
known (Concluding Remarks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dp.mechanism import Mechanism, MechanismOutput
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["GaussianMechanism", "sample_gaussian"]

_UNIFORM_BITS = 53


def sample_gaussian(sigma: float, rng: RNG | None = None) -> float:
    """N(0, sigma^2) via Box–Muller on RNG-provided uniforms."""
    if sigma <= 0:
        raise ParameterError("sigma must be positive")
    rng = default_rng(rng)
    while True:
        u1 = rng.randbits(_UNIFORM_BITS) / float(1 << _UNIFORM_BITS)
        if u1 > 0.0:
            break
    u2 = rng.randbits(_UNIFORM_BITS) / float(1 << _UNIFORM_BITS)
    return sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


@dataclass
class GaussianMechanism(Mechanism):
    """(ε, δ)-DP mechanism adding calibrated Gaussian noise."""

    epsilon: float
    delta: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.epsilon <= 1:
            raise ParameterError("classical Gaussian calibration needs 0 < ε <= 1")
        if not 0 < self.delta < 1:
            raise ParameterError("delta must be in (0, 1)")

    @property
    def sigma(self) -> float:
        return self.sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.epsilon

    def release(self, true_value: float, rng: RNG | None = None) -> MechanismOutput:
        noise = sample_gaussian(self.sigma, rng)
        return MechanismOutput(true_value + noise, noise)

    def expected_error(self) -> float:
        """E|N(0, σ²)| = σ·sqrt(2/π)."""
        return self.sigma * math.sqrt(2.0 / math.pi)
