"""Privacy accounting across multiple releases.

The MPC instantiation of ΠBin adds K independent copies of Binomial noise
(one per prover — necessary because up to K-1 provers may collude and
contribute no noise, Section 4 / Ben-Or et al.), and histogram queries
release M coordinates.  The accountant tracks cumulative (ε, δ) under
basic and advanced composition so examples and tests can state end-to-end
guarantees honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["basic_composition", "advanced_composition", "PrivacyAccountant"]


def basic_composition(budgets: list[tuple[float, float]]) -> tuple[float, float]:
    """(Σε_i, Σδ_i): sequential composition, always valid."""
    if not budgets:
        return 0.0, 0.0
    return sum(e for e, _ in budgets), sum(d for _, d in budgets)


def advanced_composition(
    epsilon: float, delta: float, k: int, delta_prime: float
) -> tuple[float, float]:
    """Advanced composition for k releases of one (ε, δ)-DP mechanism.

    ε' = ε·sqrt(2k·ln(1/δ')) + k·ε·(e^ε - 1),   δ' += k·δ.
    """
    if k < 1:
        raise ParameterError("k must be at least 1")
    if not 0 < delta_prime < 1:
        raise ParameterError("delta_prime must be in (0, 1)")
    eps_total = epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) + k * epsilon * (
        math.exp(epsilon) - 1.0
    )
    return eps_total, k * delta + delta_prime


@dataclass
class PrivacyAccountant:
    """Running ledger of (ε, δ) expenditures."""

    spent: list[tuple[float, float]] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    def charge(self, epsilon: float, delta: float, *, label: str = "") -> None:
        if epsilon < 0 or delta < 0:
            raise ParameterError("budgets must be non-negative")
        self.spent.append((epsilon, delta))
        self.labels.append(label)

    def ledger(self) -> list[tuple[str, float, float]]:
        """Per-release charges as (label, ε, δ) rows — what a Session's
        queries actually drew from the budget."""
        return [
            (label, eps, delta)
            for label, (eps, delta) in zip(self.labels, self.spent)
        ]

    def total_basic(self) -> tuple[float, float]:
        return basic_composition(self.spent)

    def total_advanced(self, delta_prime: float) -> tuple[float, float]:
        """Advanced composition when all charges are identical, else basic."""
        if not self.spent:
            return 0.0, 0.0
        first = self.spent[0]
        if all(entry == first for entry in self.spent):
            return advanced_composition(first[0], first[1], len(self.spent), delta_prime)
        eps, delta = basic_composition(self.spent)
        return eps, delta + delta_prime
