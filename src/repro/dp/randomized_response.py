"""Randomized response (Warner 1965) — the local-DP baseline.

Each client flips their true bit with probability p = 1/(1 + e^ε); the
aggregator debiases the sum.  Section 7 recounts its two structural
weaknesses, both reproduced by our experiments:

* **Accuracy**: Err = O(√n / ε) for a binary count, versus O(1/ε) in the
  central model (``benchmarks/bench_error_vs_epsilon.py``) — the CSU21
  generalization says all LDP protocols pay this.
* **Manipulation**: a small fraction of deviating clients shifts the
  debiased estimate arbitrarily (no input validation is possible on
  plaintext-randomized reports); exercised in ``repro.attacks``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.dp.mechanism import Mechanism, MechanismOutput
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["RandomizedResponse"]


@dataclass
class RandomizedResponse(Mechanism):
    """ε-LDP randomized response for bit-valued client inputs."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ParameterError("epsilon must be positive")

    @property
    def flip_probability(self) -> float:
        """p = 1/(1 + e^ε): probability each client reports the wrong bit."""
        return 1.0 / (1.0 + math.exp(self.epsilon))

    def randomize_bit(self, bit: int, rng: RNG | None = None) -> int:
        """A single client's local randomizer."""
        if bit not in (0, 1):
            raise ParameterError("inputs must be bits")
        rng = default_rng(rng)
        u = rng.randbits(53) / float(1 << 53)
        return bit ^ (1 if u < self.flip_probability else 0)

    def aggregate(self, reports: Sequence[int]) -> float:
        """Debiased estimate of the true count from noisy reports.

        E[report_sum] = count·(1-p) + (n-count)·p, inverted for count.
        """
        n = len(reports)
        if n == 0:
            raise ParameterError("no reports")
        p = self.flip_probability
        return (sum(reports) - n * p) / (1.0 - 2.0 * p)

    def release(self, true_value: float, rng: RNG | None = None) -> MechanismOutput:
        """Scalar interface: treats ``true_value`` as a count of n=value ones.

        Provided for interface parity in error sweeps; prefer
        :meth:`run_protocol` for the full client-level simulation.
        """
        raise NotImplementedError(
            "randomized response is client-local; use run_protocol(dataset)"
        )

    def run_protocol(
        self, dataset: Sequence[int], rng: RNG | None = None
    ) -> MechanismOutput:
        """Simulate every client's local flip and debias the aggregate."""
        rng = default_rng(rng)
        reports = [self.randomize_bit(x, rng) for x in dataset]
        estimate = self.aggregate(reports)
        true = float(sum(dataset))
        return MechanismOutput(estimate, estimate - true)

    def expected_error(self) -> float:
        raise NotImplementedError("error depends on n; measure via run_protocol")

    def expected_error_for_n(self, n: int) -> float:
        """Std-dev of the debiased estimate: sqrt(n·p·(1-p))/(1-2p) = O(√n/ε)."""
        p = self.flip_probability
        return math.sqrt(n * p * (1.0 - p)) / (1.0 - 2.0 * p)
