"""Mechanism interface and DP-Error (Definition 6).

A mechanism maps a dataset and query to a randomized output; its expected
L1 error relative to the true query answer is

    Err_{M,Q} = E[ ||Q(X) - M(X, Q)|| ]                    (Definition 6)

For counting queries, central-model mechanisms (Binomial, Laplace) achieve
Err = O(1/ε) independent of n, while local randomized response pays
Err = O(√n) — the separation quoted in Sections 2.2 and 7 and reproduced
by ``benchmarks/bench_error_vs_epsilon.py``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["Mechanism", "MechanismOutput", "counting_query", "dp_error"]


def counting_query(dataset: Sequence[int]) -> int:
    """Q(X) = Σ x_i — the paper's core query (1-incremental, sensitivity 1)."""
    return sum(dataset)


@dataclass(frozen=True)
class MechanismOutput:
    """A released value together with the noise that produced it.

    ``noise`` is retained for analysis/testing only; a real deployment
    never reveals it (revealing DP noise obviates it — the whole point of
    the paper is verifying noise *without* revealing it).
    """

    value: float
    noise: float


class Mechanism(abc.ABC):
    """An (ε, δ)-DP mechanism for real-valued queries."""

    epsilon: float
    delta: float

    @abc.abstractmethod
    def release(self, true_value: float, rng: RNG | None = None) -> MechanismOutput:
        """Release a noisy version of ``true_value``."""

    def release_vector(
        self, true_values: Sequence[float], rng: RNG | None = None
    ) -> list[MechanismOutput]:
        """Independent coordinate-wise release (M-bin histograms)."""
        rng = default_rng(rng)
        return [self.release(v, rng) for v in true_values]

    def expected_error(self) -> float:
        """Analytic E|noise| when known; subclasses override."""
        raise NotImplementedError


def dp_error(
    mechanism: Mechanism,
    true_value: float,
    trials: int,
    rng: RNG | None = None,
    norm: Callable[[float], float] = abs,
) -> float:
    """Monte-Carlo estimate of Err (Definition 6) for a scalar query."""
    if trials < 1:
        raise ParameterError("need at least one trial")
    rng = default_rng(rng)
    total = 0.0
    for _ in range(trials):
        out = mechanism.release(true_value, rng)
        total += norm(out.value - true_value)
    return total / trials
