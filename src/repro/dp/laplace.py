"""The Laplace mechanism (Dwork et al., discussed in Section 7).

Adds Laplace(Δ/ε) noise for pure ε-DP; the canonical trusted-curator
baseline with Err = Δ/ε = O(1/ε).  Included as the *non-verifiable*
comparison point: the Concluding Remarks note that "making verifiable
Laplace or Gaussian noise is far from clear", which is why ΠBin uses
Binomial noise built from Bernoulli coins.

Sampling uses inverse-CDF on a uniform from the injected RNG so tests are
deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dp.mechanism import Mechanism, MechanismOutput
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["LaplaceMechanism", "sample_laplace"]

_UNIFORM_BITS = 53


def _uniform_open(rng: RNG) -> float:
    """Uniform in (0, 1), never exactly 0 or 1."""
    while True:
        u = rng.randbits(_UNIFORM_BITS) / float(1 << _UNIFORM_BITS)
        if 0.0 < u < 1.0:
            return u


def sample_laplace(scale: float, rng: RNG | None = None) -> float:
    """Laplace(0, scale) via inverse CDF."""
    if scale <= 0:
        raise ParameterError("scale must be positive")
    rng = default_rng(rng)
    u = _uniform_open(rng) - 0.5
    return -scale * math.copysign(math.log(1.0 - 2.0 * abs(u)), u)


@dataclass
class LaplaceMechanism(Mechanism):
    """ε-DP mechanism adding Laplace(sensitivity/ε) noise."""

    epsilon: float
    sensitivity: float = 1.0
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ParameterError("epsilon must be positive")
        if self.sensitivity <= 0:
            raise ParameterError("sensitivity must be positive")

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def release(self, true_value: float, rng: RNG | None = None) -> MechanismOutput:
        noise = sample_laplace(self.scale, rng)
        return MechanismOutput(true_value + noise, noise)

    def expected_error(self) -> float:
        """E|Laplace(b)| = b."""
        return self.scale
