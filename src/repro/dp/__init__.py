"""Differential-privacy mechanisms and accounting.

The paper's protocol uses the **Binomial mechanism** (Lemma 2.1 /
Appendix B): add Z ~ Binomial(nb, 1/2) to a counting query, with

    ε = 10·sqrt((1/nb)·ln(2/δ))   for nb > 30, i.e.  nb = ⌈100·ln(2/δ)/ε²⌉.

Binomial noise is the only "simple randomness" for which verifiability is
known (Concluding Remarks); Laplace/Gaussian/randomized-response are
provided as non-verifiable baselines for the error experiments.
"""

from repro.dp.mechanism import Mechanism, MechanismOutput, counting_query, dp_error
from repro.dp.binomial import (
    BinomialMechanism,
    coins_for_privacy,
    epsilon_for_coins,
    sample_binomial,
)
from repro.dp.smoothness import smoothness_delta, is_smooth
from repro.dp.laplace import LaplaceMechanism
from repro.dp.gaussian import GaussianMechanism
from repro.dp.randomized_response import RandomizedResponse
from repro.dp.exponential import ExponentialMechanism, report_noisy_max
from repro.dp.privacy_curve import hockey_stick_delta, exact_epsilon, privacy_profile
from repro.dp.accountant import PrivacyAccountant, basic_composition, advanced_composition

__all__ = [
    "Mechanism",
    "MechanismOutput",
    "counting_query",
    "dp_error",
    "BinomialMechanism",
    "coins_for_privacy",
    "epsilon_for_coins",
    "sample_binomial",
    "smoothness_delta",
    "is_smooth",
    "LaplaceMechanism",
    "GaussianMechanism",
    "RandomizedResponse",
    "ExponentialMechanism",
    "report_noisy_max",
    "hockey_stick_delta",
    "exact_epsilon",
    "privacy_profile",
    "PrivacyAccountant",
    "basic_composition",
    "advanced_composition",
]
