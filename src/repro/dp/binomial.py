"""The Binomial mechanism (Lemma 2.1, Appendix B).

Adding Z ~ Binomial(nb, 1/2) to a counting query is (ε, δ)-DP with

    ε = 10·sqrt((1/nb)·ln(2/δ))        for nb > 30, δ ∈ (0, o(1/nb)).

Inverting for the number of coins:

    nb = ⌈100·ln(2/δ) / ε²⌉            (:func:`coins_for_privacy`)

ΠBin constructs this noise one Bernoulli(1/2) coin at a time — each coin is
a prover's private bit XORed with a public Morra bit — which is exactly why
the protocol's cost is linear in nb and hence proportional to 1/ε²
(Figure 3).

Paper-consistency note: Table 1's caption pairs ε = 0.88, δ = 2⁻¹⁰ with
nb = 262144 = 2¹⁸; Lemma 2.1 actually gives nb = 985 for those values (and
ε ≈ 0.054 for nb = 2¹⁸).  We implement the lemma faithfully and provide
``round_to_power_of_two`` for benchmark parity with the paper's workload
sizes.  See DESIGN.md and `python -m repro table1`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dp.mechanism import Mechanism, MechanismOutput
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = [
    "coins_for_privacy",
    "epsilon_for_coins",
    "sample_binomial",
    "BinomialMechanism",
    "MIN_COINS",
]

# Lemma 2.1 requires nb > 30 for the smoothness bound to kick in.
MIN_COINS = 31


def coins_for_privacy(
    epsilon: float, delta: float, *, round_to_power_of_two: bool = False
) -> int:
    """Number of Bernoulli(1/2) coins for (ε, δ)-DP, per Lemma 2.1.

    nb = ⌈100·ln(2/δ)/ε²⌉, floored at :data:`MIN_COINS`.
    """
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ParameterError("delta must be in (0, 1)")
    nb = math.ceil(100.0 * math.log(2.0 / delta) / (epsilon * epsilon))
    nb = max(nb, MIN_COINS)
    if round_to_power_of_two:
        nb = 1 << (nb - 1).bit_length()
    return nb


def epsilon_for_coins(nb: int, delta: float) -> float:
    """ε = 10·sqrt((1/nb)·ln(2/δ)) — the forward direction of Lemma 2.1."""
    if nb < MIN_COINS:
        raise ParameterError(f"Lemma 2.1 requires nb > 30, got {nb}")
    if not 0 < delta < 1:
        raise ParameterError("delta must be in (0, 1)")
    return 10.0 * math.sqrt(math.log(2.0 / delta) / nb)


def sample_binomial(nb: int, rng: RNG | None = None) -> int:
    """Z ~ Binomial(nb, 1/2) by explicit coin flips.

    Intentionally flip-by-flip (not an inverse-CDF shortcut): this is the
    distribution the protocol realizes coin-by-coin, and tests compare the
    protocol's noise against this reference sampler.
    """
    if nb < 0:
        raise ParameterError("nb must be non-negative")
    rng = default_rng(rng)
    total = 0
    remaining = nb
    # Consume 64 coins per draw from the RNG for speed; same distribution.
    while remaining >= 64:
        total += int.bit_count(rng.randbits(64))
        remaining -= 64
    if remaining:
        total += int.bit_count(rng.randbits(remaining))
    return total


@dataclass
class BinomialMechanism(Mechanism):
    """(ε, δ)-DP counting-query mechanism adding Binomial(nb, 1/2) noise.

    The mechanism is *centred* optionally: the paper's protocol releases
    Q(X) + Z with Z ~ Binomial(nb, 1/2) (so outputs are biased by +nb/2,
    which the analyst subtracts publicly — nb is a public parameter).
    ``centred=True`` performs that subtraction at release time.
    """

    epsilon: float
    delta: float
    centred: bool = True
    round_to_power_of_two: bool = False
    nb: int = field(init=False)

    def __post_init__(self) -> None:
        self.nb = coins_for_privacy(
            self.epsilon, self.delta, round_to_power_of_two=self.round_to_power_of_two
        )

    def release(self, true_value: float, rng: RNG | None = None) -> MechanismOutput:
        z = sample_binomial(self.nb, rng)
        noise = z - (self.nb / 2.0 if self.centred else 0.0)
        return MechanismOutput(true_value + noise, noise)

    def expected_error(self) -> float:
        """E|Z - nb/2| = sqrt(nb/(2π)) asymptotically (half-normal mean)."""
        return math.sqrt(self.nb / (2.0 * math.pi))
