"""The exponential mechanism and report-noisy-max (Section 7 context).

McSherry–Talwar's exponential mechanism selects the (approximately) most
frequent histogram bucket under pure ε-DP; Ding et al. showed
permute-and-flip ≡ report-noisy-max with exponential noise.  The paper
cites these as the classical central-model selection mechanisms — and its
concluding remarks explain why *verifiable* variants are open: "the
distribution itself leaks information about the private data".

Included as baselines for the election/argmax workloads: the examples
compare ΠBin's noisy-argmax (add verifiable Binomial noise per bin, take
the max) with these unverifiable-but-optimal selectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.dp.laplace import sample_laplace
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["ExponentialMechanism", "report_noisy_max"]


@dataclass
class ExponentialMechanism:
    """ε-DP selection: Pr[output r] ∝ exp(ε·u(r) / (2·Δu)).

    For histogram argmax the utility of bucket r is its count and
    Δu = 1 (one client moves one bucket's count by one).
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ParameterError("epsilon must be positive")
        if self.sensitivity <= 0:
            raise ParameterError("sensitivity must be positive")

    def select(self, utilities: Sequence[float], rng: RNG | None = None) -> int:
        """Sample an index with probability ∝ exp(ε·u/(2Δ))."""
        if not utilities:
            raise ParameterError("no candidates")
        rng = default_rng(rng)
        scale = self.epsilon / (2.0 * self.sensitivity)
        # Stabilize: subtract the max before exponentiating.
        top = max(utilities)
        weights = [math.exp(scale * (u - top)) for u in utilities]
        total = sum(weights)
        threshold = (rng.randbits(53) / float(1 << 53)) * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if threshold < acc:
                return index
        return len(utilities) - 1  # pragma: no cover - float edge

    def selection_probabilities(self, utilities: Sequence[float]) -> list[float]:
        """Exact output distribution (for tests and analysis)."""
        if not utilities:
            raise ParameterError("no candidates")
        scale = self.epsilon / (2.0 * self.sensitivity)
        top = max(utilities)
        weights = [math.exp(scale * (u - top)) for u in utilities]
        total = sum(weights)
        return [w / total for w in weights]


def report_noisy_max(
    counts: Sequence[float],
    epsilon: float,
    rng: RNG | None = None,
    *,
    sensitivity: float = 1.0,
) -> int:
    """ε-DP argmax: add Laplace(2Δ/ε) to every count, return the argmax.

    Classical guarantee via the one-sided analysis; equivalent in utility
    class to the exponential mechanism for selection tasks.
    """
    if not counts:
        raise ParameterError("no candidates")
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    rng = default_rng(rng)
    scale = 2.0 * sensitivity / epsilon
    noisy = [c + sample_laplace(scale, rng) for c in counts]
    return max(range(len(noisy)), key=noisy.__getitem__)
