"""Command-line entry point: ``python -m repro <experiment>``.

``python -m repro list`` shows the experiment index; ``all`` runs every
experiment in sequence.  Workload sizes default to scaled-down values —
set ``REPRO_PAPER_SCALE=1`` for paper-scale runs (slow in pure Python).

``python -m repro serve`` runs a session as separate OS processes — an
analyst front-end, K prover servers and a client population — over the
``multiprocessing``-pipe or TCP transport (see :mod:`repro.net`), and
checks the release is byte-identical to the in-process path when seeded.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import EXPERIMENTS, print_table

_DESCRIPTIONS = {
    "table1": "Table 1 — per-stage latency of PiBin (sigma/morra/aggregate/check)",
    "fig3": "Figure 3 — sigma proof create/verify latency vs epsilon, both backends",
    "fig4": "Figure 4 — client one-hot validation: sigma-OR vs PRIO/Poplar sketch",
    "table2": "Table 2 — qualitative properties of MPC-DP systems (validated live)",
    "micro": "Section 6 — single exponentiation latency, modp vs ristretto",
    "multiexp": "Multiexp tiers — naive/Straus/Pippenger crossover (emits BENCH_multiexp.json)",
    "streaming": "Streamed vs buffered session verification (emits BENCH_streaming.json)",
    "err": "DP-Error — central O(1/eps) vs local O(sqrt(n)/eps)",
    "comm": "Communication — serialized proof sizes: sigma-OR vs sketch",
    "attacks": "Figure 1 — exclusion/collusion/noise-biasing, baseline vs PiBin",
    "separation": "Theorem 5.2 — impossibility of information-theoretic verifiable DP",
}


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run one verifiable-DP session as separate OS processes",
    )
    parser.add_argument(
        "--transport",
        choices=("memory", "multiprocess", "socket"),
        default="multiprocess",
        help="node substrate: threads over the in-memory bus, pipes, or TCP",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve over asyncio sockets: one SessionMux front-end process "
        "multiplexes --sessions concurrent sessions (implies --transport "
        "socket; each session is byte-identical to its solo seeded run)",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="serve through a dispatcher-orchestrated fleet: --frontends "
        "SessionMux worker processes (capacity --capacity sessions each, "
        "optionally --shards workers per session) behind one admission "
        "point with health checks, work-stealing, drain and crash restart",
    )
    parser.add_argument(
        "--frontends",
        type=int,
        default=2,
        help="fleet front-end process count F (with --fleet)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=2,
        help="concurrent sessions per fleet front-end (with --fleet)",
    )
    parser.add_argument(
        "--fleet-config",
        default=None,
        help="JSON fleet config file; overrides the individual fleet flags",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=2,
        help="total session count N for --async / --fleet serving",
    )
    parser.add_argument("--servers", type=int, default=2, help="prover count K")
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="verification shard workers S (0 = single front-end); the "
        "client stream and coin chunks are partitioned across S workers "
        "and the merged release stays byte-identical to unsharded",
    )
    parser.add_argument("--clients", type=int, default=8, help="client count n")
    parser.add_argument("--nb", type=int, default=64, help="noise coins per prover")
    parser.add_argument("--bins", type=int, default=1, help=">1 runs a histogram query")
    parser.add_argument("--group", default="p64-sim", help="group backend name")
    parser.add_argument(
        "--chunk", type=int, default=None, help="streaming chunk size (default: buffered)"
    )
    parser.add_argument(
        "--seed",
        default="serve",
        help="RNG seed; enables the byte-identical check ('none' disables)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="socket transport host")
    parser.add_argument("--port", type=int, default=0, help="socket port (0 = ephemeral)")
    parser.add_argument("--timeout", type=float, default=120.0, help="per-recv timeout")
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus-text /metrics on this port (0 = ephemeral; "
        "with --async or --fleet: session counters, queue gauges, "
        "per-phase engine histograms)",
    )
    parser.add_argument(
        "--listen",
        type=int,
        default=None,
        help="with --fleet: instead of a fixed --sessions batch, accept a "
        "session stream on this TCP port (JSON lines; the repro loadgen "
        "target; 0 = ephemeral)",
    )
    parser.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="with --listen: serve for this long, then drain and exit "
        "(default: forever, Ctrl-C to stop)",
    )
    return parser


def _bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Declarative experiment harness: run tables, summaries, "
        "regression gates (see DESIGN.md 'Measurement & observability')",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser(
        "run", help="run every cell of a run-table JSON and write BENCH artifacts"
    )
    run.add_argument("table", help="run-table JSON file (factors x levels x reps)")
    run.add_argument(
        "--out",
        default=None,
        help="directory for BENCH artifacts (default: $REPRO_BENCH_DIR or .)",
    )
    run.add_argument(
        "--no-raw",
        action="store_true",
        help="skip the one-JSON-per-run raw artifacts (combined file only)",
    )
    run.add_argument(
        "--summary", default=None, help="also write the mean/stdev summary JSON here"
    )
    run.add_argument(
        "--baseline",
        default=None,
        help="check the summary against this baseline summary JSON "
        "(exit 1 on >--max-slowdown regression)",
    )
    run.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="regression gate threshold vs the baseline mean (default 2.0x)",
    )
    summarize = sub.add_parser(
        "summarize", help="fold BENCH row files into a mean/stdev summary"
    )
    summarize.add_argument("files", nargs="+", help="BENCH_*.json files")
    summarize.add_argument("--out", default=None, help="write the summary JSON here")
    summarize.add_argument(
        "--metric", default="wall_s", help="row metric to aggregate (default wall_s)"
    )
    check = sub.add_parser(
        "check", help="compare a summary against a baseline summary"
    )
    check.add_argument("summary", help="summary JSON produced by run/summarize")
    check.add_argument("baseline", help="baseline summary JSON to compare against")
    check.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when mean exceeds baseline mean by this factor (default 2.0)",
    )
    return parser


def _loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Open-loop Poisson load generator against a fleet "
        "gateway (repro serve --fleet --listen PORT)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="gateway host")
    parser.add_argument("--port", type=int, required=True, help="gateway TCP port")
    parser.add_argument(
        "--rate", type=float, default=2.0, help="mean session arrivals per second"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="offered-load window in seconds"
    )
    parser.add_argument(
        "--seed",
        default="loadgen",
        help="determinism root: same seed => same arrival schedule, "
        "populations and exact bytes sent",
    )
    parser.add_argument(
        "--clients", type=int, default=6, help="population size per session"
    )
    parser.add_argument(
        "--churn",
        type=int,
        default=1,
        help="population members replaced before each arrival",
    )
    parser.add_argument(
        "--bins", type=int, default=1, help=">1 draws histogram-valued populations"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=120.0,
        help="how long to wait for outstanding replies after the window",
    )
    parser.add_argument(
        "--json", default=None, help="also write the report as JSON to this path"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from repro.net.serve import main as serve_main

        args = _serve_parser().parse_args(argv[1:])
        if args.seed == "none":
            args.seed = None
        return serve_main(args)
    if argv and argv[0] == "bench":
        from repro.bench.harness import main as bench_main

        return bench_main(_bench_parser().parse_args(argv[1:]))
    if argv and argv[0] == "loadgen":
        return _loadgen_main(_loadgen_parser().parse_args(argv[1:]))
    if argv and argv[0] == "lint":
        from repro.lint.runner import build_parser as lint_parser
        from repro.lint.runner import main as lint_main

        return lint_main(lint_parser().parse_args(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Verifiable Differential Privacy'",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "list", "serve", "bench", "loadgen", "lint"],
        help="experiment id (see DESIGN.md), 'all'/'list', 'serve' "
        "(multi-process serving demo), 'bench' (run-table experiment "
        "harness), 'loadgen' (open-loop fleet load generator), or 'lint' "
        "(protocol-invariant static analysis); run '<name> --help' for "
        "options",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:12s} {_DESCRIPTIONS[name]}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        rows = EXPERIMENTS[name]()
        print_table(rows, title=f"== {name}: {_DESCRIPTIONS[name]} ==")
        _maybe_chart(name, rows)
    return 0


def _loadgen_main(args) -> int:
    import json

    from repro.loadgen import run_loadgen

    report = run_loadgen(
        host=args.host,
        port=args.port,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        clients=args.clients,
        churn=args.churn,
        bins=args.bins,
        drain_timeout=args.drain_timeout,
    )
    print(
        f"== loadgen (rate={report['rate']}/s x {report['duration_s']}s, "
        f"seed={report['seed']!r}, {report['clients']} clients, "
        f"churn {report['churn']}) =="
    )
    print(
        f"offered:    {report['offered']} sessions "
        f"({report['offered_rate']:.2f}/s)"
    )
    print(
        f"outcomes:   released={report['released']} aborted={report['aborted']} "
        f"crashed={report['crashed']} rejected={report['rejected']} "
        f"timeout={report['timeout']} lost={report['lost']}"
    )
    print(f"throughput: {report['throughput_sessions_per_sec']:.2f} released/s")
    for key in ("p50_s", "p95_s", "p99_s"):
        value = report[key]
        print(f"{key[:-2]}:        {value:.3f}s" if value is not None else f"{key[:-2]}:        n/a")
    print(
        f"wire bytes: {report['bytes_sent']} sent "
        f"(= {report['bytes_planned']} planned, exact per seed), "
        f"{report['bytes_received']} received"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    # Losing offered sessions (no reply at all) is a failed run; protocol
    # rejections are a reported outcome, not a generator failure.
    return 0 if report["lost"] == 0 else 1


def _maybe_chart(name: str, rows: list[dict]) -> None:
    """Render the figure experiments as ASCII charts under the table."""
    from repro.bench.plot import ascii_chart

    if name == "fig3":
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            series.setdefault(f"{row['backend']} prove", []).append(
                (row["epsilon"], row["prove_total_s"])
            )
        print(ascii_chart(series, title="Figure 3 — total Σ-proof time vs ε",
                          x_label="epsilon", y_label="sec", log_y=True))
        print()
    elif name == "fig4":
        series = {
            "sigma prove+verify": [
                (row["M"], row["sigma_prove_ms"] + row["sigma_verify_ms"]) for row in rows
            ],
            "sketch": [(row["M"], row["sketch_ms"]) for row in rows],
        }
        print(ascii_chart(series, title="Figure 4 — client validation vs M",
                          x_label="M", y_label="ms", log_y=True))
        print()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
