"""Command-line entry point: ``python -m repro <experiment>``.

``python -m repro list`` shows the experiment index; ``all`` runs every
experiment in sequence.  Workload sizes default to scaled-down values —
set ``REPRO_PAPER_SCALE=1`` for paper-scale runs (slow in pure Python).

``python -m repro serve`` runs a session as separate OS processes — an
analyst front-end, K prover servers and a client population — over the
``multiprocessing``-pipe or TCP transport (see :mod:`repro.net`), and
checks the release is byte-identical to the in-process path when seeded.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import EXPERIMENTS, print_table

_DESCRIPTIONS = {
    "table1": "Table 1 — per-stage latency of PiBin (sigma/morra/aggregate/check)",
    "fig3": "Figure 3 — sigma proof create/verify latency vs epsilon, both backends",
    "fig4": "Figure 4 — client one-hot validation: sigma-OR vs PRIO/Poplar sketch",
    "table2": "Table 2 — qualitative properties of MPC-DP systems (validated live)",
    "micro": "Section 6 — single exponentiation latency, modp vs ristretto",
    "multiexp": "Multiexp tiers — naive/Straus/Pippenger crossover (emits BENCH_multiexp.json)",
    "streaming": "Streamed vs buffered session verification (emits BENCH_streaming.json)",
    "err": "DP-Error — central O(1/eps) vs local O(sqrt(n)/eps)",
    "comm": "Communication — serialized proof sizes: sigma-OR vs sketch",
    "attacks": "Figure 1 — exclusion/collusion/noise-biasing, baseline vs PiBin",
    "separation": "Theorem 5.2 — impossibility of information-theoretic verifiable DP",
}


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run one verifiable-DP session as separate OS processes",
    )
    parser.add_argument(
        "--transport",
        choices=("memory", "multiprocess", "socket"),
        default="multiprocess",
        help="node substrate: threads over the in-memory bus, pipes, or TCP",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve over asyncio sockets: one SessionMux front-end process "
        "multiplexes --sessions concurrent sessions (implies --transport "
        "socket; each session is byte-identical to its solo seeded run)",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="serve through a dispatcher-orchestrated fleet: --frontends "
        "SessionMux worker processes (capacity --capacity sessions each, "
        "optionally --shards workers per session) behind one admission "
        "point with health checks, work-stealing, drain and crash restart",
    )
    parser.add_argument(
        "--frontends",
        type=int,
        default=2,
        help="fleet front-end process count F (with --fleet)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=2,
        help="concurrent sessions per fleet front-end (with --fleet)",
    )
    parser.add_argument(
        "--fleet-config",
        default=None,
        help="JSON fleet config file; overrides the individual fleet flags",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=2,
        help="total session count N for --async / --fleet serving",
    )
    parser.add_argument("--servers", type=int, default=2, help="prover count K")
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="verification shard workers S (0 = single front-end); the "
        "client stream and coin chunks are partitioned across S workers "
        "and the merged release stays byte-identical to unsharded",
    )
    parser.add_argument("--clients", type=int, default=8, help="client count n")
    parser.add_argument("--nb", type=int, default=64, help="noise coins per prover")
    parser.add_argument("--bins", type=int, default=1, help=">1 runs a histogram query")
    parser.add_argument("--group", default="p64-sim", help="group backend name")
    parser.add_argument(
        "--chunk", type=int, default=None, help="streaming chunk size (default: buffered)"
    )
    parser.add_argument(
        "--seed",
        default="serve",
        help="RNG seed; enables the byte-identical check ('none' disables)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="socket transport host")
    parser.add_argument("--port", type=int, default=0, help="socket port (0 = ephemeral)")
    parser.add_argument("--timeout", type=float, default=120.0, help="per-recv timeout")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from repro.net.serve import main as serve_main

        args = _serve_parser().parse_args(argv[1:])
        if args.seed == "none":
            args.seed = None
        return serve_main(args)

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Verifiable Differential Privacy'",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "serve"],
        help="experiment id (see DESIGN.md), 'all'/'list', or 'serve' "
        "(multi-process serving demo; run 'serve --help' for options)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:12s} {_DESCRIPTIONS[name]}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        rows = EXPERIMENTS[name]()
        print_table(rows, title=f"== {name}: {_DESCRIPTIONS[name]} ==")
        _maybe_chart(name, rows)
    return 0


def _maybe_chart(name: str, rows: list[dict]) -> None:
    """Render the figure experiments as ASCII charts under the table."""
    from repro.bench.plot import ascii_chart

    if name == "fig3":
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            series.setdefault(f"{row['backend']} prove", []).append(
                (row["epsilon"], row["prove_total_s"])
            )
        print(ascii_chart(series, title="Figure 3 — total Σ-proof time vs ε",
                          x_label="epsilon", y_label="sec", log_y=True))
        print()
    elif name == "fig4":
        series = {
            "sigma prove+verify": [
                (row["M"], row["sigma_prove_ms"] + row["sigma_verify_ms"]) for row in rows
            ],
            "sketch": [(row["M"], row["sketch_ms"]) for row in rows],
        }
        print(ascii_chart(series, title="Figure 4 — client validation vs M",
                          x_label="M", y_label="ms", log_y=True))
        print()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
