"""Secret sharing over Z_q.

Clients in the MPC model "secret share (or partition) their inputs"
(Section 3).  The protocol layer uses additive sharing by default; the
paper notes (footnote 4) that any linear scheme works, so Shamir sharing is
provided as well and satisfies the same interface.
"""

from repro.sharing.additive import AdditiveSharing, share_additive, reconstruct_additive
from repro.sharing.shamir import ShamirSharing, ShamirShare

__all__ = [
    "AdditiveSharing",
    "share_additive",
    "reconstruct_additive",
    "ShamirSharing",
    "ShamirShare",
]
