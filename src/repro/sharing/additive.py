"""Additive (K-out-of-K) secret sharing over Z_q.

``x = Σ_k ⟦x⟧_k mod q``: any K-1 shares are uniform and independent of x
(information-theoretic hiding), all K reconstruct.  This is the sharing
used by ΠBin, PRIO and Poplar: linearity makes the aggregate of shares a
share of the aggregate, which is what lets each prover compute
``X_k = Σ_i ⟦x_i⟧_k`` locally (Line 10 of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["AdditiveSharing", "share_additive", "reconstruct_additive"]


def share_additive(value: int, parties: int, q: int, rng: RNG | None = None) -> list[int]:
    """Split ``value`` into ``parties`` uniform additive shares mod q."""
    if parties < 1:
        raise ParameterError("need at least one party")
    if q < 2:
        raise ParameterError("modulus must be at least 2")
    rng = default_rng(rng)
    shares = [rng.field_element(q) for _ in range(parties - 1)]
    last = (value - sum(shares)) % q
    shares.append(last)
    return shares


def reconstruct_additive(shares: list[int], q: int) -> int:
    """Sum of the shares mod q."""
    if not shares:
        raise ParameterError("no shares to reconstruct from")
    return sum(shares) % q


@dataclass(frozen=True)
class AdditiveSharing:
    """A convenience object bundling modulus and party count."""

    parties: int
    q: int

    def share(self, value: int, rng: RNG | None = None) -> list[int]:
        return share_additive(value, self.parties, self.q, rng)

    def share_vector(self, values: list[int], rng: RNG | None = None) -> list[list[int]]:
        """Share each coordinate; returns per-party share vectors.

        ``result[k][j]`` is party k's share of coordinate j.
        """
        rng = default_rng(rng)
        per_value = [self.share(v, rng) for v in values]
        return [[per_value[j][k] for j in range(len(values))] for k in range(self.parties)]

    def reconstruct(self, shares: list[int]) -> int:
        if len(shares) != self.parties:
            raise ParameterError(
                f"additive sharing needs all {self.parties} shares, got {len(shares)}"
            )
        return reconstruct_additive(shares, self.q)
