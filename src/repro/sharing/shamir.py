"""Shamir (t-out-of-n) secret sharing over Z_q.

Included because the paper notes (footnote 4) that "any linear secret
sharing such as Shamir's secret sharing also applies to all our results";
the protocol layer accepts either scheme.  Shares are points on a random
degree-(t-1) polynomial with f(0) = secret; reconstruction is Lagrange
interpolation at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.numth import inverse_mod
from repro.utils.rng import RNG, default_rng

__all__ = ["ShamirShare", "ShamirSharing"]


@dataclass(frozen=True)
class ShamirShare:
    """A point (index, value) on the sharing polynomial; index >= 1."""

    index: int
    value: int


@dataclass(frozen=True)
class ShamirSharing:
    """Parameters of a t-out-of-n Shamir scheme over Z_q."""

    threshold: int
    parties: int
    q: int

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= self.parties:
            raise ParameterError("need 1 <= threshold <= parties")
        if self.parties >= self.q:
            raise ParameterError("field too small for this many parties")

    def share(self, value: int, rng: RNG | None = None) -> list[ShamirShare]:
        """Evaluate a random polynomial with f(0) = value at x = 1..n."""
        rng = default_rng(rng)
        coeffs = [value % self.q] + [
            rng.field_element(self.q) for _ in range(self.threshold - 1)
        ]
        shares = []
        for x in range(1, self.parties + 1):
            acc = 0
            for coeff in reversed(coeffs):
                acc = (acc * x + coeff) % self.q
            shares.append(ShamirShare(x, acc))
        return shares

    def reconstruct(self, shares: list[ShamirShare]) -> int:
        """Lagrange interpolation at zero from >= threshold shares."""
        if len({s.index for s in shares}) < self.threshold:
            raise ParameterError(
                f"need {self.threshold} distinct shares, got {len(shares)}"
            )
        points = shares[: self.threshold]
        secret = 0
        for i, si in enumerate(points):
            num = 1
            den = 1
            for j, sj in enumerate(points):
                if i == j:
                    continue
                num = (num * (-sj.index)) % self.q
                den = (den * (si.index - sj.index)) % self.q
            secret = (secret + si.value * num * inverse_mod(den, self.q)) % self.q
        return secret

    def add_shares(self, a: list[ShamirShare], b: list[ShamirShare]) -> list[ShamirShare]:
        """Linearity: pointwise addition shares the sum."""
        if len(a) != len(b) or any(x.index != y.index for x, y in zip(a, b)):
            raise ParameterError("share vectors must align by index")
        return [ShamirShare(x.index, (x.value + y.value) % self.q) for x, y in zip(a, b)]
