"""ristretto255: a prime-order group over Curve25519, in pure Python.

The paper's second backend ("we also implemented Pedersen commitments over
elliptic curves using the prime order Ristretto group", Section 6, via
curve25519-dalek).  Ristretto wraps the twisted Edwards curve
edwards25519 (a = -1, d = -121665/121666) and quotients away its cofactor,
yielding a group of prime order

    ℓ = 2^252 + 27742317777372353535851937790883648493

with canonical, validated 32-byte encodings — exactly the interface the
commitment and Σ-protocol layers need.

The implementation follows the ristretto255 specification
(draft-irtf-cfrg-ristretto255-decaf448): extended Edwards coordinates,
``SQRT_RATIO_M1`` for square-root computation, the Elligator 2 map for
``hash_to_group``, and the canonical encode/decode procedures.  Known
test vectors for small multiples of the generator are checked in
``tests/crypto/test_ristretto.py``.

Performance note: this is pure Python, so a scalar multiplication costs on
the order of a millisecond (versus 328 µs for the paper's dalek build on an
M1).  The paper's *relative* finding (EC slower than modp) inverts here:
255-bit Edwards arithmetic in Python beats CPython's 2048-bit ``pow`` —
without native field code, bignum width dominates.  The micro benchmark
(`python -m repro micro`) reports both numbers; see DESIGN.md.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.crypto.group import Group, GroupElement
from repro.errors import EncodingError, NotOnGroupError
from repro.utils.rng import RNG, default_rng

__all__ = ["RistrettoGroup", "RistrettoPoint", "P", "ELL"]

# Field prime and group order.
P = 2**255 - 19
ELL = 2**252 + 27742317777372353535851937790883648493

# Curve constant d = -121665/121666 mod p.
D = (-121665 * pow(121666, -1, P)) % P


def _is_negative(x: int) -> bool:
    """Ristretto sign convention: an element is negative iff it is odd."""
    return (x % P) & 1 == 1


def _abs(x: int) -> int:
    x %= P
    return P - x if _is_negative(x) else x


def _sqrt_m1() -> int:
    """The non-negative square root of -1 mod p."""
    root = pow(2, (P - 1) // 4, P)
    return _abs(root)


SQRT_M1 = _sqrt_m1()
ONE_MINUS_D_SQ = (1 - D * D) % P
D_MINUS_ONE_SQ = ((D - 1) * (D - 1)) % P


def sqrt_ratio_m1(u: int, v: int) -> tuple[bool, int]:
    """Compute sqrt(u/v) if it exists, else sqrt(SQRT_M1 * u/v).

    Returns ``(was_square, root)`` with ``root`` non-negative.  All four
    residue cases of the candidate are handled explicitly, which makes the
    function correct independent of the sign convention of ``SQRT_M1``.
    """
    u %= P
    v %= P
    v3 = (v * v % P) * v % P
    v7 = (v3 * v3 % P) * v % P
    r = (u * v3 % P) * pow(u * v7 % P, (P - 5) // 8, P) % P
    check = v * (r * r % P) % P

    minus_u = (P - u) % P
    if check == u % P:
        was_square = True
    elif check == minus_u:
        was_square = True
        r = r * SQRT_M1 % P
    elif check == minus_u * SQRT_M1 % P:
        was_square = False
        r = r * SQRT_M1 % P
    elif check == u * SQRT_M1 % P:
        was_square = False
    else:
        # u == 0 or v == 0 reduce to the cases above (check == 0 == u).
        was_square = u % P == 0
        r = 0
    return was_square, _abs(r)


SQRT_AD_MINUS_ONE = sqrt_ratio_m1(((-1 - D) % P), 1)[1]  # sqrt(a*d - 1), a = -1
INVSQRT_A_MINUS_D = sqrt_ratio_m1(1, (-1 - D) % P)[1]  # 1/sqrt(a - d)


class RistrettoPoint(GroupElement):
    """A ristretto255 group element in extended Edwards coordinates.

    Internally ``(X : Y : Z : T)`` with x = X/Z, y = Y/Z, x*y = T/Z.
    Equality is *ristretto* equality (coset equality), not pointwise
    Edwards equality: P == Q iff X1*Y2 == Y1*X2 or Y1*Y2 == X1*X2.
    """

    __slots__ = ("_group", "X", "Y", "Z", "T", "_encoding")

    def __init__(self, group: "RistrettoGroup", X: int, Y: int, Z: int, T: int) -> None:
        self._group = group
        self.X = X % P
        self.Y = Y % P
        self.Z = Z % P
        self.T = T % P
        self._encoding: bytes | None = None

    @property
    def group(self) -> "RistrettoGroup":
        return self._group

    # Edwards arithmetic --------------------------------------------------

    def combine(self, other: GroupElement) -> "RistrettoPoint":
        if not isinstance(other, RistrettoPoint):
            raise NotOnGroupError("cannot combine elements of different groups")
        # add-2008-hwcd-3 for a = -1 twisted Edwards curves.
        X1, Y1, Z1, T1 = self.X, self.Y, self.Z, self.T
        X2, Y2, Z2, T2 = other.X, other.Y, other.Z, other.T
        A = (Y1 - X1) * (Y2 - X2) % P
        B = (Y1 + X1) * (Y2 + X2) % P
        C = T1 * 2 * D % P * T2 % P
        Dv = Z1 * 2 * Z2 % P
        E = B - A
        F = Dv - C
        G = Dv + C
        H = B + A
        return RistrettoPoint(self._group, E * F, G * H, F * G, E * H)

    def double(self) -> "RistrettoPoint":
        # dbl-2008-hwcd for a = -1.
        X1, Y1, Z1 = self.X, self.Y, self.Z
        A = X1 * X1 % P
        B = Y1 * Y1 % P
        C = 2 * Z1 * Z1 % P
        H = A + B
        E = H - (X1 + Y1) * (X1 + Y1) % P
        G = A - B
        F = C + G
        return RistrettoPoint(self._group, E * F, G * H, F * G, E * H)

    def scale(self, exponent: int) -> "RistrettoPoint":
        e = exponent % ELL
        if e == 0:
            return self._group.identity()
        # 4-bit fixed windows, MSB first.
        table = [self._group.identity(), self]
        for _ in range(2, 16):
            table.append(table[-1].combine(self))
        acc = self._group.identity()
        started = False
        for shift in range((e.bit_length() + 3) // 4 * 4 - 4, -1, -4):
            if started:
                acc = acc.double().double().double().double()
            digit = (e >> shift) & 0xF
            if digit:
                acc = acc.combine(table[digit])
                started = True
            elif started:
                pass
            else:
                continue
        return acc

    def invert(self) -> "RistrettoPoint":
        return RistrettoPoint(self._group, P - self.X, self.Y, self.Z, P - self.T)

    # Ristretto encoding ---------------------------------------------------

    def to_bytes(self) -> bytes:
        if self._encoding is not None:
            return self._encoding
        X, Y, Z, T = self.X, self.Y, self.Z, self.T
        u1 = (Z + Y) * (Z - Y) % P
        u2 = X * Y % P
        _, invsqrt = sqrt_ratio_m1(1, u1 * u2 % P * u2 % P)
        den1 = invsqrt * u1 % P
        den2 = invsqrt * u2 % P
        z_inv = den1 * den2 % P * T % P
        if _is_negative(T * z_inv % P):
            ix = X * SQRT_M1 % P
            iy = Y * SQRT_M1 % P
            x = iy
            y = ix
            den_inv = den1 * INVSQRT_A_MINUS_D % P
        else:
            x = X
            y = Y
            den_inv = den2
        if _is_negative(x * z_inv % P):
            y = (P - y) % P
        s = _abs(den_inv * ((Z - y) % P) % P)
        self._encoding = s.to_bytes(32, "little")
        return self._encoding

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RistrettoPoint):
            return NotImplemented
        lhs = self.X * other.Y % P == self.Y * other.X % P
        rhs = self.Y * other.Y % P == self.X * other.X % P
        return lhs or rhs

    def __hash__(self) -> int:
        return hash((id(self._group), self.to_bytes()))


class _RistrettoKernel:
    """Raw multiexp kernel: (X, Y, Z, T) extended-coordinate tuples.

    The add/double formulas are the same complete a = -1 formulas as
    :meth:`RistrettoPoint.combine` / :meth:`RistrettoPoint.double`, inlined
    over tuples so the whole product runs without allocating a point
    object per operation; only the final result is re-boxed.
    """

    __slots__ = ("_group", "identity_raw")

    native_pow = False  # scalar mult is a Python double-and-add
    op_overhead = 0.1  # ~10 field muls per group op dwarf loop bookkeeping
    neg_muls = 0.05  # negation flips two coordinates — effectively free

    def __init__(self, group: "RistrettoGroup") -> None:
        self._group = group
        self.identity_raw = (0, 1, 1, 0)

    @staticmethod
    def to_raw(point: "RistrettoPoint") -> tuple[int, int, int, int]:
        return (point.X, point.Y, point.Z, point.T)

    def from_raw(self, raw: tuple[int, int, int, int]) -> "RistrettoPoint":
        return RistrettoPoint(self._group, *raw)

    @staticmethod
    def mul(a: tuple, b: tuple) -> tuple:
        X1, Y1, Z1, T1 = a
        X2, Y2, Z2, T2 = b
        A = (Y1 - X1) * (Y2 - X2) % P
        B = (Y1 + X1) * (Y2 + X2) % P
        C = T1 * 2 * D % P * T2 % P
        Dv = Z1 * 2 * Z2 % P
        E = B - A
        F = Dv - C
        G = Dv + C
        H = B + A
        return (E * F % P, G * H % P, F * G % P, E * H % P)

    @staticmethod
    def sqr(a: tuple) -> tuple:
        X1, Y1, Z1, _ = a
        A = X1 * X1 % P
        B = Y1 * Y1 % P
        C = 2 * Z1 * Z1 % P
        H = A + B
        E = H - (X1 + Y1) * (X1 + Y1) % P
        G = A - B
        F = C + G
        return (E * F % P, G * H % P, F * G % P, E * H % P)

    @staticmethod
    def neg_many(raws: list[tuple]) -> list[tuple]:
        return [((P - X) % P, Y, Z, (P - T) % P) for X, Y, Z, T in raws]


class RistrettoGroup(Group):
    """The ristretto255 prime-order group (singleton per process)."""

    _NAME = "ristretto255"

    def __init__(self) -> None:
        self._identity = RistrettoPoint(self, 0, 1, 1, 0)
        # edwards25519 basepoint: y = 4/5, x the even root.
        by = 4 * pow(5, -1, P) % P
        bx = self._recover_x(by, sign_negative=False)
        self._generator = RistrettoPoint(self, bx, by, 1, bx * by % P)
        self._kernel: _RistrettoKernel | None = None

    @staticmethod
    def _recover_x(y: int, *, sign_negative: bool) -> int:
        # x^2 = (y^2 - 1) / (d*y^2 + 1)
        yy = y * y % P
        u = (yy - 1) % P
        v = (D * yy + 1) % P
        was_square, x = sqrt_ratio_m1(u, v)
        if not was_square:
            raise EncodingError("no square root: invalid y-coordinate")
        if _is_negative(x) != sign_negative:
            x = (P - x) % P
        return x

    @staticmethod
    @lru_cache(maxsize=1)
    def instance() -> "RistrettoGroup":
        return RistrettoGroup()

    # Group interface ------------------------------------------------------

    @property
    def order(self) -> int:
        return ELL

    @property
    def name(self) -> str:
        return self._NAME

    def identity(self) -> RistrettoPoint:
        return self._identity

    def generator(self) -> RistrettoPoint:
        return self._generator

    def from_bytes(self, data: bytes) -> RistrettoPoint:
        if len(data) != 32:
            raise EncodingError(f"ristretto encodings are 32 bytes, got {len(data)}")
        s = int.from_bytes(data, "little")
        if s >= P or _is_negative(s):
            raise NotOnGroupError("non-canonical ristretto encoding")
        ss = s * s % P
        u1 = (1 - ss) % P
        u2 = (1 + ss) % P
        u2_sqr = u2 * u2 % P
        v = ((P - D) * u1 % P * u1 + (P - u2_sqr)) % P
        was_square, invsqrt = sqrt_ratio_m1(1, v * u2_sqr % P)
        den_x = invsqrt * u2 % P
        den_y = invsqrt * den_x % P * v % P
        x = _abs(2 * s % P * den_x % P)
        y = u1 * den_y % P
        t = x * y % P
        if not was_square or _is_negative(t) or y == 0:
            raise NotOnGroupError("invalid ristretto encoding")
        return RistrettoPoint(self, x, y, 1, t)

    def hash_to_group(self, label: bytes) -> RistrettoPoint:
        """One-way map from a label to a group element (Elligator 2, twice).

        Matches the ristretto255 ``FROM_UNIFORM_BYTES`` construction on the
        SHA-512 digest of the label: split into two halves, mask to 255
        bits, map each through Elligator, and add.  The discrete log of the
        output with respect to the generator is unknown.
        """
        digest = hashlib.sha512(b"repro.ristretto.h2g|" + label).digest()
        r0 = int.from_bytes(digest[:32], "little") & ((1 << 255) - 1)
        r1 = int.from_bytes(digest[32:], "little") & ((1 << 255) - 1)
        return self._elligator(r0).combine(self._elligator(r1))

    def from_uniform_bytes(self, data: bytes) -> RistrettoPoint:
        """The spec's FROM_UNIFORM_BYTES on caller-provided 64 bytes."""
        if len(data) != 64:
            raise EncodingError("from_uniform_bytes requires exactly 64 bytes")
        r0 = int.from_bytes(data[:32], "little") & ((1 << 255) - 1)
        r1 = int.from_bytes(data[32:], "little") & ((1 << 255) - 1)
        return self._elligator(r0).combine(self._elligator(r1))

    def _elligator(self, r0: int) -> RistrettoPoint:
        r = SQRT_M1 * r0 % P * r0 % P
        u = (r + 1) * ONE_MINUS_D_SQ % P
        v = ((P - 1) - r * D) % P * ((r + D) % P) % P
        was_square, s = sqrt_ratio_m1(u, v)
        if not was_square:
            s = _abs(s * r0 % P)
            s = (P - s) % P  # s' = -|s * r0|
            c = r
        else:
            c = P - 1
        n = (c * ((r - 1) % P) % P * D_MINUS_ONE_SQ - v) % P
        w0 = 2 * s * v % P
        w1 = n * SQRT_AD_MINUS_ONE % P
        w2 = (1 - s * s) % P
        w3 = (1 + s * s) % P
        return RistrettoPoint(self, w0 * w3, w2 * w1, w1 * w3, w0 * w2)

    def random_element(self, rng: RNG | None = None) -> RistrettoPoint:
        return self.from_uniform_bytes(default_rng(rng).random_bytes(64))

    def multiexp_kernel(self) -> _RistrettoKernel:
        """Extended-coordinate kernel consumed by :mod:`repro.crypto.multiexp`."""
        if self._kernel is None:
            self._kernel = _RistrettoKernel(self)
        return self._kernel
