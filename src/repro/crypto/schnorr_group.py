"""Schnorr groups: the prime-order subgroup of quadratic residues of Z*p.

This is the paper's default backend ("we adopted Gq ⊂ Z*p based on the
finite field discrete log problem", Section 6).  For a *safe* prime
p = 2q + 1, the quadratic residues of Z*p form a cyclic subgroup of prime
order q; membership is a Legendre-symbol check.

Named parameter sets:

``modp-2048``, ``modp-3072``
    RFC 3526 MODP groups (safe primes used by IKE); production strength and
    what the paper's OpenSSL implementation corresponds to.
``p256-sim``, ``p128-sim``, ``p64-sim``
    Pre-generated safe primes at reduced sizes for simulation and tests.
    Deterministically generated and re-verified by the test suite.  These
    exercise identical code paths at a fraction of the cost — useful since
    this reproduction is pure Python.

Exponentiation uses the built-in ``pow`` (libmpdec-free, GMP-like C path in
CPython), which is the closest analogue of the paper's OpenSSL BigNum calls.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.crypto.group import Group, GroupElement
from repro.errors import EncodingError, NotOnGroupError, ParameterError
from repro.utils.numth import batch_inverse, is_probable_prime, legendre_symbol
from repro.utils.encoding import int_to_bytes

__all__ = ["SchnorrGroup", "SchnorrElement", "NAMED_GROUPS"]


# RFC 3526 group 14 (2048-bit MODP). Safe prime: q = (p-1)/2 is prime.
_RFC3526_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

# Deterministically pre-generated safe primes (seeds "repro-<bits>"), verified
# in tests/crypto/test_schnorr_group.py::test_named_groups_are_safe_primes.
_SIM_256 = 0xF0A9168889ECF85024DEF3A19A22BF21D1DDB584A63A678414215485D31267E3
_SIM_128 = 0xD3D4A4D75F35187165961185ED721AB7
_SIM_64 = 0x8D13413B94E597C3
# 32-bit toy group: order ~2^30, small enough for a baby-step/giant-step
# discrete-log "oracle" — used ONLY by the Section 5 separation demo to
# play the role of an unbounded adversary.
_SIM_32 = 0xA4C3B403


class SchnorrElement(GroupElement):
    """Element of the quadratic-residue subgroup, stored as int in [1, p)."""

    __slots__ = ("_group", "_value")

    def __init__(self, group: "SchnorrGroup", value: int) -> None:
        self._group = group
        self._value = value

    @property
    def group(self) -> "SchnorrGroup":
        return self._group

    @property
    def value(self) -> int:
        """Underlying residue (an integer mod p)."""
        return self._value

    def combine(self, other: GroupElement) -> "SchnorrElement":
        if not isinstance(other, SchnorrElement) or other._group is not self._group:
            raise NotOnGroupError("cannot combine elements of different groups")
        return SchnorrElement(self._group, (self._value * other._value) % self._group.modulus)

    def scale(self, exponent: int) -> "SchnorrElement":
        return SchnorrElement(
            self._group, pow(self._value, exponent % self._group.order, self._group.modulus)
        )

    def invert(self) -> "SchnorrElement":
        return SchnorrElement(self._group, pow(self._value, -1, self._group.modulus))

    def to_bytes(self) -> bytes:
        return int_to_bytes(self._value, self._group.element_bytes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SchnorrElement)
            and other._group is self._group
            and other._value == self._value
        )

    def __hash__(self) -> int:
        return hash((id(self._group), self._value))


class _SchnorrKernel:
    """Raw multiexp kernel: residues as plain ints, products mod p.

    Table negations use Montgomery batch inversion (one ``pow(·, -1, p)``
    for an arbitrarily long list), so Straus' signed-digit tables cost
    three multiplications per entry instead of an inversion each.
    """

    __slots__ = ("_group", "_p", "identity_raw", "op_overhead")

    native_pow = True  # SchnorrElement.scale is CPython's C `pow`
    # Negation is a modular inversion: ~3 multiplications per element
    # even via batch_inverse, which is why signed-digit Pippenger does
    # not pay on this backend (see repro.crypto.multiexp).
    neg_muls = 3.2

    def __init__(self, group: "SchnorrGroup") -> None:
        self._group = group
        self._p = group.modulus
        self.identity_raw = 1
        # Python bookkeeping (~0.5 µs/hit) relative to one modmul, which
        # scales subquadratically with the modulus width (Karatsuba).
        mul_us = 0.3 * (group.modulus.bit_length() / 128.0) ** 1.25
        self.op_overhead = min(3.0, 0.5 / mul_us)

    @staticmethod
    def to_raw(element: "SchnorrElement") -> int:
        return element._value

    def from_raw(self, raw: int) -> "SchnorrElement":
        return SchnorrElement(self._group, raw)

    def mul(self, a: int, b: int) -> int:
        return a * b % self._p

    def sqr(self, a: int) -> int:
        return a * a % self._p

    def neg_many(self, raws: list[int]) -> list[int]:
        return batch_inverse(raws, self._p)


class SchnorrGroup(Group):
    """Quadratic-residue subgroup of Z*p for a safe prime p = 2q + 1."""

    def __init__(self, p: int, *, name: str, check: bool = True) -> None:
        if check:
            if not is_probable_prime(p):
                raise ParameterError("modulus is not prime")
            if not is_probable_prime((p - 1) // 2):
                raise ParameterError("modulus is not a safe prime")
        self._p = p
        self._q = (p - 1) // 2
        self._name = name
        self.element_bytes = (p.bit_length() + 7) // 8
        # g = 4 = 2^2 is always a quadratic residue and (for safe primes,
        # p > 5) generates the full order-q subgroup.
        self._g = SchnorrElement(self, 4 % p)
        self._identity = SchnorrElement(self, 1)
        self._kernel: _SchnorrKernel | None = None

    # Group interface ----------------------------------------------------

    @property
    def order(self) -> int:
        return self._q

    @property
    def modulus(self) -> int:
        """The prime p of the ambient field Z*p."""
        return self._p

    @property
    def name(self) -> str:
        return self._name

    def identity(self) -> SchnorrElement:
        return self._identity

    def generator(self) -> SchnorrElement:
        return self._g

    def hash_to_group(self, label: bytes) -> SchnorrElement:
        """Hash-to-QR: expand label to Z*p, square to land in the subgroup.

        Squaring is a 2-to-1 map from Z*p onto the quadratic residues, so
        the output discrete log relative to g is unknown to everyone —
        exactly the independence Pedersen commitments require of h.
        """
        counter = 0
        while True:
            digest = b""
            block = 0
            seed = b"repro.schnorr.h2g|" + self._name.encode() + b"|" + label
            while len(digest) < self.element_bytes + 16:
                digest += hashlib.sha512(seed + counter.to_bytes(4, "big") + block.to_bytes(4, "big")).digest()
                block += 1
            candidate = int.from_bytes(digest, "big") % self._p
            if candidate not in (0, 1, self._p - 1):
                return SchnorrElement(self, pow(candidate, 2, self._p))
            counter += 1  # pragma: no cover - astronomically unlikely

    def from_bytes(self, data: bytes) -> SchnorrElement:
        if len(data) != self.element_bytes:
            raise EncodingError(
                f"expected {self.element_bytes} bytes, got {len(data)}"
            )
        value = int.from_bytes(data, "big")
        return self.element(value)

    def element(self, value: int) -> SchnorrElement:
        """Wrap an integer, checking subgroup membership."""
        if not 1 <= value < self._p:
            raise NotOnGroupError(f"{value} outside Z*p")
        if value != 1 and legendre_symbol(value, self._p) != 1:
            raise NotOnGroupError("value is not a quadratic residue (not in Gq)")
        return SchnorrElement(self, value)

    def multiexp_kernel(self) -> _SchnorrKernel:
        """Raw-int kernel consumed by :mod:`repro.crypto.multiexp`."""
        if self._kernel is None:
            self._kernel = _SchnorrKernel(self)
        return self._kernel

    # Named parameter sets ------------------------------------------------

    @staticmethod
    @lru_cache(maxsize=None)
    def named(name: str) -> "SchnorrGroup":
        """Return a cached named group ('modp-2048', 'p256-sim', ...)."""
        try:
            p = NAMED_GROUPS[name]
        except KeyError:
            raise ParameterError(
                f"unknown Schnorr group {name!r}; options: {sorted(NAMED_GROUPS)}"
            ) from None
        return SchnorrGroup(p, name=name)


NAMED_GROUPS: dict[str, int] = {
    "modp-2048": _RFC3526_2048,
    "p256-sim": _SIM_256,
    "p128-sim": _SIM_128,
    "p64-sim": _SIM_64,
    "p32-sim": _SIM_32,
}
