"""Canonical byte serialization for proof artifacts.

A *public* verifier only makes sense if the protocol's messages can live
on a bulletin board: commitments, Σ-proofs and prover outputs must have
canonical byte encodings that any third party can parse and re-verify.
This module provides exactly that — a small, versioned, length-prefixed
wire format over the primitives' own canonical encodings:

* scalars: fixed-width big-endian at the group's scalar width,
* group elements / commitments: the backend's canonical encoding,
* structures: tagged, length-prefixed concatenation (no ambiguity).

Decoding validates group membership (via ``Group.from_bytes``), so a
deserialized proof is already structurally sound; cryptographic
verification is still the caller's job.
"""

from __future__ import annotations

import struct
import weakref

from repro.crypto.group import Group
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.bitvec import BitVectorProof
from repro.crypto.sigma.onehot import OneHotProof
from repro.crypto.sigma.opening_pok import OpeningProof
from repro.crypto.sigma.or_bit import BitProof
from repro.crypto.sigma.schnorr_pok import SchnorrProof
from repro.errors import EncodingError
from repro.utils.encoding import (
    bytes_to_int,
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)

__all__ = [
    "encode_commitment",
    "encode_commitments",
    "decode_commitment",
    "encode_bit_proof",
    "decode_bit_proof",
    "encode_one_hot_proof",
    "decode_one_hot_proof",
    "encode_bit_vector_proof",
    "decode_bit_vector_proof",
    "encode_validity_proof",
    "decode_validity_proof",
    "encode_schnorr_proof",
    "decode_schnorr_proof",
    "encode_opening_proof",
    "decode_opening_proof",
    "encode_message",
    "encode_message_cached",
    "decode_message",
    "advance_coin_transcript",
    "advance_coin_transcript_frame",
    "wire_size",
    "WIRE_MAGIC",
]

_MAGIC_BIT = b"repro.bitproof.v1"
_MAGIC_ONEHOT = b"repro.onehot.v1"
_MAGIC_BITVEC = b"repro.bitvecproof.v1"
_MAGIC_SCHNORR = b"repro.schnorr.v1"
_MAGIC_OPENING = b"repro.opening.v1"


def _scalar(group: Group, value: int) -> bytes:
    return int_to_bytes(value % group.order, group.scalar_bytes)


def _expect_magic(parts: list[bytes], magic: bytes) -> list[bytes]:
    if not parts or parts[0] != magic:
        raise EncodingError(f"bad or missing magic (expected {magic!r})")
    return parts[1:]


# Commitments -----------------------------------------------------------------


def encode_commitment(commitment: Commitment) -> bytes:
    return commitment.element.to_bytes()


def encode_commitments(commitments) -> list[bytes]:
    """Encode many commitments, batching any coordinate normalization.

    Projective backends (P-256) pay a field inversion per ``to_bytes``;
    ``Group.normalize_many`` collapses a whole row of them into one
    Montgomery batch inversion before the per-element encodings.
    """
    elements = [c.element for c in commitments]
    if not elements:
        return []
    normalized = elements[0].group.normalize_many(elements)
    return [element.to_bytes() for element in normalized]


def decode_commitment(group: Group, data: bytes) -> Commitment:
    return Commitment(group.from_bytes(data))


# Bit (Σ-OR) proofs -----------------------------------------------------------


def encode_bit_proof(proof: BitProof) -> bytes:
    group = proof.d0.group
    return encode_length_prefixed(
        _MAGIC_BIT,
        proof.d0.to_bytes(),
        proof.d1.to_bytes(),
        _scalar(group, proof.e0),
        _scalar(group, proof.e1),
        _scalar(group, proof.v0),
        _scalar(group, proof.v1),
    )


def decode_bit_proof(group: Group, data: bytes) -> BitProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_BIT)
    if len(parts) != 6:
        raise EncodingError(f"bit proof needs 6 fields, got {len(parts)}")
    return BitProof(
        d0=group.from_bytes(parts[0]),
        d1=group.from_bytes(parts[1]),
        e0=int.from_bytes(parts[2], "big"),
        e1=int.from_bytes(parts[3], "big"),
        v0=int.from_bytes(parts[4], "big"),
        v1=int.from_bytes(parts[5], "big"),
    )


# One-hot proofs ---------------------------------------------------------------


def encode_one_hot_proof(proof: OneHotProof) -> bytes:
    group = proof.bit_proofs[0].d0.group
    return encode_length_prefixed(
        _MAGIC_ONEHOT,
        _scalar(group, proof.randomness_sum),
        *[encode_bit_proof(p) for p in proof.bit_proofs],
    )


def decode_one_hot_proof(group: Group, data: bytes) -> OneHotProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_ONEHOT)
    if len(parts) < 2:
        raise EncodingError("one-hot proof needs randomness plus >= 1 bit proof")
    randomness_sum = int.from_bytes(parts[0], "big")
    bit_proofs = tuple(decode_bit_proof(group, raw) for raw in parts[1:])
    return OneHotProof(bit_proofs, randomness_sum)


# Bit-vector proofs ------------------------------------------------------------


def encode_bit_vector_proof(proof: BitVectorProof) -> bytes:
    return encode_length_prefixed(
        _MAGIC_BITVEC, *[encode_bit_proof(p) for p in proof.bit_proofs]
    )


def decode_bit_vector_proof(group: Group, data: bytes) -> BitVectorProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_BITVEC)
    if not parts:
        raise EncodingError("bit-vector proof needs >= 1 bit proof")
    return BitVectorProof(tuple(decode_bit_proof(group, raw) for raw in parts))


# Validity proofs (tag-dispatched union) ----------------------------------------

_VALIDITY_CODECS = {
    _MAGIC_BIT: decode_bit_proof,
    _MAGIC_ONEHOT: decode_one_hot_proof,
    _MAGIC_BITVEC: decode_bit_vector_proof,
}


def encode_validity_proof(proof) -> bytes:
    """Encode any client validity proof (Σ-OR bit / one-hot / bit-vector).

    Each proof family's own magic doubles as the union tag, so the
    decoder needs no out-of-band type information.
    """
    if isinstance(proof, BitProof):
        return encode_bit_proof(proof)
    if isinstance(proof, OneHotProof):
        return encode_one_hot_proof(proof)
    if isinstance(proof, BitVectorProof):
        return encode_bit_vector_proof(proof)
    raise EncodingError(f"not a validity proof: {type(proof).__name__}")


def decode_validity_proof(group: Group, data: bytes):
    parts = decode_length_prefixed(data)
    if not parts or parts[0] not in _VALIDITY_CODECS:
        raise EncodingError("unknown validity proof tag")
    return _VALIDITY_CODECS[parts[0]](group, data)


# Schnorr proofs ----------------------------------------------------------------


def encode_schnorr_proof(proof: SchnorrProof) -> bytes:
    group = proof.announcement.group
    return encode_length_prefixed(
        _MAGIC_SCHNORR,
        proof.announcement.to_bytes(),
        _scalar(group, proof.response),
    )


def decode_schnorr_proof(group: Group, data: bytes) -> SchnorrProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_SCHNORR)
    if len(parts) != 2:
        raise EncodingError("schnorr proof needs 2 fields")
    return SchnorrProof(
        announcement=group.from_bytes(parts[0]),
        response=int.from_bytes(parts[1], "big"),
    )


# Opening proofs -----------------------------------------------------------------


def encode_opening_proof(proof: OpeningProof) -> bytes:
    group = proof.announcement.group
    return encode_length_prefixed(
        _MAGIC_OPENING,
        proof.announcement.to_bytes(),
        _scalar(group, proof.response_value),
        _scalar(group, proof.response_randomness),
    )


def decode_opening_proof(group: Group, data: bytes) -> OpeningProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_OPENING)
    if len(parts) != 3:
        raise EncodingError("opening proof needs 3 fields")
    return OpeningProof(
        announcement=group.from_bytes(parts[0]),
        response_value=int.from_bytes(parts[1], "big"),
        response_randomness=int.from_bytes(parts[2], "big"),
    )


# ==============================================================================
# Wire message registry: every protocol message of ΠBin as tagged bytes.
#
# A frame is ``LP(WIRE_MAGIC, tag, body)`` — versioned (the magic), tagged
# (the registry key) and self-delimiting (the length prefixes), so one
# ``decode_message`` call recovers any protocol message from the bulletin
# board or off a transport.  The registry is built lazily because the
# message types live in :mod:`repro.core.messages`, which (via the
# ``repro.core`` package) transitively imports this module.
# ==============================================================================

WIRE_MAGIC = b"repro.wire.v1"

_REGISTRY: dict | None = None  # tag -> (type, encode_body, decode_body)
_TAG_BY_TYPE: dict | None = None


def _uint(value: int, what: str) -> bytes:
    if value < 0:
        raise EncodingError(f"{what} must be non-negative")
    return int_to_bytes(value)


def _decode_str(data: bytes, what: str) -> str:
    """UTF-8 decode under the module contract: malformed → EncodingError."""
    try:
        return data.decode()
    except UnicodeDecodeError as exc:
        raise EncodingError(f"{what} is not valid UTF-8") from exc


def _decode_uint(data: bytes, what: str, *, limit: int = 1 << 32) -> int:
    value = bytes_to_int(data)
    if value >= limit:
        raise EncodingError(f"{what} {value} is implausibly large")
    return value


def _float_bytes(value: float) -> bytes:
    return struct.pack(">d", value)


def _decode_float(data: bytes, what: str) -> float:
    if len(data) != 8:
        raise EncodingError(f"{what} must be an 8-byte big-endian double")
    return struct.unpack(">d", data)[0]


def _encode_client_broadcast(message) -> bytes:
    rows = message.share_commitments
    provers = len(rows)
    dimension = len(rows[0]) if rows else 0
    if any(len(row) != dimension for row in rows):
        raise EncodingError("ragged share commitment matrix")
    flat = [c.element.to_bytes() for row in rows for c in row]
    return encode_length_prefixed(
        message.client_id.encode(),
        _uint(provers, "prover count"),
        _uint(dimension, "dimension"),
        *flat,
        encode_validity_proof(message.validity_proof),
    )


def _decode_client_broadcast(group: Group, parts: list[bytes]):
    from repro.core.messages import ClientBroadcast

    if len(parts) < 4:
        raise EncodingError("client broadcast needs id, shape and proof")
    client_id = _decode_str(parts[0], "client id")
    provers = _decode_uint(parts[1], "prover count", limit=1 << 16)
    dimension = _decode_uint(parts[2], "dimension", limit=1 << 24)
    expected = 3 + provers * dimension + 1
    if provers < 1 or dimension < 1 or len(parts) != expected:
        raise EncodingError(
            f"client broadcast has {len(parts)} fields, expected {expected}"
        )
    flat = [Commitment(group.from_bytes(raw)) for raw in parts[3:-1]]
    rows = tuple(
        tuple(flat[k * dimension : (k + 1) * dimension]) for k in range(provers)
    )
    return ClientBroadcast(
        client_id=client_id,
        share_commitments=rows,
        validity_proof=decode_validity_proof(group, parts[-1]),
    )


def _encode_client_share(message) -> bytes:
    scalars = []
    for opening in message.openings:
        scalars.append(_uint(opening.value, "opening value"))
        scalars.append(_uint(opening.randomness, "opening randomness"))
    return encode_length_prefixed(message.client_id.encode(), *scalars)


def _decode_client_share(group: Group, parts: list[bytes]):
    from repro.core.messages import ClientShareMessage
    from repro.crypto.pedersen import Opening

    if len(parts) < 3 or len(parts) % 2 == 0:
        raise EncodingError("client share message needs id plus (value, r) pairs")
    openings = tuple(
        Opening(bytes_to_int(parts[i]), bytes_to_int(parts[i + 1]))
        for i in range(1, len(parts), 2)
    )
    return ClientShareMessage(client_id=_decode_str(parts[0], "client id"), openings=openings)


def _encode_coin_commitments(message) -> bytes:
    rows = len(message.commitments)
    lanes = len(message.commitments[0]) if rows else 0
    if len(message.proofs) != rows or any(
        len(c_row) != lanes or len(p_row) != lanes
        for c_row, p_row in zip(message.commitments, message.proofs)
    ):
        raise EncodingError("ragged coin commitment message")
    flat_c = [c.element.to_bytes() for row in message.commitments for c in row]
    flat_p = [encode_bit_proof(p) for row in message.proofs for p in row]
    return encode_length_prefixed(
        message.prover_id.encode(),
        _uint(rows, "row count"),
        _uint(lanes, "lane count"),
        *flat_c,
        *flat_p,
    )


def _decode_coin_commitments(group: Group, parts: list[bytes]):
    from repro.core.messages import CoinCommitmentMessage

    if len(parts) < 3:
        raise EncodingError("coin message needs prover id and shape")
    prover_id = _decode_str(parts[0], "prover id")
    rows = _decode_uint(parts[1], "row count", limit=1 << 24)
    lanes = _decode_uint(parts[2], "lane count", limit=1 << 16)
    total = rows * lanes
    if rows < 1 or lanes < 1 or len(parts) != 3 + 2 * total:
        raise EncodingError(
            f"coin message has {len(parts)} fields, expected {3 + 2 * total}"
        )
    flat_c = [Commitment(group.from_bytes(raw)) for raw in parts[3 : 3 + total]]
    flat_p = [decode_bit_proof(group, raw) for raw in parts[3 + total :]]
    return CoinCommitmentMessage(
        prover_id=prover_id,
        commitments=tuple(
            tuple(flat_c[j * lanes : (j + 1) * lanes]) for j in range(rows)
        ),
        proofs=tuple(tuple(flat_p[j * lanes : (j + 1) * lanes]) for j in range(rows)),
    )


def _encode_prover_output(message) -> bytes:
    if len(message.y) != len(message.z):
        raise EncodingError("prover output y/z length mismatch")
    return encode_length_prefixed(
        message.prover_id.encode(),
        _uint(len(message.y), "lane count"),
        *[_uint(v, "y") for v in message.y],
        *[_uint(v, "z") for v in message.z],
    )


def _decode_prover_output(group: Group, parts: list[bytes]):
    from repro.core.messages import ProverOutputMessage

    if len(parts) < 2:
        raise EncodingError("prover output needs id and lane count")
    lanes = _decode_uint(parts[1], "lane count", limit=1 << 16)
    if lanes < 1 or len(parts) != 2 + 2 * lanes:
        raise EncodingError(
            f"prover output has {len(parts)} fields, expected {2 + 2 * lanes}"
        )
    values = [bytes_to_int(raw) for raw in parts[2:]]
    return ProverOutputMessage(
        prover_id=_decode_str(parts[0], "prover id"),
        y=tuple(values[:lanes]),
        z=tuple(values[lanes:]),
    )


def _encode_morra_commit(message) -> bytes:
    return encode_length_prefixed(message.sender.encode(), *message.digests)


def _decode_morra_commit(group: Group, parts: list[bytes]):
    from repro.core.messages import MorraCommitMessage

    if len(parts) < 2:
        raise EncodingError("morra commit needs sender and >= 1 digest")
    digests = parts[1:]
    if any(len(d) != 32 for d in digests):
        raise EncodingError("morra commitment digests must be 32 bytes")
    return MorraCommitMessage(sender=_decode_str(parts[0], "sender"), digests=tuple(digests))


def _encode_morra_reveal(message) -> bytes:
    return encode_length_prefixed(
        message.sender.encode(), *[_uint(v, "morra value") for v in message.values]
    )


def _decode_morra_reveal(group: Group, parts: list[bytes]):
    from repro.core.messages import MorraRevealMessage

    if len(parts) < 2:
        raise EncodingError("morra reveal needs sender and >= 1 value")
    return MorraRevealMessage(
        sender=_decode_str(parts[0], "sender"),
        values=tuple(bytes_to_int(raw) for raw in parts[1:]),
    )


def _encode_audit(audit) -> bytes:
    return encode_length_prefixed(
        encode_length_prefixed(
            *[
                encode_length_prefixed(cid.encode(), status.value.encode())
                for cid, status in audit.clients.items()
            ]
        ),
        encode_length_prefixed(
            *[
                encode_length_prefixed(pid.encode(), status.value.encode())
                for pid, status in audit.provers.items()
            ]
        ),
        encode_length_prefixed(*[note.encode() for note in audit.notes]),
    )


def _decode_audit(data: bytes):
    from repro.core.messages import AuditRecord, ClientStatus, ProverStatus

    parts = decode_length_prefixed(data)
    if len(parts) != 3:
        raise EncodingError("audit record needs clients, provers and notes")

    def entries(raw: bytes, status_enum):
        out = {}
        for entry in decode_length_prefixed(raw):
            fields = decode_length_prefixed(entry)
            if len(fields) != 2:
                raise EncodingError("audit entry needs (party, status)")
            try:
                out[_decode_str(fields[0], "party")] = status_enum(
                    _decode_str(fields[1], "status")
                )
            except ValueError as exc:
                raise EncodingError(f"unknown audit status: {exc}") from exc
        return out

    audit = AuditRecord(
        clients=entries(parts[0], ClientStatus),
        provers=entries(parts[1], ProverStatus),
    )
    audit.notes = [
        _decode_str(note, "audit note") for note in decode_length_prefixed(parts[2])
    ]
    return audit


def _encode_release(message) -> bytes:
    lanes = len(message.raw)
    if len(message.estimate) != lanes:
        raise EncodingError("release raw/estimate length mismatch")
    return encode_length_prefixed(
        _uint(lanes, "lane count"),
        *[_uint(v, "raw") for v in message.raw],
        *[_float_bytes(v) for v in message.estimate],
        b"\x01" if message.accepted else b"\x00",
        _float_bytes(message.epsilon),
        _float_bytes(message.delta),
        _encode_audit(message.audit),
    )


def _decode_release(group: Group, parts: list[bytes]):
    from repro.core.messages import Release

    if len(parts) < 1:
        raise EncodingError("release needs a lane count")
    lanes = _decode_uint(parts[0], "lane count", limit=1 << 16)
    expected = 1 + 2 * lanes + 4
    if lanes < 1 or len(parts) != expected:
        raise EncodingError(f"release has {len(parts)} fields, expected {expected}")
    raw = tuple(bytes_to_int(p) for p in parts[1 : 1 + lanes])
    estimate = tuple(
        _decode_float(p, "estimate") for p in parts[1 + lanes : 1 + 2 * lanes]
    )
    accepted_raw = parts[1 + 2 * lanes]
    if accepted_raw not in (b"\x00", b"\x01"):
        raise EncodingError("release accepted flag must be one byte 0/1")
    return Release(
        raw=raw,
        estimate=estimate,
        accepted=accepted_raw == b"\x01",
        audit=_decode_audit(parts[-1]),
        epsilon=_decode_float(parts[2 + 2 * lanes], "epsilon"),
        delta=_decode_float(parts[3 + 2 * lanes], "delta"),
    )


def _registry() -> tuple[dict, dict]:
    global _REGISTRY, _TAG_BY_TYPE
    if _REGISTRY is None:
        from repro.core import messages as m

        _REGISTRY = {
            b"client-broadcast": (
                m.ClientBroadcast,
                _encode_client_broadcast,
                _decode_client_broadcast,
            ),
            b"client-share": (
                m.ClientShareMessage,
                _encode_client_share,
                _decode_client_share,
            ),
            b"coin-commitments": (
                m.CoinCommitmentMessage,
                _encode_coin_commitments,
                _decode_coin_commitments,
            ),
            b"prover-output": (
                m.ProverOutputMessage,
                _encode_prover_output,
                _decode_prover_output,
            ),
            b"morra-commit": (
                m.MorraCommitMessage,
                _encode_morra_commit,
                _decode_morra_commit,
            ),
            b"morra-reveal": (
                m.MorraRevealMessage,
                _encode_morra_reveal,
                _decode_morra_reveal,
            ),
            b"release": (m.Release, _encode_release, _decode_release),
        }
        _TAG_BY_TYPE = {cls: tag for tag, (cls, _, _) in _REGISTRY.items()}
    return _REGISTRY, _TAG_BY_TYPE


def encode_message(message) -> bytes:
    """Encode any registered protocol message as a tagged, versioned frame."""
    registry, tags = _registry()
    tag = tags.get(type(message))
    if tag is None:
        raise EncodingError(f"no wire codec for {type(message).__name__}")
    _, encode_body, _ = registry[tag]
    return encode_length_prefixed(WIRE_MAGIC, tag, encode_body(message))


# Coin-transcript fast-forward ------------------------------------------------
#
# A chunked coin stream's evolving Fiat–Shamir transcript is a
# deterministic function of the public messages alone — absorb pp, the
# commitment and both announcements, extract (and discard) the
# challenge; no group exponentiations.  These helpers replay that
# evolution without verifying, which is what lets chunk workers and
# shard peers (repro.net.workers / repro.net.shard) hold the correct
# transcript state for chunks they do not check.  They live here, next
# to the coin-message codec, because the byte-level variant mirrors its
# frame layout — a format change must touch both together.


def advance_coin_transcript(params, transcript, message) -> None:
    """Fast-forward a coin transcript over one message without verifying.

    Mirrors exactly the transcript mutations of
    :func:`repro.crypto.sigma.or_bit.verify_bit` — bind pp and the
    commitment, absorb both announcements, extract (and discard) the
    challenge — so a later chunk's verification starts from the identical
    state, at pure hashing cost.
    """
    pedersen = params.pedersen
    pp = pedersen.transcript_bytes()
    for c_row, p_row in zip(message.commitments, message.proofs):
        for commitment, proof in zip(c_row, p_row):
            transcript.append_bytes("pp", pp)
            transcript.append_element("bit-commitment", commitment.element)
            transcript.append_element("d0", proof.d0)
            transcript.append_element("d1", proof.d1)
            transcript.challenge_scalar("or-challenge", pedersen.q)


def advance_coin_transcript_frame(params, transcript, frame: bytes) -> None:
    """Fast-forward over a *wire frame* without decoding group elements.

    The transcript absorbs element encodings verbatim, and the frame
    already carries each element's canonical bytes — so prefix chunks can
    be replayed by pure length-prefix parsing plus hashing, skipping the
    per-element membership exponentiations entirely.  This is what makes
    chunk workers cheap: the expensive validation runs exactly once, in
    the worker that owns the chunk.
    """
    outer = decode_length_prefixed(frame)
    if len(outer) != 3:
        raise EncodingError("not a wire frame")
    body = decode_length_prefixed(outer[2])
    if len(body) < 3:
        raise EncodingError("not a coin message frame")
    rows = int.from_bytes(body[1], "big")
    lanes = int.from_bytes(body[2], "big")
    total = rows * lanes
    if len(body) != 3 + 2 * total:
        raise EncodingError("coin message frame shape mismatch")
    pedersen = params.pedersen
    pp = pedersen.transcript_bytes()
    commitments = body[3 : 3 + total]
    proofs = body[3 + total :]
    for commitment_bytes, proof_frame in zip(commitments, proofs):
        proof_parts = decode_length_prefixed(proof_frame)
        if len(proof_parts) != 7:
            raise EncodingError("bit proof frame needs magic plus 6 fields")
        transcript.append_bytes("pp", pp)
        transcript.append_bytes("bit-commitment", commitment_bytes)
        transcript.append_bytes("d0", proof_parts[1])
        transcript.append_bytes("d1", proof_parts[2])
        transcript.challenge_scalar("or-challenge", pedersen.q)


# Encode-once fan-out cache ---------------------------------------------------
#
# A serving front-end ships the *same* message object to K servers or S
# shards (a client broadcast into every share-check RPC, a coin chunk to
# every shard), and the bus accounts its exact wire size on top — without
# a cache that is K + 1 identical full encodings.  Message types are
# frozen dataclasses, so caching by object identity is sound; weakref
# finalizers evict entries when the message dies, keeping the table
# bounded by the set of live messages.

_ENCODE_CACHE: dict[int, tuple] = {}


def encode_message_cached(message) -> bytes:
    """Like :func:`encode_message`, memoized per live message object.

    Byte-for-byte identical to :func:`encode_message` (the cache stores
    its output verbatim), so traffic accounting is unchanged — only the
    redundant re-encoding work disappears.  Unweakreferenceable payloads
    fall back to plain encoding.
    """
    key = id(message)
    entry = _ENCODE_CACHE.get(key)
    if entry is not None and entry[0]() is message:
        return entry[1]
    data = encode_message(message)
    try:
        ref = weakref.ref(message, lambda _ref, _key=key: _ENCODE_CACHE.pop(_key, None))
    except TypeError:  # pragma: no cover - all registry types support weakref
        return data
    _ENCODE_CACHE[key] = (ref, data)
    return data


def decode_message(group: Group, data: bytes):
    """Decode a frame produced by :func:`encode_message`.

    Raises :class:`EncodingError` (or :class:`NotOnGroupError` for bad
    group encodings) on anything malformed — a hostile frame can be
    rejected but never crash the decoder or smuggle in a non-element.
    """
    registry, _ = _registry()
    parts = decode_length_prefixed(data)
    if len(parts) != 3:
        raise EncodingError("wire frame needs (magic, tag, body)")
    if parts[0] != WIRE_MAGIC:
        raise EncodingError(f"bad wire magic (expected {WIRE_MAGIC!r})")
    entry = registry.get(parts[1])
    if entry is None:
        raise EncodingError(f"unknown wire tag {parts[1]!r}")
    _, _, decode_body = entry
    return decode_body(group, decode_length_prefixed(parts[2]))


def wire_size(message) -> int | None:
    """Exact encoded size of a registered message; None when unregistered.

    :mod:`repro.mpc.bus` uses this for traffic accounting so benchmark
    communication-cost numbers equal real wire bytes.
    """
    _, tags = _registry()
    if type(message) not in tags:
        return None
    # Reuse a fan-out-cached encoding when one exists, but never insert:
    # sizing must not pin a retained message's multi-KB frame for the
    # message's lifetime (buffered sessions keep every message queued).
    entry = _ENCODE_CACHE.get(id(message))
    if entry is not None and entry[0]() is message:
        return len(entry[1])
    return len(encode_message(message))
