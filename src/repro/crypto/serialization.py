"""Canonical byte serialization for proof artifacts.

A *public* verifier only makes sense if the protocol's messages can live
on a bulletin board: commitments, Σ-proofs and prover outputs must have
canonical byte encodings that any third party can parse and re-verify.
This module provides exactly that — a small, versioned, length-prefixed
wire format over the primitives' own canonical encodings:

* scalars: fixed-width big-endian at the group's scalar width,
* group elements / commitments: the backend's canonical encoding,
* structures: tagged, length-prefixed concatenation (no ambiguity).

Decoding validates group membership (via ``Group.from_bytes``), so a
deserialized proof is already structurally sound; cryptographic
verification is still the caller's job.
"""

from __future__ import annotations

from repro.crypto.group import Group
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.onehot import OneHotProof
from repro.crypto.sigma.opening_pok import OpeningProof
from repro.crypto.sigma.or_bit import BitProof
from repro.crypto.sigma.schnorr_pok import SchnorrProof
from repro.errors import EncodingError
from repro.utils.encoding import (
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)

__all__ = [
    "encode_commitment",
    "encode_commitments",
    "decode_commitment",
    "encode_bit_proof",
    "decode_bit_proof",
    "encode_one_hot_proof",
    "decode_one_hot_proof",
    "encode_schnorr_proof",
    "decode_schnorr_proof",
    "encode_opening_proof",
    "decode_opening_proof",
]

_MAGIC_BIT = b"repro.bitproof.v1"
_MAGIC_ONEHOT = b"repro.onehot.v1"
_MAGIC_SCHNORR = b"repro.schnorr.v1"
_MAGIC_OPENING = b"repro.opening.v1"


def _scalar(group: Group, value: int) -> bytes:
    return int_to_bytes(value % group.order, group.scalar_bytes)


def _expect_magic(parts: list[bytes], magic: bytes) -> list[bytes]:
    if not parts or parts[0] != magic:
        raise EncodingError(f"bad or missing magic (expected {magic!r})")
    return parts[1:]


# Commitments -----------------------------------------------------------------


def encode_commitment(commitment: Commitment) -> bytes:
    return commitment.element.to_bytes()


def encode_commitments(commitments) -> list[bytes]:
    """Encode many commitments, batching any coordinate normalization.

    Projective backends (P-256) pay a field inversion per ``to_bytes``;
    ``Group.normalize_many`` collapses a whole row of them into one
    Montgomery batch inversion before the per-element encodings.
    """
    elements = [c.element for c in commitments]
    if not elements:
        return []
    normalized = elements[0].group.normalize_many(elements)
    return [element.to_bytes() for element in normalized]


def decode_commitment(group: Group, data: bytes) -> Commitment:
    return Commitment(group.from_bytes(data))


# Bit (Σ-OR) proofs -----------------------------------------------------------


def encode_bit_proof(proof: BitProof) -> bytes:
    group = proof.d0.group
    return encode_length_prefixed(
        _MAGIC_BIT,
        proof.d0.to_bytes(),
        proof.d1.to_bytes(),
        _scalar(group, proof.e0),
        _scalar(group, proof.e1),
        _scalar(group, proof.v0),
        _scalar(group, proof.v1),
    )


def decode_bit_proof(group: Group, data: bytes) -> BitProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_BIT)
    if len(parts) != 6:
        raise EncodingError(f"bit proof needs 6 fields, got {len(parts)}")
    return BitProof(
        d0=group.from_bytes(parts[0]),
        d1=group.from_bytes(parts[1]),
        e0=int.from_bytes(parts[2], "big"),
        e1=int.from_bytes(parts[3], "big"),
        v0=int.from_bytes(parts[4], "big"),
        v1=int.from_bytes(parts[5], "big"),
    )


# One-hot proofs ---------------------------------------------------------------


def encode_one_hot_proof(proof: OneHotProof) -> bytes:
    group = proof.bit_proofs[0].d0.group
    return encode_length_prefixed(
        _MAGIC_ONEHOT,
        _scalar(group, proof.randomness_sum),
        *[encode_bit_proof(p) for p in proof.bit_proofs],
    )


def decode_one_hot_proof(group: Group, data: bytes) -> OneHotProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_ONEHOT)
    if len(parts) < 2:
        raise EncodingError("one-hot proof needs randomness plus >= 1 bit proof")
    randomness_sum = int.from_bytes(parts[0], "big")
    bit_proofs = tuple(decode_bit_proof(group, raw) for raw in parts[1:])
    return OneHotProof(bit_proofs, randomness_sum)


# Schnorr proofs ----------------------------------------------------------------


def encode_schnorr_proof(proof: SchnorrProof) -> bytes:
    group = proof.announcement.group
    return encode_length_prefixed(
        _MAGIC_SCHNORR,
        proof.announcement.to_bytes(),
        _scalar(group, proof.response),
    )


def decode_schnorr_proof(group: Group, data: bytes) -> SchnorrProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_SCHNORR)
    if len(parts) != 2:
        raise EncodingError("schnorr proof needs 2 fields")
    return SchnorrProof(
        announcement=group.from_bytes(parts[0]),
        response=int.from_bytes(parts[1], "big"),
    )


# Opening proofs -----------------------------------------------------------------


def encode_opening_proof(proof: OpeningProof) -> bytes:
    group = proof.announcement.group
    return encode_length_prefixed(
        _MAGIC_OPENING,
        proof.announcement.to_bytes(),
        _scalar(group, proof.response_value),
        _scalar(group, proof.response_randomness),
    )


def decode_opening_proof(group: Group, data: bytes) -> OpeningProof:
    parts = _expect_magic(decode_length_prefixed(data), _MAGIC_OPENING)
    if len(parts) != 3:
        raise EncodingError("opening proof needs 3 fields")
    return OpeningProof(
        announcement=group.from_bytes(parts[0]),
        response_value=int.from_bytes(parts[1], "big"),
        response_randomness=int.from_bytes(parts[2], "big"),
    )
