"""Fiat–Shamir transcripts.

All non-interactive proofs in this library (the Σ-OR proofs of Appendix C,
made non-interactive "using the Fiat-Shamir transform ... secure in the
random oracle model") derive their challenges from a :class:`Transcript` —
a running, domain-separated SHA-512 hash of every public message, in the
style of Merlin transcripts:

* every append is labelled and length-prefixed (no ambiguity / no
  extension-style collisions between differently-split messages),
* protocols are separated by an explicit domain label, so a proof produced
  for one statement or context can never verify in another,
* challenge extraction is itself labelled and chains into subsequent state,
  so multiple challenges from one transcript are independent.
"""

from __future__ import annotations

import hashlib

from repro.crypto.group import GroupElement
from repro.errors import ParameterError
from repro.utils.encoding import int_to_bytes

__all__ = ["Transcript"]


class Transcript:
    """A domain-separated running hash of protocol messages."""

    def __init__(self, domain: bytes | str) -> None:
        if isinstance(domain, str):
            domain = domain.encode()
        if not domain:
            raise ParameterError("transcript domain must be non-empty")
        self._state = hashlib.sha512(b"repro.transcript.v1")
        self._append_raw(b"domain", domain)

    def _append_raw(self, label: bytes, payload: bytes) -> None:
        self._state.update(len(label).to_bytes(4, "big"))
        self._state.update(label)
        self._state.update(len(payload).to_bytes(4, "big"))
        self._state.update(payload)

    # Appending ----------------------------------------------------------

    def append_bytes(self, label: str, payload: bytes) -> None:
        self._append_raw(label.encode(), payload)

    def append_int(self, label: str, value: int, width: int | None = None) -> None:
        self._append_raw(label.encode(), int_to_bytes(value, width))

    def append_element(self, label: str, element: GroupElement) -> None:
        self._append_raw(label.encode(), element.to_bytes())

    def append_elements(self, label: str, elements) -> None:
        for i, element in enumerate(elements):
            self._append_raw(f"{label}[{i}]".encode(), element.to_bytes())

    def append_str(self, label: str, text: str) -> None:
        self._append_raw(label.encode(), text.encode())

    # Challenge extraction -------------------------------------------------

    def challenge_bytes(self, label: str, n: int) -> bytes:
        """Extract ``n`` challenge bytes and fold them back into the state."""
        out = bytearray()
        counter = 0
        base = self._state.copy()
        base.update(b"challenge:" + label.encode())
        while len(out) < n:
            block = base.copy()
            block.update(counter.to_bytes(4, "big"))
            out += block.digest()
            counter += 1
        digest = bytes(out[:n])
        # Chain the extraction so later challenges depend on this one.
        self._append_raw(b"extracted:" + label.encode(), digest)
        return digest

    def challenge_scalar(self, label: str, modulus: int) -> int:
        """A challenge scalar statistically close to uniform on Z_modulus.

        Samples 128 bits beyond the modulus size before reducing, bounding
        the bias at 2^-128.
        """
        if modulus < 2:
            raise ParameterError("modulus must be at least 2")
        nbytes = (modulus.bit_length() + 7) // 8 + 16
        return int.from_bytes(self.challenge_bytes(label, nbytes), "big") % modulus

    def fork(self, label: str) -> "Transcript":
        """An independent sub-transcript (e.g. per parallel repetition)."""
        child = Transcript.__new__(Transcript)
        child._state = self._state.copy()
        child._append_raw(b"fork", label.encode())
        return child

    def clone(self) -> "Transcript":
        """An exact copy of the current state.

        Streamed verification snapshots the transcript before folding a
        chunk of proofs so a failed chunk can be replayed proof-by-proof
        (to name the cheater) from the identical starting state.
        """
        twin = Transcript.__new__(Transcript)
        twin._state = self._state.copy()
        return twin
