"""NIST P-256 (secp256r1) as a third interchangeable group backend.

The paper evaluates two Pedersen instantiations (finite-field Schnorr
group and Ristretto).  P-256 is the curve actually shipped in most TLS
stacks and HSMs, so a deployment of ΠBin would plausibly sit on it; this
backend demonstrates the commitment/Σ-proof layers are genuinely
backend-agnostic — prime-order short-Weierstrass arithmetic with a
completely different coordinate system and encoding.

Implementation: Jacobian projective coordinates (add/double without
inversions), SEC1 compressed point encoding (33 bytes), hash-to-curve by
try-and-increment (fine for deriving the fixed Pedersen ``h``; not
constant-time, like the rest of this research codebase).

The curve group itself has prime order n, so no cofactor handling is
needed (unlike edwards25519, which is why Ristretto exists).
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.group import Group, GroupElement
from repro.errors import EncodingError, NotOnGroupError
from repro.utils.numth import batch_inverse, legendre_symbol, sqrt_mod

__all__ = ["P256Group", "P256Point"]

# NIST P-256 domain parameters.
_P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
_A = _P - 3
_B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
_N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
_GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
_GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


class P256Point(GroupElement):
    """A point in Jacobian coordinates (X : Y : Z); Z = 0 is infinity."""

    __slots__ = ("_group", "X", "Y", "Z")

    def __init__(self, group: "P256Group", X: int, Y: int, Z: int) -> None:
        self._group = group
        self.X = X % _P
        self.Y = Y % _P
        self.Z = Z % _P

    @property
    def group(self) -> "P256Group":
        return self._group

    def is_infinity(self) -> bool:
        return self.Z == 0

    def affine(self) -> tuple[int, int]:
        """(x, y) affine coordinates; raises on the point at infinity."""
        if self.is_infinity():
            raise NotOnGroupError("point at infinity has no affine form")
        z_inv = pow(self.Z, -1, _P)
        z2 = z_inv * z_inv % _P
        return self.X * z2 % _P, self.Y * z2 % _P * z_inv % _P

    # Jacobian arithmetic ---------------------------------------------------

    def double(self) -> "P256Point":
        if self.is_infinity() or self.Y == 0:
            return self._group.identity()
        X1, Y1, Z1 = self.X, self.Y, self.Z
        # a = -3 special case: M = 3(X - Z^2)(X + Z^2).
        z2 = Z1 * Z1 % _P
        m = 3 * ((X1 - z2) % _P) * ((X1 + z2) % _P) % _P
        y2 = Y1 * Y1 % _P
        s = 4 * X1 * y2 % _P
        x3 = (m * m - 2 * s) % _P
        y3 = (m * (s - x3) - 8 * y2 * y2) % _P
        z3 = 2 * Y1 * Z1 % _P
        return P256Point(self._group, x3, y3, z3)

    def combine(self, other: GroupElement) -> "P256Point":
        if not isinstance(other, P256Point):
            raise NotOnGroupError("cannot combine elements of different groups")
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        X1, Y1, Z1 = self.X, self.Y, self.Z
        X2, Y2, Z2 = other.X, other.Y, other.Z
        z1z1 = Z1 * Z1 % _P
        z2z2 = Z2 * Z2 % _P
        u1 = X1 * z2z2 % _P
        u2 = X2 * z1z1 % _P
        s1 = Y1 * Z2 % _P * z2z2 % _P
        s2 = Y2 * Z1 % _P * z1z1 % _P
        if u1 == u2:
            if s1 != s2:
                return self._group.identity()
            return self.double()
        h = (u2 - u1) % _P
        r = (s2 - s1) % _P
        h2 = h * h % _P
        h3 = h2 * h % _P
        v = u1 * h2 % _P
        x3 = (r * r - h3 - 2 * v) % _P
        y3 = (r * (v - x3) - s1 * h3) % _P
        z3 = h * Z1 % _P * Z2 % _P
        return P256Point(self._group, x3, y3, z3)

    def scale(self, exponent: int) -> "P256Point":
        e = exponent % _N
        if e == 0 or self.is_infinity():
            return self._group.identity()
        # 4-bit window, MSB first.
        table = [self._group.identity(), self]
        for _ in range(2, 16):
            table.append(table[-1].combine(self))
        acc = self._group.identity()
        started = False
        for shift in range((e.bit_length() + 3) // 4 * 4 - 4, -1, -4):
            if started:
                acc = acc.double().double().double().double()
            digit = (e >> shift) & 0xF
            if digit:
                acc = acc.combine(table[digit])
                started = True
        return acc

    def invert(self) -> "P256Point":
        if self.is_infinity():
            return self
        return P256Point(self._group, self.X, (-self.Y) % _P, self.Z)

    # Encoding ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """SEC1 compressed: 0x02/0x03 || x (infinity: 33 zero bytes)."""
        if self.is_infinity():
            return bytes(33)
        x, y = self.affine()
        return bytes([2 + (y & 1)]) + x.to_bytes(32, "big")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, P256Point):
            return NotImplemented
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        # X1 Z2^2 == X2 Z1^2 and Y1 Z2^3 == Y2 Z1^3.
        z1z1 = self.Z * self.Z % _P
        z2z2 = other.Z * other.Z % _P
        if self.X * z2z2 % _P != other.X * z1z1 % _P:
            return False
        return (
            self.Y * z2z2 % _P * other.Z % _P
            == other.Y * z1z1 % _P * self.Z % _P
        )

    def __hash__(self) -> int:
        return hash((id(self._group), self.to_bytes()))


class _P256Kernel:
    """Raw multiexp kernel: Jacobian (X, Y, Z) tuples, None for infinity.

    Inlines the same add/double formulas as :class:`P256Point` over plain
    tuples; the whole product stays in Jacobian coordinates and nothing
    is inverted until the final result is boxed (and even then only on
    serialization, where :meth:`P256Group.normalize_many` batches the
    inversions Montgomery-style).
    """

    __slots__ = ("_group", "identity_raw")

    native_pow = False  # scalar mult is a Python double-and-add
    op_overhead = 0.1  # Jacobian adds are ~12 field muls; bookkeeping is noise
    neg_muls = 0.05  # negation flips the Jacobian y — effectively free

    def __init__(self, group: "P256Group") -> None:
        self._group = group
        self.identity_raw = None

    @staticmethod
    def to_raw(point: "P256Point") -> tuple[int, int, int] | None:
        if point.Z == 0:
            return None
        return (point.X, point.Y, point.Z)

    def from_raw(self, raw: tuple[int, int, int] | None) -> "P256Point":
        if raw is None:
            return self._group.identity()
        return P256Point(self._group, *raw)

    @staticmethod
    def sqr(a: tuple | None) -> tuple | None:
        if a is None:
            return None
        X1, Y1, Z1 = a
        if Y1 == 0:
            return None
        z2 = Z1 * Z1 % _P
        m = 3 * ((X1 - z2) % _P) * ((X1 + z2) % _P) % _P
        y2 = Y1 * Y1 % _P
        s = 4 * X1 * y2 % _P
        x3 = (m * m - 2 * s) % _P
        y3 = (m * (s - x3) - 8 * y2 * y2) % _P
        z3 = 2 * Y1 * Z1 % _P
        return (x3, y3, z3)

    def mul(self, a: tuple | None, b: tuple | None) -> tuple | None:
        if a is None:
            return b
        if b is None:
            return a
        X1, Y1, Z1 = a
        X2, Y2, Z2 = b
        z1z1 = Z1 * Z1 % _P
        z2z2 = Z2 * Z2 % _P
        u1 = X1 * z2z2 % _P
        u2 = X2 * z1z1 % _P
        s1 = Y1 * Z2 % _P * z2z2 % _P
        s2 = Y2 * Z1 % _P * z1z1 % _P
        if u1 == u2:
            if s1 != s2:
                return None
            return self.sqr(a)
        h = (u2 - u1) % _P
        r = (s2 - s1) % _P
        h2 = h * h % _P
        h3 = h2 * h % _P
        v = u1 * h2 % _P
        x3 = (r * r - h3 - 2 * v) % _P
        y3 = (r * (v - x3) - s1 * h3) % _P
        z3 = h * Z1 % _P * Z2 % _P
        return (x3, y3, z3)

    @staticmethod
    def neg_many(raws: list) -> list:
        return [
            None if raw is None else (raw[0], (-raw[1]) % _P, raw[2]) for raw in raws
        ]


class P256Group(Group):
    """The prime-order group of NIST P-256 points."""

    _NAME = "p256"

    def __init__(self) -> None:
        self._identity = P256Point(self, 1, 1, 0)
        self._generator = P256Point(self, _GX, _GY, 1)
        self._kernel: _P256Kernel | None = None

    @staticmethod
    @lru_cache(maxsize=1)
    def instance() -> "P256Group":
        return P256Group()

    @property
    def order(self) -> int:
        return _N

    @property
    def name(self) -> str:
        return self._NAME

    def identity(self) -> P256Point:
        return self._identity

    def generator(self) -> P256Point:
        return self._generator

    @staticmethod
    def _on_curve(x: int, y: int) -> bool:
        return (y * y - (x * x * x + _A * x + _B)) % _P == 0

    def from_bytes(self, data: bytes) -> P256Point:
        if len(data) != 33:
            raise EncodingError(f"P-256 compressed points are 33 bytes, got {len(data)}")
        if data == bytes(33):
            return self._identity
        sign = data[0]
        if sign not in (2, 3):
            raise EncodingError("bad SEC1 compression tag")
        x = int.from_bytes(data[1:], "big")
        if x >= _P:
            raise NotOnGroupError("x-coordinate out of field range")
        rhs = (x * x % _P * x + _A * x + _B) % _P
        if legendre_symbol(rhs, _P) == -1:
            raise NotOnGroupError("x-coordinate not on the curve")
        y = sqrt_mod(rhs, _P)
        if (y & 1) != (sign & 1):
            y = (-y) % _P
        return P256Point(self, x, y, 1)

    def hash_to_group(self, label: bytes) -> P256Point:
        """Try-and-increment: hash to x-candidates until one is on-curve.

        Expected two attempts; the resulting point's discrete log is
        unknown (the x-coordinate is a hash output).
        """
        import hashlib

        counter = 0
        while True:
            digest = hashlib.sha512(
                b"repro.p256.h2g|" + label + counter.to_bytes(4, "big")
            ).digest()
            x = int.from_bytes(digest[:32], "big") % _P
            rhs = (x * x % _P * x + _A * x + _B) % _P
            if legendre_symbol(rhs, _P) == 1:
                y = sqrt_mod(rhs, _P)
                if digest[32] & 1:
                    y = (-y) % _P
                return P256Point(self, x, y, 1)
            counter += 1

    def multiexp_kernel(self) -> _P256Kernel:
        """Jacobian-tuple kernel consumed by :mod:`repro.crypto.multiexp`."""
        if self._kernel is None:
            self._kernel = _P256Kernel(self)
        return self._kernel

    def normalize_many(self, elements) -> list[P256Point]:
        """Batch-normalize points to Z = 1 with one modular inversion.

        Serialization (``to_bytes``) needs affine coordinates, which costs
        an inversion per point when done one at a time; Montgomery batch
        inversion turns a bulletin-board's worth of encodings into one
        ``pow(·, -1, p)`` plus three multiplications per point.
        """
        points = list(elements)
        finite = [pt for pt in points if not pt.is_infinity() and pt.Z != 1]
        if not finite:
            return points
        inverses = dict(
            zip(
                (id(pt) for pt in finite),
                batch_inverse([pt.Z for pt in finite], _P),
            )
        )
        out = []
        for pt in points:
            z_inv = inverses.get(id(pt))
            if z_inv is None:
                out.append(pt)
                continue
            z2 = z_inv * z_inv % _P
            out.append(P256Point(self, pt.X * z2 % _P, pt.Y * z2 % _P * z_inv % _P, 1))
        return out
