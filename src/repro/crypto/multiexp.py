"""Tiered multi-exponentiation engine.

The verifier's Line 13 check in ΠBin is one big product
``prod(c_i) * prod(ĉ'_j) == Com(y, z)`` — a multi-exponentiation once the
commitments are unwound — and Σ-proof batch verification is a random
linear combination of many (base, exponent) pairs: at paper scale
(nb = 262,144 coins per prover) a single batch contains hundreds of
thousands of terms.  No one algorithm is right across that range, so
:func:`multi_exponentiation` picks between three tiers:

``naive``
    Independent ``pow`` per pair.  Optimal for n ≤ 2 on short exponents:
    there is no shared work to exploit and the per-call constant is the
    smallest.  (For 2048-bit groups the shared square chain already wins
    at n = 2 — the selector is cost-model driven, not a fixed cutoff.)

``straus``
    Straus interleaving with width-w NAF recoding and odd-multiple
    tables: one shared square chain for all bases; each base contributes
    a table of 2^(w-2) odd multiples and touches the accumulator only on
    its (sparse, density 1/(w+1)) nonzero signed digits.  Table
    negations cost nothing on the curve backends (negate a coordinate)
    and one Montgomery batch inversion on the Schnorr backend.  Best for
    small-to-medium n where per-base tables still amortize.

``pippenger``
    Pippenger's bucket method: per c-bit window, throw each base into the
    bucket of its digit (one multiplication per base per window — no
    per-base tables at all), then fold the buckets with a running sum.
    Two digit decompositions exist side by side:

    * **unsigned** — digits in [0, 2^c); 2^c − 1 buckets per window;
      cost ≈ ceil(b/c)·(n + 2^(c+1)) multiplications.
    * **signed** (2^c-ary NAF) — digits in [−2^(c−1), 2^(c−1)), realized
      by adding the constant offset H = Σ_w 2^(c−1)·2^(cw) to every
      exponent once and subtracting 2^(c−1) from each extracted digit
      (no per-window carry propagation).  Buckets are shared between ±d
      (a negative digit files the *negated* base, from one up-front
      ``neg_many`` pass), so each window needs only 2^(c−1) buckets —
      half the fold — which lets c grow by ~1 and cuts the window count:
      cost ≈ (ceil(b/c)+1)·(n + 2^c) + neg·n.

    The ``neg`` term is the whole story of which variant wins.  On the
    curve backends negation is a coordinate flip (neg ≈ 0) and signed
    digits are a measured ~1.1–1.2× at n ≥ 1024.  On the Schnorr integer
    backends "negation" is a modular inversion — 3 multiplications per
    base even with Montgomery batching — which almost exactly cancels
    the saved windows (Δwindows·n ≈ 3n multiplications), so unsigned
    buckets stay faster and the selector keeps them.  The kernel hint
    ``neg_muls`` (multiplications per negation) feeds this decision.

Selection is automatic from the cost model in :func:`select_algorithm`,
calibrated in units of one group multiplication with three backend hints
from the kernel: whether single exponentiation is CPython's C ``pow``
(≈ bits multiplication-units per call — measured 37 µs ≈ 123 modmuls on
p128-sim), how expensive Python loop bookkeeping is relative to one
group op, and the negation cost above.  When a measured
``BENCH_multiexp.json`` is present (repo root, cwd or
``$REPRO_BENCH_DIR``), per-group crossovers and Straus window widths are
*auto-tuned from its rows* instead of the hand-picked constants — see
:func:`_calibration`; with no file the constants below apply.  Measured
crossover points (CPython, full-width exponents; see
``benchmarks/bench_multiexp.py`` and the checked-in
``BENCH_multiexp.json``):

* p128-sim — naive ≤ n ≈ 4, straus n ≈ 5–12, pippenger from n ≈ 16;
  at n = 256 pippenger is ~3.5× naive and ~3× straus, at n = 4096 ~7×
  naive (and the batched-verification pipeline built on it verifies
  4096 Σ-OR proofs ~7× faster than the sequential verifier);
* modp-2048 — one C ``pow`` already costs ~2047 Python modmuls' worth,
  so straus wins from n = 2 (1.6×) and stays ahead to n ≈ 1000 where
  pippenger takes over;
* ristretto255 / P-256 — no native ``pow``, so straus wins from n = 2
  and, with curve ops dwarfing bookkeeping, holds until n ≈ 256.

The engine is backend-agnostic but *not* object-per-operation: backends
may expose a :meth:`~repro.crypto.group.Group.multiexp_kernel` returning
a raw-representation kernel (ints mod p for Schnorr groups, extended
Edwards coordinates for ristretto255, Jacobian coordinates for P-256).
All accumulation happens on raw values — points stay in
extended/Jacobian coordinates across the whole product, and nothing is
normalized until the single final result is converted back to a
``GroupElement`` (serialization-time normalization of *many* points is
batched separately via ``Group.normalize_many``).  Groups without a
kernel fall back to a generic kernel over ``GroupElement`` objects.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

from repro.crypto.group import Group, GroupElement
from repro.errors import ParameterError

__all__ = [
    "multi_exponentiation",
    "select_algorithm",
    "kernel_for",
    "FixedBaseTable",
    "GenericKernel",
    "dual_power",
]

# Straus' per-base wNAF window width, by max exponent bit length — the
# fallback when no measured calibration (BENCH_multiexp.json) is found.
_STRAUS_WINDOWS = ((64, 3), (256, 4), (1 << 30, 5))


class GenericKernel:
    """Fallback raw-operation kernel over plain ``GroupElement`` objects.

    Backends with cheaper internal representations provide their own
    kernel with the same interface (see ``SchnorrGroup.multiexp_kernel``)
    so the engine's inner loops avoid per-operation object allocation:

    * ``identity_raw`` — the raw identity value,
    * ``to_raw`` / ``from_raw`` — convert to/from ``GroupElement``,
    * ``mul`` / ``sqr`` — group operation / squaring on raw values,
    * ``neg_many`` — invert a list of raw values (batched where the
      backend can, e.g. Montgomery batch inversion mod p),
    * ``native_pow`` / ``op_overhead`` — cost-model hints for
      :func:`select_algorithm` (is a single ``**`` a C-speed ``pow``, and
      how expensive is Python bookkeeping relative to one group op).
    """

    __slots__ = ("identity_raw",)

    native_pow = False
    op_overhead = 0.1
    # Cost of one negation in group-multiplication units.  Generic
    # backends go through GroupElement.invert, which may be a full
    # modular inversion — keep signed buckets off unless a kernel says
    # negation is cheap (curves: ~0; Schnorr ints: ~3 via batching).
    neg_muls = 8.0

    def __init__(self, group: Group) -> None:
        self.identity_raw = group.identity()

    @staticmethod
    def to_raw(element: GroupElement) -> GroupElement:
        return element

    @staticmethod
    def from_raw(raw: GroupElement) -> GroupElement:
        return raw

    @staticmethod
    def mul(a: GroupElement, b: GroupElement) -> GroupElement:
        return a.combine(b)

    @staticmethod
    def sqr(a: GroupElement) -> GroupElement:
        return a.combine(a)

    @staticmethod
    def neg_many(raws: list) -> list:
        return [raw.invert() for raw in raws]


def kernel_for(group: Group):
    """The group's raw-operation kernel (cached generic fallback if none)."""
    kernel = group.multiexp_kernel()
    if kernel is None:
        kernel = getattr(group, "_generic_kernel", None)
        if kernel is None:
            kernel = GenericKernel(group)
            group._generic_kernel = kernel
    return kernel


# ---------------------------------------------------------------------------
# Cost model and tier selection
# ---------------------------------------------------------------------------
#
# Costs are estimated in units of one group multiplication.  Two backend
# facts skew the comparison and are supplied by the kernel:
#
# * ``native_pow`` — Schnorr backends dispatch single exponentiations to
#   CPython's C ``pow`` (≈ ``bits`` multiplication-units per call), which
#   makes the naive tier cheap; curve backends run a Python double-and-add
#   (≈ 1.3·bits units), which does not.
# * ``op_overhead`` — Python loop bookkeeping (dict lookups, tuple
#   unpacking) costs a roughly fixed ~0.5 µs per table hit, which is
#   material when a multiplication is a 128-bit modmul (~0.3 µs) and
#   noise when it is a 2048-bit modmul or a curve addition (5–10 µs).


def _straus_cost(n: int, bits: int, window: int, overhead: float) -> float:
    tables = n * ((1 << (window - 2)) + 1)
    hits = n * (bits / (window + 1)) * (1.0 + 1.5 * overhead)
    return 1.5 * bits + tables + hits


def _pippenger_cost(
    n: int, bits: int, c: int, *, signed: bool = False, neg_muls: float = 0.0
) -> float:
    """Modeled multiplications for one bucket-method run at window c.

    Unsigned: ceil(b/c) windows, 2^c − 1 buckets folded at ~2 muls each.
    Signed: one extra window (the digit-offset carry-out), half the
    buckets, plus ``neg_muls`` per base for the one-time negation pass.
    """
    if signed:
        nwin = -(-bits // c) + 1
        return nwin * (n + (1 << c) + 2) + bits + (neg_muls + 0.3) * n
    nwin = -(-bits // c)
    return nwin * (n + (1 << (c + 1)) + 2) + bits


def _pippenger_window(
    n: int, bits: int, *, signed: bool = False, neg_muls: float = 0.0
) -> int:
    best_c, best_cost = 1, float("inf")
    for c in range(1 + (1 if signed else 0), 22):
        cost = _pippenger_cost(n, bits, c, signed=signed, neg_muls=neg_muls)
        if cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def _pippenger_variant(n: int, bits: int, neg_muls: float) -> tuple[str, float]:
    """The cheaper bucket decomposition for this (n, bits, negation cost).

    Returns ("pippenger-signed" | "pippenger-unsigned", modeled cost).
    Curve kernels (neg_muls ≈ 0) get signed digits from medium n; the
    Schnorr integer kernels (neg_muls ≈ 3) keep unsigned buckets — the
    batched-inversion negation eats the saved windows.
    """
    unsigned = _pippenger_cost(n, bits, _pippenger_window(n, bits))
    signed = _pippenger_cost(
        n,
        bits,
        _pippenger_window(n, bits, signed=True, neg_muls=neg_muls),
        signed=True,
        neg_muls=neg_muls,
    )
    if signed < unsigned:
        return "pippenger-signed", signed
    return "pippenger-unsigned", unsigned


def _straus_window(bits: int, group_name: str | None = None) -> int:
    windows = _calibration().get(group_name, {}).get("straus_windows") if group_name else None
    if windows:
        # Measured best width for the nearest calibrated bit length.
        best = min(windows, key=lambda entry: abs(entry[0] - bits))
        if 0.5 <= best[0] / max(bits, 1) <= 2.0:
            return best[1]
    for limit, window in _STRAUS_WINDOWS:
        if bits <= limit:
            return window
    return _STRAUS_WINDOWS[-1][1]  # pragma: no cover - table covers all bits


# Measured calibration (auto-tuning) ----------------------------------------
#
# When a BENCH_multiexp.json produced by ``python -m repro multiexp`` (or
# ``benchmarks/bench_multiexp.py``) is on disk, its measured rows replace
# the hand-picked crossover thresholds and Straus window widths for the
# groups it covers.  The loader is deliberately forgiving: a missing,
# stale or malformed file silently falls back to the cost-model
# constants, and rows are only trusted for exponent widths within 2× of
# the measured width.

_CALIBRATION: dict | None = None


def _calibration_path() -> Path | None:
    env = os.environ.get("REPRO_BENCH_DIR")
    candidates = [Path(env)] if env else []
    candidates.append(Path.cwd())
    candidates.append(Path(__file__).resolve().parents[3])
    for directory in candidates:
        path = directory / "BENCH_multiexp.json"
        try:
            if path.is_file():
                return path
        except OSError:  # pragma: no cover - unreadable mount
            continue
    return None


def _calibration() -> dict:
    """Per-group tuning derived from measured BENCH_multiexp.json rows.

    Returns ``{group_name: {"naive_max", "straus_max", "bits",
    "straus_windows"}}`` — empty when no usable file exists.  Set
    ``REPRO_MULTIEXP_CALIBRATION=0`` to disable (tests of the pure cost
    model do).
    """
    global _CALIBRATION
    if _CALIBRATION is not None:
        return _CALIBRATION
    if os.environ.get("REPRO_MULTIEXP_CALIBRATION", "1") == "0":
        _CALIBRATION = {}
        return _CALIBRATION
    path = _calibration_path()
    rows: list[dict] = []
    if path is not None:
        try:
            payload = json.loads(path.read_text())
            rows = payload.get("rows", [])
        except (OSError, ValueError):
            rows = []
    tuned: dict[str, dict] = {}
    for row in rows:
        group = row.get("group")
        bits = row.get("bits")
        if not isinstance(group, str) or not isinstance(bits, int):
            continue
        entry = tuned.setdefault(
            group,
            {
                "bits": bits,
                "naive_max": 0,
                "straus_max": 0,
                "measured_max": 0,
                "straus_windows": [],
                "has_crossover": False,
            },
        )
        if row.get("kind") == "straus-window":
            window, ms = row.get("window"), row.get("ms")
            if isinstance(window, int) and isinstance(ms, (int, float)):
                entry["straus_windows"].append((bits, window, ms))
            continue
        n = row.get("n")
        timings = {
            tier: row.get(f"{tier}_ms") for tier in ("naive", "straus", "pippenger")
        }
        if not isinstance(n, int) or not all(
            isinstance(ms, (int, float)) for ms in timings.values()
        ):
            continue
        entry["has_crossover"] = True
        entry["measured_max"] = max(entry["measured_max"], n)
        if timings["naive"] <= min(timings["straus"], timings["pippenger"]):
            entry["naive_max"] = max(entry["naive_max"], n)
        if timings["straus"] < timings["pippenger"]:
            entry["straus_max"] = max(entry["straus_max"], n)
    for entry in tuned.values():
        # Best measured window per calibrated bit length.
        best: dict[int, tuple[int, float]] = {}
        for bits, window, ms in entry["straus_windows"]:
            held = best.get(bits)
            if held is None or ms < held[1]:
                best[bits] = (window, ms)
        entry["straus_windows"] = [(bits, w) for bits, (w, _) in sorted(best.items())]
        entry["straus_max"] = max(entry["straus_max"], entry["naive_max"])
    _CALIBRATION = tuned
    return _CALIBRATION


def _reset_calibration() -> None:
    """Drop the cached calibration (tests poke the environment)."""
    global _CALIBRATION
    _CALIBRATION = None


def select_algorithm(
    n: int,
    bits: int,
    *,
    native_pow: bool = True,
    op_overhead: float = 1.3,
    neg_muls: float | None = None,
    group_name: str | None = None,
) -> str:
    """Pick the cheapest tier for ``n`` pairs of ``bits``-bit exponents.

    Returns ``"naive"``, ``"straus"`` or ``"pippenger"``.  The defaults
    describe the 128-bit Schnorr simulation groups; callers with a group
    in hand should let :func:`multi_exponentiation` pass the kernel's own
    ``native_pow`` / ``op_overhead`` / ``neg_muls`` hints.  When
    ``group_name`` names a group covered by the measured calibration
    (see :func:`_calibration`), the measured crossovers decide instead of
    the cost model.  Exposed so the benchmarks (and curious tests) can
    introspect the crossover points.
    """
    if n <= 1 or bits <= 1:
        return "naive"
    if group_name is not None:
        tuned = _calibration().get(group_name)
        if (
            tuned
            and tuned["has_crossover"]
            and 0.5 <= tuned["bits"] / max(bits, 1) <= 2.0
            # Interpolation only, never extrapolation: past the largest
            # measured batch size the rows say nothing about crossovers
            # (e.g. a sweep whose top row still has Straus winning must
            # not be read as "Pippenger from here on"), so the cost
            # model decides there.
            and n <= tuned["measured_max"]
        ):
            if n <= tuned["naive_max"]:
                return "naive"
            return "straus" if n <= tuned["straus_max"] else "pippenger"
    naive = n * bits * (1.0 if native_pow else 1.3)
    straus = _straus_cost(n, bits, _straus_window(bits), op_overhead)
    if neg_muls is None:
        pippenger = _pippenger_cost(n, bits, _pippenger_window(n, bits))
    else:
        pippenger = _pippenger_variant(n, bits, neg_muls)[1]
    best = min(naive, straus, pippenger)
    if best == naive:
        return "naive"
    return "straus" if straus <= pippenger else "pippenger"


# ---------------------------------------------------------------------------
# The three tiers (all operate on kernel-raw bases)
# ---------------------------------------------------------------------------


def _naive(group: Group, bases: list[GroupElement], exps: list[int]) -> GroupElement:
    acc = None
    for base, e in zip(bases, exps):
        term = base ** e
        acc = term if acc is None else acc * term
    return acc if acc is not None else group.identity()


def _wnaf_events(e: int, window: int) -> list[tuple[int, int]]:
    """Width-w NAF as sparse (position, signed odd digit) events.

    Digits lie in (-2^(w-1), 2^(w-1)) with density 1/(w+1); zero runs are
    skipped in one step via trailing-zero counting, so recoding costs one
    loop iteration per *nonzero* digit rather than one per bit.
    """
    full = 1 << window
    half = full >> 1
    mask = full - 1
    events = []
    pos = 0
    while e > 0:
        tz = (e & -e).bit_length() - 1
        e >>= tz
        pos += tz
        d = e & mask
        if d >= half:
            d -= full
        events.append((pos, d))
        # e - d is divisible by 2^w, so jump a whole window ahead.
        e = (e - d) >> window
        pos += window
    return events


def _straus(kernel, raw_bases: list, exps: list[int], window: int) -> object:
    mul, sqr = kernel.mul, kernel.sqr
    # Odd multiples 1, 3, ..., 2^(w-1)-1 of every base, plus (batched)
    # negations so signed digits are table lookups too.
    odd_counts = 1 << (window - 2)
    tables: list[list] = []
    flat: list = []
    for raw in raw_bases:
        row = [raw]
        if odd_counts > 1:
            sq = sqr(raw)
            for _ in range(1, odd_counts):
                row.append(mul(row[-1], sq))
        tables.append(row)
        flat.extend(row)
    flat_neg = kernel.neg_many(flat)

    # Bucket the table hits by bit position so the shared square chain
    # only touches bases that actually have a nonzero digit there.
    hits: dict[int, list] = {}
    top = 0
    for i, e in enumerate(exps):
        row_start = i * odd_counts
        for pos, d in _wnaf_events(e, window):
            entry = (
                tables[i][d >> 1] if d > 0 else flat_neg[row_start + ((-d) >> 1)]
            )
            hits.setdefault(pos, []).append(entry)
            if pos > top:
                top = pos

    acc = None
    for pos in range(top, -1, -1):
        if acc is not None:
            acc = sqr(acc)
        for entry in hits.get(pos, ()):
            acc = entry if acc is None else mul(acc, entry)
    return acc if acc is not None else kernel.identity_raw


def _fold_buckets(mul, buckets: list, top: int):
    """Σ d·B_d over buckets[1..top], highest digit first.

    running = Σ_{j>=d} B_j; adding the running sum once per step weights
    each bucket by its digit.
    """
    running = None
    window_sum = None
    for d in range(top, 0, -1):
        held = buckets[d]
        if held is not None:
            running = held if running is None else mul(running, held)
        if running is not None:
            window_sum = running if window_sum is None else mul(window_sum, running)
    return window_sum


def _pippenger(kernel, raw_bases: list, exps: list[int], bits: int) -> object:
    """Unsigned bucket decomposition: digits in [0, 2^c), 2^c − 1 buckets."""
    mul, sqr = kernel.mul, kernel.sqr
    n = len(raw_bases)
    c = _pippenger_window(n, bits)
    mask = (1 << c) - 1
    nwin = -(-bits // c)
    acc = None  # emptiness tracked by flag value, never by identity compare
    for win in range(nwin - 1, -1, -1):
        if acc is not None:
            for _ in range(c):
                acc = sqr(acc)
        shift = win * c
        buckets: list = [None] * (mask + 1)
        for raw, e in zip(raw_bases, exps):
            d = (e >> shift) & mask
            if d:
                held = buckets[d]
                buckets[d] = raw if held is None else mul(held, raw)
        window_sum = _fold_buckets(mul, buckets, mask)
        if window_sum is not None:
            acc = window_sum if acc is None else mul(acc, window_sum)
    return acc if acc is not None else kernel.identity_raw


def _pippenger_signed(kernel, raw_bases: list, exps: list[int], bits: int) -> object:
    """Signed-digit (2^c-ary NAF) buckets: digits in [−2^(c−1), 2^(c−1)).

    The recoding is offset-based, not carry-based: adding
    H = Σ_w 2^(c−1)·2^(cw) to every exponent once turns each unsigned
    digit d' of e + H into the signed digit d = d' − 2^(c−1) of e, so the
    per-window extraction is the same shift-and-mask as the unsigned loop
    plus one subtraction.  A negative digit files the *negated* base —
    one up-front ``neg_many`` pass, batched (free coordinate flips on the
    curve kernels, one Montgomery batch inversion on the Schnorr
    kernels) — into the bucket of |d|, halving the bucket count per
    window and shaving the window count via the wider c this affords.
    """
    mul, sqr = kernel.mul, kernel.sqr
    n = len(raw_bases)
    c = _pippenger_window(
        n, bits, signed=True, neg_muls=getattr(kernel, "neg_muls", 8.0)
    )
    half = 1 << (c - 1)
    mask = (1 << c) - 1
    nwin = -(-bits // c) + 1  # the offset's carry-out needs one top window
    offset = 0
    for _ in range(nwin):
        offset = (offset << c) | half
    shifted = [e + offset for e in exps]
    neg_bases = kernel.neg_many(list(raw_bases))
    acc = None
    for win in range(nwin - 1, -1, -1):
        if acc is not None:
            for _ in range(c):
                acc = sqr(acc)
        shift = win * c
        buckets: list = [None] * (half + 1)
        for raw, neg, e in zip(raw_bases, neg_bases, shifted):
            d = ((e >> shift) & mask) - half
            if d > 0:
                held = buckets[d]
                buckets[d] = raw if held is None else mul(held, raw)
            elif d:
                held = buckets[-d]
                buckets[-d] = neg if held is None else mul(held, neg)
        window_sum = _fold_buckets(mul, buckets, half)
        if window_sum is not None:
            acc = window_sum if acc is None else mul(acc, window_sum)
    return acc if acc is not None else kernel.identity_raw


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def multi_exponentiation(
    group: Group,
    bases: Sequence[GroupElement],
    exponents: Sequence[int],
    *,
    algorithm: str | None = None,
) -> GroupElement:
    """Compute ``prod(bases[i] ** exponents[i])`` with the cheapest tier.

    Exponents are reduced mod the group order (so negative exponents are
    fine) and zero-exponent pairs are dropped before selection.  Pass
    ``algorithm`` ("naive" / "straus" / "pippenger", or the explicit
    bucket variants "pippenger-signed" / "pippenger-unsigned") to
    override the automatic choice — used by the crossover benchmarks and
    the equivalence tests.  Plain "pippenger" still picks the cheaper
    digit decomposition for the backend's negation cost.
    """
    if len(bases) != len(exponents):
        raise ParameterError("bases and exponents length mismatch")
    if algorithm not in (
        None,
        "naive",
        "straus",
        "pippenger",
        "pippenger-signed",
        "pippenger-unsigned",
    ):
        raise ParameterError(f"unknown multiexp algorithm {algorithm!r}")
    order = group.order
    live_bases: list[GroupElement] = []
    live_exps: list[int] = []
    for base, e in zip(bases, exponents):
        e %= order
        if e:
            live_bases.append(base)
            live_exps.append(e)
    if not live_bases:
        return group.identity()

    bits = max(e.bit_length() for e in live_exps)
    kernel = kernel_for(group)
    neg_muls = getattr(kernel, "neg_muls", 8.0)
    if algorithm is None:
        algorithm = select_algorithm(
            len(live_bases),
            bits,
            native_pow=getattr(kernel, "native_pow", False),
            op_overhead=getattr(kernel, "op_overhead", 0.1),
            neg_muls=neg_muls,
            group_name=getattr(group, "name", None),
        )

    if algorithm == "naive":
        return _naive(group, live_bases, live_exps)
    group_name = getattr(group, "name", None)
    if algorithm == "pippenger":
        algorithm = _pippenger_variant(len(live_bases), bits, neg_muls)[0]
    raw_bases = [kernel.to_raw(base) for base in live_bases]
    if algorithm == "straus":
        raw = _straus(kernel, raw_bases, live_exps, _straus_window(bits, group_name))
    elif algorithm == "pippenger-signed":
        raw = _pippenger_signed(kernel, raw_bases, live_exps, bits)
    else:
        raw = _pippenger(kernel, raw_bases, live_exps, bits)
    return kernel.from_raw(raw)


# ---------------------------------------------------------------------------
# Fixed-base comb tables
# ---------------------------------------------------------------------------


class FixedBaseTable:
    """Precomputed powers of a fixed base for repeated exponentiation.

    ΠBin exponentiates the same two generators (g, h) thousands of times
    (once per private coin); a radix-2^w comb table amortizes that.
    """

    def __init__(self, base: GroupElement, *, window: int = 6) -> None:
        if window < 1 or window > 16:
            raise ParameterError("window out of range")
        self._group = base.group
        self._window = window
        order_bits = self._group.order.bit_length()
        self._nwindows = (order_bits + window - 1) // window
        self._tables: list[list[GroupElement]] = []
        self._raw_tables: list[list] | None = None
        self._raw_kernel = None
        current = base
        for _ in range(self._nwindows):
            row = [self._group.identity()]
            for _ in range(1, 1 << window):
                row.append(row[-1] * current)
            self._tables.append(row)
            current = row[-1] * current  # current ** (2^window)

    @property
    def base(self) -> GroupElement:
        return self._tables[0][1]

    @property
    def window(self) -> int:
        return self._window

    @property
    def nwindows(self) -> int:
        return self._nwindows

    def raw_tables(self, kernel) -> list[list]:
        """The comb rows converted once to ``kernel``-raw values.

        Used by ``PedersenParams.commit_many`` to interleave g/h digit
        lookups without constructing intermediate ``GroupElement``s.
        """
        if self._raw_tables is None or self._raw_kernel is not kernel:
            self._raw_tables = [
                [kernel.to_raw(entry) for entry in row] for row in self._tables
            ]
            self._raw_kernel = kernel
        return self._raw_tables

    def power(self, exponent: int) -> GroupElement:
        """base ** exponent using only table lookups and multiplications."""
        kernel = kernel_for(self._group)
        return kernel.from_raw(self.power_raw(kernel, exponent))

    def power_raw(self, kernel, exponent: int):
        """base ** exponent as a kernel-raw value (no per-window objects).

        The whole walk stays in the kernel's raw representation (ints for
        Schnorr, extended/Jacobian coordinates for the curves); only the
        caller converts back, so chained fixed-base products cost one
        normalization total.
        """
        rows = self.raw_tables(kernel)
        mul = kernel.mul
        e = exponent % self._group.order
        mask = (1 << self._window) - 1
        acc = None
        for i in range(self._nwindows):
            digit = (e >> (i * self._window)) & mask
            if digit:
                entry = rows[i][digit]
                acc = entry if acc is None else mul(acc, entry)
        return acc if acc is not None else kernel.identity_raw


def dual_power(
    table_a: FixedBaseTable, ea: int, table_b: FixedBaseTable, eb: int
) -> GroupElement:
    """``a ** ea * b ** eb`` over two fixed-base comb tables, in one walk.

    This is the shape of every Pedersen operation — ``Com(x, r) = g^x h^r``
    — and of the folded generator terms in Σ-batch verification.  The g-
    and h-digit lookups interleave into a single raw accumulation, so the
    pair costs barely more than one fixed-base power and far less than two
    generic exponentiations.  Cached per :class:`~repro.crypto.pedersen.
    PedersenParams`, the tables are shared by every commit, proof and
    batch-verify call on the same parameters (the ROADMAP fixed-base item).
    """
    if table_a._group is not table_b._group:
        raise ParameterError("dual_power requires tables over one group")
    if table_a.window != table_b.window or table_a.nwindows != table_b.nwindows:
        raise ParameterError("dual_power requires tables with matching geometry")
    group = table_a._group
    kernel = kernel_for(group)
    rows_a = table_a.raw_tables(kernel)
    rows_b = table_b.raw_tables(kernel)
    mul = kernel.mul
    window = table_a.window
    mask = (1 << window) - 1
    order = group.order
    ea %= order
    eb %= order
    acc = None
    for i in range(table_a.nwindows):
        shift = i * window
        da = (ea >> shift) & mask
        if da:
            entry = rows_a[i][da]
            acc = entry if acc is None else mul(acc, entry)
        db = (eb >> shift) & mask
        if db:
            entry = rows_b[i][db]
            acc = entry if acc is None else mul(acc, entry)
    return kernel.from_raw(acc if acc is not None else kernel.identity_raw)
