"""Multi-exponentiation.

The verifier's Line 13 check in ΠBin is one big product
``prod(c_i) * prod(ĉ'_j) == Com(y, z)`` — a multi-exponentiation once the
commitments are unwound — and Σ-proof batch verification is a random linear
combination of many (base, exponent) pairs.  Interleaved windowed
exponentiation cuts the group-operation count roughly by the window width
versus the naive product.

The implementation is backend-agnostic: it only uses the ``Group`` /
``GroupElement`` interface.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.group import Group, GroupElement
from repro.errors import ParameterError

__all__ = ["multi_exponentiation", "FixedBaseTable"]

_WINDOW = 4


def multi_exponentiation(
    group: Group, bases: Sequence[GroupElement], exponents: Sequence[int]
) -> GroupElement:
    """Compute prod(bases[i] ** exponents[i]) with interleaved windows.

    Uses a shared square chain across all pairs (Straus' trick) with
    ``_WINDOW``-bit windows per base.
    """
    if len(bases) != len(exponents):
        raise ParameterError("bases and exponents length mismatch")
    if not bases:
        return group.identity()
    if len(bases) == 1:
        return bases[0] ** exponents[0]

    order = group.order
    exps = [e % order for e in exponents]
    max_bits = max((e.bit_length() for e in exps), default=0)
    if max_bits == 0:
        return group.identity()

    # Precompute odd multiples? For simplicity precompute full window tables:
    # table[i][w] = bases[i] ** w for w in [0, 2^WINDOW).
    tables = []
    for base in bases:
        row = [group.identity(), base]
        for _ in range(2, 1 << _WINDOW):
            row.append(row[-1] * base)
        tables.append(row)

    # Process windows from the most significant end.
    nwindows = (max_bits + _WINDOW - 1) // _WINDOW
    acc = group.identity()
    for w in range(nwindows - 1, -1, -1):
        if acc is not group.identity() or w != nwindows - 1:
            for _ in range(_WINDOW):
                acc = acc * acc
        shift = w * _WINDOW
        mask = (1 << _WINDOW) - 1
        for i, e in enumerate(exps):
            digit = (e >> shift) & mask
            if digit:
                acc = acc * tables[i][digit]
    return acc


class FixedBaseTable:
    """Precomputed powers of a fixed base for repeated exponentiation.

    ΠBin exponentiates the same two generators (g, h) thousands of times
    (once per private coin); a radix-2^w comb table amortizes that.
    """

    def __init__(self, base: GroupElement, *, window: int = 6) -> None:
        if window < 1 or window > 16:
            raise ParameterError("window out of range")
        self._group = base.group
        self._window = window
        order_bits = self._group.order.bit_length()
        self._nwindows = (order_bits + window - 1) // window
        self._tables: list[list[GroupElement]] = []
        current = base
        for _ in range(self._nwindows):
            row = [self._group.identity()]
            for _ in range(1, 1 << window):
                row.append(row[-1] * current)
            self._tables.append(row)
            current = row[-1] * current  # current ** (2^window)

    @property
    def base(self) -> GroupElement:
        return self._tables[0][1]

    def power(self, exponent: int) -> GroupElement:
        """base ** exponent using only table lookups and multiplications."""
        e = exponent % self._group.order
        acc = self._group.identity()
        mask = (1 << self._window) - 1
        for i in range(self._nwindows):
            digit = (e >> (i * self._window)) & mask
            if digit:
                acc = acc * self._tables[i][digit]
        return acc
