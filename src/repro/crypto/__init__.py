"""Cryptographic substrate: groups, commitments, Fiat–Shamir, Σ-protocols.

Built entirely from scratch on Python integers (the environment has no
crypto dependency).  Two interchangeable prime-order group backends are
provided, matching Section 6 of the paper:

* :class:`repro.crypto.schnorr_group.SchnorrGroup` — the subgroup of
  quadratic residues of Z*p for a safe prime p ("Gq ⊂ Z*p" in the paper,
  which used OpenSSL BigNum).
* :class:`repro.crypto.ristretto.RistrettoGroup` — ristretto255, the
  prime-order group over Curve25519 (the paper used curve25519-dalek).
"""

from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr_group import SchnorrGroup
from repro.crypto.ristretto import RistrettoGroup
from repro.crypto.p256 import P256Group
from repro.crypto.pedersen import PedersenParams, Commitment, Opening
from repro.crypto.fiat_shamir import Transcript

__all__ = [
    "Group",
    "GroupElement",
    "SchnorrGroup",
    "RistrettoGroup",
    "P256Group",
    "PedersenParams",
    "Commitment",
    "Opening",
    "Transcript",
]
