"""Schnorr proof of knowledge of a discrete logarithm.

PoK{ (w) : y = base^w } — the atomic Σ-protocol from which the OR proof is
composed.  Three moves:

    Pv:  a = base^s            for fresh s ← Z_q      (announcement)
    Vfr: e ← Z_q                                       (challenge)
    Pv:  z = s + e·w mod q                             (response)

accept iff  base^z == a · y^e.

Exposed in both interactive pieces (:func:`announce`, :func:`respond`,
:func:`check`) and Fiat–Shamir form (:func:`prove_dlog`,
:func:`verify_dlog`).  :func:`extract_witness` implements special
soundness — two accepting transcripts with the same announcement and
different challenges yield the witness — which the tests use to show the
protocol is a *proof of knowledge*, and :func:`simulate` implements the
honest-verifier zero-knowledge simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.group import Group, GroupElement
from repro.errors import ProofRejected, ParameterError
from repro.utils.numth import inverse_mod
from repro.utils.rng import RNG, default_rng

__all__ = [
    "SchnorrProof",
    "announce",
    "respond",
    "check",
    "prove_dlog",
    "verify_dlog",
    "simulate",
    "extract_witness",
]


@dataclass(frozen=True)
class SchnorrProof:
    """Non-interactive Schnorr proof (announcement, response)."""

    announcement: GroupElement
    response: int


def announce(group: Group, base: GroupElement, rng: RNG | None = None) -> tuple[GroupElement, int]:
    """First move: (a, s) with a = base^s."""
    s = group.random_scalar(default_rng(rng))
    return base ** s, s


def respond(group: Group, nonce: int, witness: int, challenge: int) -> int:
    """Third move: z = s + e*w mod q."""
    return (nonce + challenge * witness) % group.order


def check(
    group: Group,
    base: GroupElement,
    statement: GroupElement,
    announcement: GroupElement,
    challenge: int,
    response: int,
) -> bool:
    """Verification equation base^z == a * y^e."""
    return base ** response == announcement * (statement ** challenge)


def _bind(transcript: Transcript, base: GroupElement, statement: GroupElement) -> None:
    transcript.append_element("base", base)
    transcript.append_element("statement", statement)


def prove_dlog(
    group: Group,
    base: GroupElement,
    statement: GroupElement,
    witness: int,
    transcript: Transcript,
    rng: RNG | None = None,
) -> SchnorrProof:
    """Fiat–Shamir proof of knowledge of w with statement = base^w."""
    if base ** witness != statement:
        raise ParameterError("witness does not satisfy the statement")
    a, s = announce(group, base, rng)
    _bind(transcript, base, statement)
    transcript.append_element("announcement", a)
    e = transcript.challenge_scalar("challenge", group.order)
    return SchnorrProof(a, respond(group, s, witness, e))


def verify_dlog(
    group: Group,
    base: GroupElement,
    statement: GroupElement,
    proof: SchnorrProof,
    transcript: Transcript,
) -> None:
    """Verify a Fiat–Shamir Schnorr proof; raises :class:`ProofRejected`."""
    _bind(transcript, base, statement)
    transcript.append_element("announcement", proof.announcement)
    e = transcript.challenge_scalar("challenge", group.order)
    if not check(group, base, statement, proof.announcement, e, proof.response):
        raise ProofRejected("Schnorr verification equation failed")


def simulate(
    group: Group,
    base: GroupElement,
    statement: GroupElement,
    challenge: int,
    rng: RNG | None = None,
) -> tuple[GroupElement, int]:
    """HVZK simulator: an accepting (a, z) for a *given* challenge.

    Samples z uniformly and solves for a = base^z * statement^-e; the
    output distribution matches honest transcripts exactly (perfect HVZK).
    """
    z = group.random_scalar(default_rng(rng))
    a = (base ** z) * (statement ** ((-challenge) % group.order))
    return a, z


def extract_witness(
    group: Group,
    challenge1: int,
    response1: int,
    challenge2: int,
    response2: int,
) -> int:
    """Special soundness: witness from two accepting transcripts sharing a.

    w = (z1 - z2) / (e1 - e2) mod q.
    """
    if challenge1 % group.order == challenge2 % group.order:
        raise ParameterError("challenges must differ for extraction")
    num = (response1 - response2) % group.order
    den = inverse_mod((challenge1 - challenge2) % group.order, group.order)
    return (num * den) % group.order
