"""Bit-vector proofs: every coordinate of a committed vector is a bit.

This is the validity language of the bounded-sum extension: a client
commits to the k-bit *decomposition* of its value, c_j = Com(x_j, r_j),
and proves each x_j ∈ {0, 1} with the Σ-OR proof — a classic
commit-and-prove range proof.  The value commitment is then derived
homomorphically by any observer as Π_j c_j^{2^j} = Com(Σ 2^j x_j, Σ 2^j r_j),
so a valid decomposition certifies x ∈ [0, 2^k).

Unlike :mod:`repro.crypto.sigma.onehot` there is *no* coordinate-sum
equation — the coordinates are independent bits.  The proofs share one
transcript (parallel composition, as for the one-hot proof) with the
vector length bound in first, so a k-bit proof can never verify as a
k'-bit one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.crypto.sigma.or_bit import BitProof, prove_bit, verify_bit
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = ["BitVectorProof", "prove_bit_vector", "verify_bit_vector"]


@dataclass(frozen=True)
class BitVectorProof:
    """Per-coordinate Σ-OR proofs for a committed bit vector."""

    bit_proofs: tuple[BitProof, ...]

    @property
    def dimension(self) -> int:
        return len(self.bit_proofs)


def _bind_dimension(transcript: Transcript, dimension: int) -> None:
    transcript.append_int("bitvec-dimension", dimension)


def prove_bit_vector(
    params: PedersenParams,
    commitments: list[Commitment],
    openings: list[Opening],
    transcript: Transcript,
    rng: RNG | None = None,
) -> BitVectorProof:
    """Prove every committed coordinate is a bit (shared transcript)."""
    if not commitments:
        raise ParameterError("bit vector must have at least one coordinate")
    if len(commitments) != len(openings):
        raise ParameterError("commitments and openings length mismatch")
    rng = default_rng(rng)
    _bind_dimension(transcript, len(commitments))
    return BitVectorProof(
        tuple(
            prove_bit(params, c, o, transcript, rng)
            for c, o in zip(commitments, openings)
        )
    )


def verify_bit_vector(
    params: PedersenParams,
    commitments: list[Commitment],
    proof: BitVectorProof,
    transcript: Transcript,
) -> None:
    """Verify a bit-vector proof; raises :class:`ProofRejected` on failure."""
    if len(commitments) != proof.dimension:
        raise ProofRejected("proof dimension does not match commitments")
    _bind_dimension(transcript, len(commitments))
    for commitment, bit_proof in zip(commitments, proof.bit_proofs):
        verify_bit(params, commitment, bit_proof, transcript)
