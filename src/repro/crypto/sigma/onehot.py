"""One-hot proofs for M-dimensional client inputs.

For M-bin histograms the language of legal client inputs is

    L = { x ∈ {0,1}^M : ||x||₁ = 1 }          (Section 4.2)

Appendix C (final paragraph) gives the verification recipe implemented
here: the client sends a Σ-OR proof per coordinate (each committed
coordinate is a bit) plus the *sum of the commitment randomness*
r = Σ r_j; the verifier checks every OR proof and then that

    Π_j c_j == Com(1, r) == g·h^r

i.e. the coordinates sum to exactly one.  Revealing r leaks nothing about
which coordinate is hot: the product commitment always opens to 1 for a
legal input, and r is the only extra value revealed.

For M = 1 (single counting query) this degenerates to one OR proof plus a
trivial sum check, matching L = {0, 1}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.crypto.sigma.or_bit import BitProof, prove_bit, verify_bit
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = ["OneHotProof", "prove_one_hot", "verify_one_hot"]


@dataclass(frozen=True)
class OneHotProof:
    """Per-coordinate bit proofs plus the summed randomness."""

    bit_proofs: tuple[BitProof, ...]
    randomness_sum: int

    @property
    def dimension(self) -> int:
        return len(self.bit_proofs)


def prove_one_hot(
    params: PedersenParams,
    commitments: list[Commitment],
    openings: list[Opening],
    transcript: Transcript,
    rng: RNG | None = None,
) -> OneHotProof:
    """Prove the committed vector is one-hot.

    Raises :class:`ParameterError` when the witness is not actually
    one-hot — an honest client cannot accidentally produce an invalid
    proof, and a dishonest one must forge (infeasible).
    """
    if len(commitments) != len(openings):
        raise ParameterError("commitments and openings length mismatch")
    if not commitments:
        raise ParameterError("dimension must be at least 1")
    total = sum(o.value for o in openings)
    if total % params.q != 1 or any(o.value % params.q not in (0, 1) for o in openings):
        raise ParameterError("witness vector is not one-hot")

    rng = default_rng(rng)
    transcript.append_int("dimension", len(commitments))
    proofs = tuple(
        prove_bit(params, c, o, transcript, rng) for c, o in zip(commitments, openings)
    )
    r_sum = sum(o.randomness for o in openings) % params.q
    return OneHotProof(proofs, r_sum)


def verify_one_hot(
    params: PedersenParams,
    commitments: list[Commitment],
    proof: OneHotProof,
    transcript: Transcript,
) -> None:
    """Verify a one-hot proof; raises :class:`ProofRejected` on failure."""
    if len(commitments) != proof.dimension:
        raise ProofRejected("proof dimension does not match commitments")
    transcript.append_int("dimension", len(commitments))
    for commitment, bit_proof in zip(commitments, proof.bit_proofs):
        verify_bit(params, commitment, bit_proof, transcript)
    product = params.product(commitments)
    expected = params.commit(1, proof.randomness_sum)
    if product.element != expected.element:
        raise ProofRejected("coordinate sum is not one (Π c_j != g·h^r)")
