"""Batch verification of Σ-OR bit proofs.

Verifying nb bit proofs one at a time costs 6·nb exponentiations (Table 1's
Σ-verification column).  Because every individual check is a product
equation in the group, a verifier can instead check one random linear
combination:

    Π_i [ d₀ᵢ · c_i^{e₀ᵢ} · h^{-v₀ᵢ} ]^{γᵢ}  ·  Π_i [ d₁ᵢ · (cᵢ/g)^{e₁ᵢ} · h^{-v₁ᵢ} ]^{γ'ᵢ}  ==  1

for uniform 128-bit γᵢ, γ'ᵢ.  If any single equation fails, the combined
equation holds with probability at most 2⁻¹²⁸ over the γ's.  The combined
product is one big multi-exponentiation, which
:func:`repro.crypto.multiexp.multi_exponentiation` evaluates with shared
squarings — an ablation benchmark (`benchmarks/bench_ablation_batching.py`)
quantifies the speedup over naive verification.

Note the e₀+e₁ == e split *must still be checked per proof* (it binds the
simulated branch to the Fiat–Shamir challenge); that part is cheap field
arithmetic.
"""

from __future__ import annotations

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, PedersenParams
from repro.crypto.sigma.or_bit import BitProof, _bind, _challenge
from repro.errors import ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = ["batch_verify_bits"]

_GAMMA_BITS = 128


def batch_verify_bits(
    params: PedersenParams,
    commitments: list[Commitment],
    proofs: list[BitProof],
    transcript: Transcript,
    rng: RNG | None = None,
) -> None:
    """Verify many bit proofs with one multi-exponentiation.

    Transcript evolution is identical to :func:`verify_bits`, so a batch
    verifier and a sequential verifier accept exactly the same proofs
    (up to the 2^-128 soundness slack of the random combination).
    Raises :class:`ProofRejected` if the batch fails.
    """
    if len(commitments) != len(proofs):
        raise ProofRejected("number of proofs does not match number of commitments")
    rng = default_rng(rng)
    q = params.q

    bases = []
    exponents = []
    for commitment, proof in zip(commitments, proofs):
        _bind(transcript, params, commitment)
        transcript.append_element("d0", proof.d0)
        transcript.append_element("d1", proof.d1)
        e = _challenge(transcript, params)
        if (proof.e0 + proof.e1) % q != e:
            raise ProofRejected("challenge split e0 + e1 != e")

        t0 = commitment.element
        t1 = commitment.element / params.g
        gamma0 = rng.randbits(_GAMMA_BITS)
        gamma1 = rng.randbits(_GAMMA_BITS)
        # branch 0: d0 * t0^e0 * h^-v0 == 1, weighted by gamma0
        bases.extend([proof.d0, t0, params.h])
        exponents.extend(
            [gamma0, (gamma0 * proof.e0) % q, (-gamma0 * proof.v0) % q]
        )
        # branch 1: d1 * t1^e1 * h^-v1 == 1, weighted by gamma1
        bases.extend([proof.d1, t1, params.h])
        exponents.extend(
            [gamma1, (gamma1 * proof.e1) % q, (-gamma1 * proof.v1) % q]
        )

    combined = params.group.multi_scale(bases, exponents)
    if not combined.is_identity():
        raise ProofRejected("batched OR-proof verification failed")
