"""Batch verification of Σ-proofs via random linear combination.

Verifying nb bit proofs one at a time costs 6·nb exponentiations (Table
1's Σ-verification column).  Because every individual check is a product
equation in the group, a verifier can instead check one random linear
combination: for each proof's two branch equations

    d₀ · c^{e₀} · h^{-v₀} == 1        d₁ · c^{e₁} · g^{-e₁} · h^{-v₁} == 1

draw uniform 128-bit weights γ₀, γ₁ and accept iff the γ-weighted product
of *all* equations is the identity.  If any single equation fails, the
combined equation holds with probability at most 2⁻¹²⁸ over the γ's.
Because every equation shares the generators, the g and h terms fold into
one exponent each, leaving 3 bases per proof plus 2 global ones; the
combined product is a single multi-exponentiation which
:func:`repro.crypto.multiexp.multi_exponentiation` dispatches to
Pippenger's bucket method at these sizes.

:class:`SigmaBatch` is the accumulator behind all of this, and it is
*cross-message*: the public verifier folds every prover's nb coin proofs
and every client's validity proof into one accumulator, so the entire
protocol run costs one multiexp instead of 6·(K·nb + n·M)
exponentiations.  Each message keeps its own Fiat–Shamir transcript —
transcript evolution is identical to the sequential verifier's, so batch
and sequential verification accept exactly the same proofs (up to the
2⁻¹²⁸ soundness slack).  When a batch rejects, callers fall back to the
sequential path to pinpoint the offending proof (see
``PublicVerifier``); ablation benchmarks
(`benchmarks/bench_ablation_batching.py`) quantify the speedup.

Note the e₀+e₁ == e split *must still be checked per proof* (it binds the
simulated branch to the Fiat–Shamir challenge); that part is cheap field
arithmetic and happens during accumulation.
"""

from __future__ import annotations

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.group import GroupElement
from repro.crypto.pedersen import Commitment, PedersenParams
from repro.crypto.sigma.bitvec import BitVectorProof, _bind_dimension
from repro.crypto.sigma.onehot import OneHotProof
from repro.crypto.sigma.or_bit import BitProof, _bind, _challenge
from repro.errors import ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = ["SigmaBatch", "batch_verify_bits", "batch_verify_one_hot", "GAMMA_BITS"]

# Width of the random linear combination weights: the probability a batch
# with at least one false equation still verifies is at most 2^-GAMMA_BITS.
GAMMA_BITS = 128


class SigmaBatch:
    """Accumulates γ-weighted Σ-proof equations for one combined check.

    Add any mix of bit proofs and one-hot proofs (each bound to its own
    transcript), then call :meth:`verify` once.  ``add_*`` raises
    :class:`ProofRejected` immediately for per-proof structural failures
    (length mismatch, bad challenge split), so by the time :meth:`verify`
    runs only the group equations are left to check.

    **Soundness requires the γ weights be unpredictable to whoever
    authored the proofs.**  A verifier whose RNG is public or replayable
    (a bulletin-board auditor, a deterministic third-party replica) must
    use the sequential path instead — with predictable γ's an adversary
    can tamper two equations so their errors cancel in the weighted
    product (``PublicVerifier(..., batch=False)`` exists for exactly
    this).
    """

    def __init__(self, params: PedersenParams, rng: RNG | None = None) -> None:
        self.params = params
        self.rng = default_rng(rng)
        self._bases: list[GroupElement] = []
        self._exponents: list[int] = []
        self._g_exp = 0
        self._h_exp = 0
        self._count = 0

    @property
    def proof_count(self) -> int:
        """Number of bit-proof equations folded in so far."""
        return self._count

    def add_bit_proof(
        self, commitment: Commitment, proof: BitProof, transcript: Transcript
    ) -> None:
        """Fold one Σ-OR bit proof into the combined equation.

        Evolves ``transcript`` exactly as :func:`verify_bit` does and
        checks the challenge split; only the two branch equations are
        deferred to the batch.
        """
        params = self.params
        q = params.q
        _bind(transcript, params, commitment)
        transcript.append_element("d0", proof.d0)
        transcript.append_element("d1", proof.d1)
        e = _challenge(transcript, params)
        if (proof.e0 + proof.e1) % q != e:
            raise ProofRejected("challenge split e0 + e1 != e")

        gamma0 = self.rng.randbits(GAMMA_BITS)
        gamma1 = self.rng.randbits(GAMMA_BITS)
        # branch 0: d0 · c^{e0} · h^{-v0} == 1, weighted by γ0;
        # branch 1: d1 · c^{e1} · g^{-e1} · h^{-v1} == 1, weighted by γ1.
        # The c terms of both branches merge, and the g/h terms join the
        # accumulator-wide folded generator exponents.
        self._bases.extend([proof.d0, proof.d1, commitment.element])
        self._exponents.extend(
            [gamma0, gamma1, (gamma0 * proof.e0 + gamma1 * proof.e1) % q]
        )
        self._g_exp = (self._g_exp - gamma1 * proof.e1) % q
        self._h_exp = (self._h_exp - gamma0 * proof.v0 - gamma1 * proof.v1) % q
        self._count += 1

    def add_bit_proofs(
        self,
        commitments: list[Commitment],
        proofs: list[BitProof],
        transcript: Transcript,
    ) -> None:
        """Fold a whole :func:`prove_bits` batch (shared transcript)."""
        if len(commitments) != len(proofs):
            raise ProofRejected(
                "number of proofs does not match number of commitments"
            )
        for commitment, proof in zip(commitments, proofs):
            self.add_bit_proof(commitment, proof, transcript)

    def add_one_hot(
        self,
        commitments: list[Commitment],
        proof: OneHotProof,
        transcript: Transcript,
    ) -> None:
        """Fold a one-hot proof: per-coordinate bit proofs + sum check.

        The sum check Π_j c_j == g·h^r becomes the γ-weighted equation
        (Π_j c_j) · g^{-1} · h^{-r} == 1 in the same combined product.
        """
        if len(commitments) != proof.dimension:
            raise ProofRejected("proof dimension does not match commitments")
        transcript.append_int("dimension", len(commitments))
        for commitment, bit_proof in zip(commitments, proof.bit_proofs):
            self.add_bit_proof(commitment, bit_proof, transcript)
        q = self.params.q
        gamma = self.rng.randbits(GAMMA_BITS)
        # Fold Π_j c_j with plain multiplications first — the coordinates
        # share one γ, so giving each its own multiexp term would cost
        # ~bits/c multiplications apiece instead of one.
        self._bases.append(self.params.group.product(c.element for c in commitments))
        self._exponents.append(gamma)
        self._g_exp = (self._g_exp - gamma) % q
        self._h_exp = (self._h_exp - gamma * proof.randomness_sum) % q

    def add_bit_vector(
        self,
        commitments: list[Commitment],
        proof: "BitVectorProof",
        transcript: Transcript,
    ) -> None:
        """Fold a bit-vector (range-decomposition) proof: M independent
        bit proofs, no coordinate-sum equation."""
        if len(commitments) != proof.dimension:
            raise ProofRejected("proof dimension does not match commitments")
        _bind_dimension(transcript, len(commitments))
        for commitment, bit_proof in zip(commitments, proof.bit_proofs):
            self.add_bit_proof(commitment, bit_proof, transcript)

    def merge(self, other: "SigmaBatch") -> None:
        """Absorb another accumulator (used for per-message staging)."""
        if other.params is not self.params:
            raise ProofRejected("cannot merge batches over different parameters")
        self._bases.extend(other._bases)
        self._exponents.extend(other._exponents)
        self._g_exp = (self._g_exp + other._g_exp) % self.params.q
        self._h_exp = (self._h_exp + other._h_exp) % self.params.q
        self._count += other._count

    def verify(self) -> None:
        """One multi-exponentiation; raises :class:`ProofRejected` on failure.

        The folded generator terms ``g^{Σ…} · h^{Σ…}`` are exactly a
        Pedersen commitment, so they go through the cached fixed-base comb
        tables (:meth:`PedersenParams.commit`) instead of joining the
        variable-base multiexp.
        """
        params = self.params
        combined = params.group.multi_scale(self._bases, self._exponents)
        combined = combined * params.commit(self._g_exp, self._h_exp).element
        if not combined.is_identity():
            raise ProofRejected("batched Σ-proof verification failed")


def batch_verify_bits(
    params: PedersenParams,
    commitments: list[Commitment],
    proofs: list[BitProof],
    transcript: Transcript,
    rng: RNG | None = None,
) -> None:
    """Verify many bit proofs with one multi-exponentiation.

    Transcript evolution is identical to :func:`verify_bits`, so a batch
    verifier and a sequential verifier accept exactly the same proofs
    (up to the 2^-128 soundness slack of the random combination).
    Raises :class:`ProofRejected` if the batch fails.
    """
    batch = SigmaBatch(params, rng)
    batch.add_bit_proofs(commitments, proofs, transcript)
    batch.verify()


def batch_verify_one_hot(
    params: PedersenParams,
    commitments: list[Commitment],
    proof: OneHotProof,
    transcript: Transcript,
    rng: RNG | None = None,
) -> None:
    """Batched counterpart of :func:`verify_one_hot` (one multiexp).

    Folds the M per-coordinate OR proofs and the coordinate-sum equation
    into one random linear combination; transcript evolution matches the
    sequential verifier.  Raises :class:`ProofRejected` on failure.
    """
    batch = SigmaBatch(params, rng)
    batch.add_one_hot(commitments, proof, transcript)
    batch.verify()
