"""Proof that two Pedersen commitments open to the same value.

PoK{ (x, r₁, r₂) : c₁ = g^x h^{r₁} ∧ c₂ = g^x h^{r₂} }.

Equivalently a Schnorr proof of knowledge of r₁ - r₂ for the statement
c₁/c₂ = h^{r₁-r₂}; we implement that reduction directly.  Used by the
composition layer (:mod:`repro.core.composition`) to tie a commitment
published inside ΠBin to a commitment consumed by an outer system such as
PRIO, enforcing that both protocols talk about the same value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.crypto.sigma import schnorr_pok
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = ["EqualityProof", "prove_equal", "verify_equal"]


@dataclass(frozen=True)
class EqualityProof:
    """Schnorr proof on the quotient commitment."""

    proof: schnorr_pok.SchnorrProof


def prove_equal(
    params: PedersenParams,
    c1: Commitment,
    o1: Opening,
    c2: Commitment,
    o2: Opening,
    transcript: Transcript,
    rng: RNG | None = None,
) -> EqualityProof:
    """Prove c1 and c2 commit to the same value."""
    if o1.value % params.q != o2.value % params.q:
        raise ParameterError("openings commit to different values")
    if not params.opens_to(c1, o1) or not params.opens_to(c2, o2):
        raise ParameterError("opening does not match commitment")
    witness = (o1.randomness - o2.randomness) % params.q
    quotient = (c1 / c2).element
    transcript.append_bytes("pp", params.transcript_bytes())
    inner = schnorr_pok.prove_dlog(
        params.group, params.h, quotient, witness, transcript, default_rng(rng)
    )
    return EqualityProof(inner)


def verify_equal(
    params: PedersenParams,
    c1: Commitment,
    c2: Commitment,
    proof: EqualityProof,
    transcript: Transcript,
) -> None:
    """Verify an equality proof; raises :class:`ProofRejected`."""
    quotient = (c1 / c2).element
    transcript.append_bytes("pp", params.transcript_bytes())
    try:
        schnorr_pok.verify_dlog(params.group, params.h, quotient, proof.proof, transcript)
    except ProofRejected as exc:
        raise ProofRejected(f"equality proof rejected: {exc}") from exc
