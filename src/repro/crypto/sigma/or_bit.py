"""The Σ-OR proof that a Pedersen commitment opens to a bit.

This is the oracle ``O_OR`` of Section 2.2 / Appendix C (Figures 5 and 6):
given c = Com(x, r), prove in zero knowledge that

    c ∈ L_Bit = { c : x ∈ {0, 1} ∧ c = Com(x, r) }

without revealing which of 0/1.  Construction: Cramer–Damgård–Schoenmakers
(CDS94) disjunction of two Schnorr proofs with base ``h``:

* branch 0 asserts ∃r.  c      = h^r   (i.e. x = 0),
* branch 1 asserts ∃r.  c·g⁻¹  = h^r   (i.e. x = 1).

The prover runs the real Schnorr prover on the true branch and the HVZK
simulator on the false branch, splitting the challenge e = e₀ + e₁ so that
one sub-challenge is free (simulated) and the other is forced.  The
verifier's equations — identical to the last line of Figures 5/6 —

    h^{v₀} == d₀ · c^{e₀}          and      h^{v₁} == d₁ · (c/g)^{e₁}
    (equivalently  d₁ · c^{e₁} == g^{e₁} · h^{v₁})

hold for exactly one honest branch and one simulated branch, and the two
transcripts are identically distributed, so the verifier cannot tell which
branch was real.

Note on the paper's figures: Figure 5 ("without revealing that x = 1")
and Figure 6 ("without revealing that x = 0") transpose which branch is
simulated relative to the witness; the construction implemented here is
the standard CDS94 disjunction whose verification equations match the
figures' final line.  Completeness for both witness values is covered by
``tests/crypto/test_or_bit.py``.

This proof dominates the cost of ΠBin (Table 1: the Σ-proof and
Σ-verification columns), so the module also provides the vectorized
:func:`prove_bits` / :func:`verify_bits` used for the nb private coins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.group import GroupElement
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = [
    "BitProof",
    "prove_bit",
    "verify_bit",
    "prove_bits",
    "verify_bits",
    "simulate_bit_transcript",
    "branch_statements",
]


@dataclass(frozen=True)
class BitProof:
    """A CDS94 OR proof (d₀, d₁, e₀, e₁, v₀, v₁).

    Only one sub-challenge is serialized conceptually (e₁ = e - e₀), but we
    carry both for clarity; verification recomputes and checks the split.
    """

    d0: GroupElement
    d1: GroupElement
    e0: int
    e1: int
    v0: int
    v1: int


def branch_statements(params: PedersenParams, commitment: Commitment) -> tuple[GroupElement, GroupElement]:
    """(T₀, T₁) = (c, c/g): h-discrete-log statements for the two branches."""
    return commitment.element, commitment.element / params.g


def _bind(transcript: Transcript, params: PedersenParams, commitment: Commitment) -> None:
    transcript.append_bytes("pp", params.transcript_bytes())
    transcript.append_element("bit-commitment", commitment.element)


def _challenge(transcript: Transcript, params: PedersenParams) -> int:
    return transcript.challenge_scalar("or-challenge", params.q)


def _prove_with_challenge(
    params: PedersenParams,
    commitment: Commitment,
    opening: Opening,
    challenge_of: "callable",
    rng: RNG,
) -> BitProof:
    """Shared body of interactive and FS proving.

    ``challenge_of(d0, d1)`` supplies the challenge after the announcements
    are fixed (either from the transcript hash or from a live verifier).
    """
    q = params.q
    bit = opening.value % q
    if bit not in (0, 1):
        raise ParameterError(f"witness value {bit} is not a bit; L_Bit requires 0 or 1")
    if not params.opens_to(commitment, opening):
        raise ParameterError("opening does not match commitment")

    t0, t1 = branch_statements(params, commitment)
    real, sim = (0, 1) if bit == 0 else (1, 0)
    targets = (t0, t1)

    # Simulated branch: sample (e_sim, v_sim), derive announcement.
    e_sim = rng.field_element(q)
    v_sim = rng.field_element(q)
    d_sim = params.pow_h(v_sim) * (targets[sim] ** ((-e_sim) % q))

    # Real branch: honest Schnorr announcement.
    b = rng.field_element(q)
    d_real = params.pow_h(b)

    d0, d1 = (d_real, d_sim) if real == 0 else (d_sim, d_real)
    e = challenge_of(d0, d1)
    e_real = (e - e_sim) % q
    v_real = (b + e_real * opening.randomness) % q

    if real == 0:
        return BitProof(d0, d1, e_real, e_sim, v_real, v_sim)
    return BitProof(d0, d1, e_sim, e_real, v_sim, v_real)


def prove_bit(
    params: PedersenParams,
    commitment: Commitment,
    opening: Opening,
    transcript: Transcript,
    rng: RNG | None = None,
) -> BitProof:
    """Non-interactive (Fiat–Shamir) proof that ``commitment`` is to a bit."""
    rng = default_rng(rng)
    _bind(transcript, params, commitment)

    def challenge_of(d0: GroupElement, d1: GroupElement) -> int:
        transcript.append_element("d0", d0)
        transcript.append_element("d1", d1)
        return _challenge(transcript, params)

    return _prove_with_challenge(params, commitment, opening, challenge_of, rng)


def verify_bit(
    params: PedersenParams,
    commitment: Commitment,
    proof: BitProof,
    transcript: Transcript,
) -> None:
    """Verify a Fiat–Shamir bit proof; raises :class:`ProofRejected`.

    Checks (matching Figures 5/6, line 8–9):
      e₀ + e₁ == e,  h^{v₀} == d₀·c^{e₀},  h^{v₁} == d₁·(c/g)^{e₁}.
    """
    q = params.q
    _bind(transcript, params, commitment)
    transcript.append_element("d0", proof.d0)
    transcript.append_element("d1", proof.d1)
    e = _challenge(transcript, params)
    if (proof.e0 + proof.e1) % q != e:
        raise ProofRejected("challenge split e0 + e1 != e")
    t0, t1 = branch_statements(params, commitment)
    if params.pow_h(proof.v0) != proof.d0 * (t0 ** proof.e0):
        raise ProofRejected("branch-0 verification equation failed")
    if params.pow_h(proof.v1) != proof.d1 * (t1 ** proof.e1):
        raise ProofRejected("branch-1 verification equation failed")


def prove_bits(
    params: PedersenParams,
    commitments: list[Commitment],
    openings: list[Opening],
    transcript: Transcript,
    rng: RNG | None = None,
) -> list[BitProof]:
    """Prove every commitment in a batch is a bit (one proof each).

    The proofs share one transcript, so each challenge is bound to *all*
    previous commitments and proofs — parallel composition, as the paper
    notes both Π_morra and Π_or compose in parallel (footnote 7).
    """
    if len(commitments) != len(openings):
        raise ParameterError("commitments and openings length mismatch")
    rng = default_rng(rng)
    return [
        prove_bit(params, c, o, transcript, rng)
        for c, o in zip(commitments, openings)
    ]


def verify_bits(
    params: PedersenParams,
    commitments: list[Commitment],
    proofs: list[BitProof],
    transcript: Transcript,
) -> None:
    """Verify a batch produced by :func:`prove_bits` (same transcript order)."""
    if len(commitments) != len(proofs):
        raise ProofRejected("number of proofs does not match number of commitments")
    for commitment, proof in zip(commitments, proofs):
        verify_bit(params, commitment, proof, transcript)


def simulate_bit_transcript(
    params: PedersenParams,
    commitment: Commitment,
    challenge: int,
    rng: RNG | None = None,
) -> BitProof:
    """HVZK simulator: an accepting OR transcript for a *given* challenge.

    Requires no witness at all — both branches are simulated, splitting the
    challenge uniformly.  Together with :func:`prove_bit` this demonstrates
    the zero-knowledge property: for a commitment to a genuine bit the
    simulated and real transcripts are identically distributed.
    """
    rng = default_rng(rng)
    q = params.q
    t0, t1 = branch_statements(params, commitment)
    e0 = rng.field_element(q)
    e1 = (challenge - e0) % q
    v0 = rng.field_element(q)
    v1 = rng.field_element(q)
    d0 = params.pow_h(v0) * (t0 ** ((-e0) % q))
    d1 = params.pow_h(v1) * (t1 ** ((-e1) % q))
    return BitProof(d0, d1, e0, e1, v0, v1)
