"""Σ-protocols over Pedersen commitments.

The paper verifies two things in zero knowledge with Σ-protocols:

* :mod:`repro.crypto.sigma.or_bit` — the Cramer–Damgård–Schoenmakers OR
  proof (Appendix C, Figures 5/6) that a commitment opens to 0 or 1.  This
  instantiates the oracle ``O_OR`` used on Lines 3 and 5–6 of ΠBin and is
  the protocol's main computational bottleneck (Section 6).
* :mod:`repro.crypto.sigma.onehot` — the M-dimensional extension: each
  coordinate is a bit and the coordinates sum to one (Appendix C, final
  paragraph), used for client validation in MPC-DP histograms (Figure 4).

Supporting protocols (:mod:`schnorr_pok`, :mod:`opening_pok`,
:mod:`equality`) and batch verification (:mod:`batch`) round out the
toolbox.  All proofs are made non-interactive with the Fiat–Shamir
transform over :class:`repro.crypto.fiat_shamir.Transcript`; the
interactive 3-move forms are also exposed because the test-suite exercises
special soundness (extractors) and honest-verifier zero-knowledge
(simulators) directly.
"""

from repro.crypto.sigma.schnorr_pok import SchnorrProof, prove_dlog, verify_dlog
from repro.crypto.sigma.opening_pok import OpeningProof, prove_opening, verify_opening
from repro.crypto.sigma.or_bit import (
    BitProof,
    prove_bit,
    verify_bit,
    prove_bits,
    verify_bits,
    simulate_bit_transcript,
)
from repro.crypto.sigma.onehot import OneHotProof, prove_one_hot, verify_one_hot
from repro.crypto.sigma.bitvec import (
    BitVectorProof,
    prove_bit_vector,
    verify_bit_vector,
)
from repro.crypto.sigma.equality import EqualityProof, prove_equal, verify_equal
from repro.crypto.sigma.batch import SigmaBatch, batch_verify_bits, batch_verify_one_hot
from repro.crypto.sigma.interactive import (
    InteractiveBitProver,
    InteractiveBitVerifier,
    run_interactive_bit_proof,
)

__all__ = [
    "SchnorrProof",
    "prove_dlog",
    "verify_dlog",
    "OpeningProof",
    "prove_opening",
    "verify_opening",
    "BitProof",
    "prove_bit",
    "verify_bit",
    "prove_bits",
    "verify_bits",
    "simulate_bit_transcript",
    "OneHotProof",
    "prove_one_hot",
    "verify_one_hot",
    "BitVectorProof",
    "prove_bit_vector",
    "verify_bit_vector",
    "EqualityProof",
    "prove_equal",
    "verify_equal",
    "SigmaBatch",
    "batch_verify_bits",
    "batch_verify_one_hot",
    "InteractiveBitProver",
    "InteractiveBitVerifier",
    "run_interactive_bit_proof",
]
