"""Interactive Σ-OR sessions (the 3-move protocol, without Fiat–Shamir).

Appendix C notes that the Σ-protocols are zero-knowledge *without* a
random oracle: Maurer's result gives ZK for polynomial-sized challenge
spaces (with soundness error 1/|challenge space|, amplified by
repetition), and Damgård's trapdoor-commitment variant restores full
soundness at 4 rounds.  This module implements the first option:

* :class:`InteractiveBitProver` / :class:`InteractiveBitVerifier` — the
  live 3-move OR protocol of Figures 5/6, messages routed through a
  :class:`~repro.mpc.bus.SimulatedNetwork`,
* small-challenge mode with ``repetitions`` parallel runs: each run has
  soundness error 1/|C|, so t runs give |C|^-t (e.g. |C| = 2⁸, t = 8 ⇒
  2⁻⁶⁴) while remaining ZK against *arbitrary* verifiers for small |C|.

The FS variant in :mod:`repro.crypto.sigma.or_bit` stays the production
path (it is what the paper benchmarks); this module exists because the
interactive form is the object the security proofs actually reason about,
and the test-suite exercises cheating verifiers against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.group import GroupElement
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.crypto.sigma.or_bit import BitProof, branch_statements
from repro.errors import ParameterError, ProofRejected
from repro.utils.rng import RNG, default_rng

__all__ = [
    "Announcement",
    "InteractiveBitProver",
    "InteractiveBitVerifier",
    "run_interactive_bit_proof",
]


@dataclass(frozen=True)
class Announcement:
    """First move: the two branch announcements (d0, d1)."""

    d0: GroupElement
    d1: GroupElement


class InteractiveBitProver:
    """Prover side of one interactive OR session (possibly repeated)."""

    def __init__(
        self,
        params: PedersenParams,
        commitment: Commitment,
        opening: Opening,
        rng: RNG | None = None,
    ) -> None:
        bit = opening.value % params.q
        if bit not in (0, 1):
            raise ParameterError("witness is not a bit")
        if not params.opens_to(commitment, opening):
            raise ParameterError("opening does not match commitment")
        self.params = params
        self.commitment = commitment
        self.opening = opening
        self.rng = default_rng(rng)
        self._state: tuple | None = None

    def announce(self) -> Announcement:
        """Move 1: honest announcement on the real branch, simulated on
        the other (the challenge split happens in move 3)."""
        params = self.params
        q = params.q
        bit = self.opening.value % q
        t0, t1 = branch_statements(params, self.commitment)
        targets = (t0, t1)
        sim = 1 - bit
        e_sim = self.rng.field_element(q)
        v_sim = self.rng.field_element(q)
        d_sim = (params.h ** v_sim) * (targets[sim] ** ((-e_sim) % q))
        nonce = self.rng.field_element(q)
        d_real = params.h ** nonce
        d0, d1 = (d_real, d_sim) if bit == 0 else (d_sim, d_real)
        self._state = (bit, nonce, e_sim, v_sim)
        return Announcement(d0, d1)

    def respond(self, challenge: int) -> tuple[int, int, int, int]:
        """Move 3: (e0, e1, v0, v1) with e0 + e1 == challenge mod q."""
        if self._state is None:
            raise ParameterError("respond() before announce()")
        params = self.params
        q = params.q
        bit, nonce, e_sim, v_sim = self._state
        self._state = None
        e_real = (challenge - e_sim) % q
        v_real = (nonce + e_real * self.opening.randomness) % q
        if bit == 0:
            return e_real, e_sim, v_real, v_sim
        return e_sim, e_real, v_sim, v_real


class InteractiveBitVerifier:
    """Verifier side; ``challenge_bits`` sets the challenge-space size.

    Small challenge spaces (Maurer) keep the protocol ZK against
    malicious verifiers without a random oracle, at soundness 2^-bits per
    repetition.
    """

    def __init__(
        self,
        params: PedersenParams,
        commitment: Commitment,
        *,
        challenge_bits: int | None = None,
        rng: RNG | None = None,
    ) -> None:
        self.params = params
        self.commitment = commitment
        self.challenge_bits = challenge_bits
        self.rng = default_rng(rng)
        self._announcement: Announcement | None = None
        self._challenge: int | None = None

    def challenge(self, announcement: Announcement) -> int:
        """Move 2: a uniform challenge from the configured space."""
        self._announcement = announcement
        if self.challenge_bits is None:
            self._challenge = self.rng.field_element(self.params.q)
        else:
            self._challenge = self.rng.randbits(self.challenge_bits) % self.params.q
        return self._challenge

    def check(self, response: tuple[int, int, int, int]) -> None:
        """Verify the final move; raises :class:`ProofRejected`."""
        if self._announcement is None or self._challenge is None:
            raise ParameterError("check() before challenge()")
        e0, e1, v0, v1 = response
        params = self.params
        q = params.q
        if (e0 + e1) % q != self._challenge % q:
            raise ProofRejected("challenge split mismatch")
        t0, t1 = branch_statements(params, self.commitment)
        if params.h ** v0 != self._announcement.d0 * (t0 ** e0):
            raise ProofRejected("branch-0 equation failed")
        if params.h ** v1 != self._announcement.d1 * (t1 ** e1):
            raise ProofRejected("branch-1 equation failed")
        self._announcement = None
        self._challenge = None

    def as_proof(self, announcement: Announcement, response) -> BitProof:
        """Package an accepted interactive transcript as a BitProof record."""
        e0, e1, v0, v1 = response
        return BitProof(announcement.d0, announcement.d1, e0, e1, v0, v1)


def run_interactive_bit_proof(
    params: PedersenParams,
    commitment: Commitment,
    opening: Opening,
    *,
    repetitions: int = 1,
    challenge_bits: int | None = None,
    prover_rng: RNG | None = None,
    verifier_rng: RNG | None = None,
) -> list[BitProof]:
    """Run the full interactive protocol, optionally repeated in parallel.

    Returns the accepted transcripts; raises :class:`ProofRejected` if any
    repetition fails.  With ``challenge_bits = b`` the combined soundness
    error is 2^(-b·repetitions).
    """
    if repetitions < 1:
        raise ParameterError("repetitions must be >= 1")
    prover_rng = default_rng(prover_rng)
    verifier_rng = default_rng(verifier_rng)
    transcripts: list[BitProof] = []
    for _ in range(repetitions):
        prover = InteractiveBitProver(params, commitment, opening, prover_rng)
        verifier = InteractiveBitVerifier(
            params, commitment, challenge_bits=challenge_bits, rng=verifier_rng
        )
        announcement = prover.announce()
        challenge = verifier.challenge(announcement)
        response = prover.respond(challenge)
        verifier.check(response)
        transcripts.append(verifier.as_proof(announcement, response))
    return transcripts
