"""Proof of knowledge of a Pedersen opening.

PoK{ (x, r) : c = g^x h^r }.  A two-witness Schnorr variant:

    Pv:  A = g^s h^t          for fresh s, t ← Z_q
    Vfr: e ← Z_q
    Pv:  z_x = s + e·x,  z_r = t + e·r

accept iff  g^{z_x} h^{z_r} == A · c^e.

Used by the composition layer (attaching verifiability to PRIO-style
aggregates) and by tests of the binding/extraction story: the extractor
returns *both* witnesses, and two different extracted openings of one
commitment immediately yield log_g(h) — the reduction in the paper's
soundness proof (Cheat at Line 10 ⇒ discrete log break).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening, PedersenParams
from repro.crypto.group import GroupElement
from repro.errors import ProofRejected, ParameterError
from repro.utils.numth import inverse_mod
from repro.utils.rng import RNG, default_rng

__all__ = ["OpeningProof", "prove_opening", "verify_opening", "extract_opening", "simulate_opening"]


@dataclass(frozen=True)
class OpeningProof:
    """Non-interactive opening proof (A, z_x, z_r)."""

    announcement: GroupElement
    response_value: int
    response_randomness: int


def _bind(transcript: Transcript, params: PedersenParams, commitment: Commitment) -> None:
    transcript.append_bytes("pp", params.transcript_bytes())
    transcript.append_element("commitment", commitment.element)


def prove_opening(
    params: PedersenParams,
    commitment: Commitment,
    opening: Opening,
    transcript: Transcript,
    rng: RNG | None = None,
) -> OpeningProof:
    """Prove knowledge of (x, r) with c = Com(x, r)."""
    if not params.opens_to(commitment, opening):
        raise ParameterError("opening does not match commitment")
    rng = default_rng(rng)
    q = params.q
    s = rng.field_element(q)
    t = rng.field_element(q)
    announcement = (params.g ** s) * (params.h ** t)
    _bind(transcript, params, commitment)
    transcript.append_element("announcement", announcement)
    e = transcript.challenge_scalar("challenge", q)
    return OpeningProof(
        announcement,
        (s + e * opening.value) % q,
        (t + e * opening.randomness) % q,
    )


def verify_opening(
    params: PedersenParams,
    commitment: Commitment,
    proof: OpeningProof,
    transcript: Transcript,
) -> None:
    """Verify; raises :class:`ProofRejected` on failure."""
    _bind(transcript, params, commitment)
    transcript.append_element("announcement", proof.announcement)
    e = transcript.challenge_scalar("challenge", params.q)
    lhs = (params.g ** proof.response_value) * (params.h ** proof.response_randomness)
    rhs = proof.announcement * (commitment.element ** e)
    if lhs != rhs:
        raise ProofRejected("opening-PoK verification equation failed")


def simulate_opening(
    params: PedersenParams,
    commitment: Commitment,
    challenge: int,
    rng: RNG | None = None,
) -> tuple[GroupElement, int, int]:
    """HVZK simulator for a given challenge: accepting (A, z_x, z_r)."""
    rng = default_rng(rng)
    z_x = rng.field_element(params.q)
    z_r = rng.field_element(params.q)
    announcement = (
        (params.g ** z_x)
        * (params.h ** z_r)
        * (commitment.element ** ((-challenge) % params.q))
    )
    return announcement, z_x, z_r


def extract_opening(
    params: PedersenParams,
    challenge1: int,
    responses1: tuple[int, int],
    challenge2: int,
    responses2: tuple[int, int],
) -> Opening:
    """Special soundness: the opening from two accepting transcripts."""
    q = params.q
    if challenge1 % q == challenge2 % q:
        raise ParameterError("challenges must differ for extraction")
    inv = inverse_mod((challenge1 - challenge2) % q, q)
    x = ((responses1[0] - responses2[0]) * inv) % q
    r = ((responses1[1] - responses2[1]) * inv) % q
    return Opening(x, r)
