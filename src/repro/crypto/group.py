"""Abstract prime-order group interface.

Pedersen commitments and Σ-protocols are written against this interface so
the finite-field and elliptic-curve backends are interchangeable — exactly
the experiment the paper runs in Section 6 (modp vs Ristretto latency).

A ``Group`` exposes a cyclic group of *prime* order q with:

* ``generator()`` — the standard base point g,
* ``hash_to_group(label)`` — a second generator h with unknown discrete log
  relative to g ("nothing up my sleeve"), required for Pedersen binding,
* element arithmetic via :class:`GroupElement` operator overloads
  (multiplicative notation: ``*`` combines, ``**`` is scalar action, ``~``
  inverts), and
* canonical byte encodings for Fiat–Shamir hashing.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from repro.errors import NotOnGroupError, ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["Group", "GroupElement"]


class GroupElement(abc.ABC):
    """An element of a prime-order group (immutable, hashable)."""

    __slots__ = ()

    @property
    @abc.abstractmethod
    def group(self) -> "Group":
        """The group this element belongs to."""

    @abc.abstractmethod
    def combine(self, other: "GroupElement") -> "GroupElement":
        """Group operation (written multiplicatively)."""

    @abc.abstractmethod
    def scale(self, exponent: int) -> "GroupElement":
        """Scalar action: self raised to ``exponent`` (mod group order)."""

    @abc.abstractmethod
    def invert(self) -> "GroupElement":
        """Group inverse."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical (injective) byte encoding."""

    @abc.abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abc.abstractmethod
    def __hash__(self) -> int: ...

    # Operator sugar ----------------------------------------------------

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        if not isinstance(other, GroupElement):
            return NotImplemented
        return self.combine(other)

    def __pow__(self, exponent: int) -> "GroupElement":
        return self.scale(exponent)

    def __invert__(self) -> "GroupElement":
        return self.invert()

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        if not isinstance(other, GroupElement):
            return NotImplemented
        return self.combine(other.invert())

    def is_identity(self) -> bool:
        return self == self.group.identity()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.to_bytes().hex()[:16]}…>"


class Group(abc.ABC):
    """A cyclic group of prime order ``q`` with canonical encodings."""

    @property
    @abc.abstractmethod
    def order(self) -> int:
        """Prime order q of the group (the scalar field is Z_q)."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier (used in transcripts and parameter hashes)."""

    @abc.abstractmethod
    def identity(self) -> GroupElement: ...

    @abc.abstractmethod
    def generator(self) -> GroupElement: ...

    @abc.abstractmethod
    def hash_to_group(self, label: bytes) -> GroupElement:
        """Derive a group element with unknown discrete log w.r.t. g."""

    @abc.abstractmethod
    def from_bytes(self, data: bytes) -> GroupElement:
        """Decode (and validate membership of) a canonical encoding."""

    # Common helpers -----------------------------------------------------

    @property
    def scalar_bytes(self) -> int:
        """Width of a canonically encoded scalar."""
        return (self.order.bit_length() + 7) // 8

    def random_scalar(self, rng: RNG | None = None) -> int:
        """Uniform scalar in Z_q."""
        return default_rng(rng).field_element(self.order)

    def random_element(self, rng: RNG | None = None) -> GroupElement:
        """Uniform group element (g^r for uniform r)."""
        return self.generator() ** self.random_scalar(rng)

    def reduce_scalar(self, value: int) -> int:
        return value % self.order

    def check_scalar(self, value: int) -> int:
        if not 0 <= value < self.order:
            raise ParameterError(f"scalar {value} out of range [0, {self.order})")
        return value

    def check_element(self, element: GroupElement) -> GroupElement:
        if element.group is not self:
            raise NotOnGroupError("element belongs to a different group instance")
        return element

    def multi_scale(
        self, bases: Sequence[GroupElement], exponents: Sequence[int]
    ) -> GroupElement:
        """Product of bases[i] ** exponents[i].

        Routed through the tiered engine in :mod:`repro.crypto.multiexp`
        (naive / Straus-wNAF / Pippenger, selected by batch size and
        exponent bit length).  Backends accelerate it by providing a raw
        kernel via :meth:`multiexp_kernel` rather than overriding this.
        """
        from repro.crypto.multiexp import multi_exponentiation

        return multi_exponentiation(self, list(bases), list(exponents))

    def multiexp_kernel(self):
        """Raw-representation kernel for the multiexp engine, or None.

        Backends return an object with ``identity_raw`` / ``to_raw`` /
        ``from_raw`` / ``mul`` / ``sqr`` / ``neg_many`` (see
        :class:`repro.crypto.multiexp.GenericKernel`) so batch products
        run on unboxed values; None selects the generic fallback.
        """
        return None

    def normalize_many(self, elements: Sequence[GroupElement]) -> list[GroupElement]:
        """Normalize many elements for serialization, batched when possible.

        Projective-coordinate backends override this with one Montgomery
        batch inversion for the whole list (P-256 Jacobian → affine); the
        default is the identity map for backends whose elements are
        already canonical.
        """
        return list(elements)

    def product(self, elements: Iterable[GroupElement]) -> GroupElement:
        """Plain product, accumulated on the raw kernel representation."""
        from repro.crypto.multiexp import kernel_for

        kernel = kernel_for(self)
        to_raw, mul = kernel.to_raw, kernel.mul
        acc = None
        for element in elements:
            raw = to_raw(element)
            acc = raw if acc is None else mul(acc, raw)
        if acc is None:
            return self.identity()
        return kernel.from_raw(acc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} |q|={self.order.bit_length()}b>"
