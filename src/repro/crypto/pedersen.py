"""Pedersen commitments (Definition 2/3, equation (11)).

``Com(x, r) = g^x * h^r`` over a prime-order group in which the discrete
log of h base g is unknown.  The scheme is

* perfectly **hiding** — for any x, the commitment is uniform over the
  group as r varies, so even an unbounded verifier learns nothing (this is
  what makes the ZK side of verifiable DP *statistical* against the
  verifier while soundness is only computational; see Theorem 5.2), and
* computationally **binding** — opening one commitment two ways yields
  log_g(h) (Definition 9/11).  ``repro.analysis.separation`` demonstrates
  exactly this break given a discrete-log oracle.

The homomorphism ``Com(x1, r1) * Com(x2, r2) = Com(x1+x2, r1+r2)`` is what
lets the public verifier check the prover's aggregate on Line 13 of ΠBin
without seeing any opening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.group import Group, GroupElement
from repro.crypto.multiexp import FixedBaseTable, dual_power, kernel_for
from repro.errors import CommitmentOpeningError, ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = ["PedersenParams", "Commitment", "Opening"]


@dataclass(frozen=True)
class Opening:
    """An opening (x, r) of a Pedersen commitment.

    In the paper's notation these are the values a party reveals to open
    ``c = Com(x, r)``; the message space and randomness space are both Z_q.
    """

    value: int
    randomness: int

    def __add__(self, other: "Opening") -> "Opening":
        # Addition is performed by PedersenParams.add_openings (needs q);
        # this operator exists only to give a friendly error.
        raise TypeError("use PedersenParams.add_openings to add openings mod q")


@dataclass(frozen=True)
class Commitment:
    """A Pedersen commitment: a single group element.

    Thin immutable wrapper so type signatures distinguish commitments from
    bare group elements; supports the homomorphic ``*`` and ``/``.
    """

    element: GroupElement

    def __mul__(self, other: "Commitment") -> "Commitment":
        if not isinstance(other, Commitment):
            return NotImplemented
        return Commitment(self.element * other.element)

    def __truediv__(self, other: "Commitment") -> "Commitment":
        if not isinstance(other, Commitment):
            return NotImplemented
        return Commitment(self.element / other.element)

    def __pow__(self, exponent: int) -> "Commitment":
        return Commitment(self.element ** exponent)

    def to_bytes(self) -> bytes:
        return self.element.to_bytes()


class PedersenParams:
    """Public parameters (pp) for Pedersen commitments over ``group``.

    ``h`` is derived by hashing-to-group, so no party knows log_g(h)
    ("nothing up my sleeve"); Setup(1^κ) in the paper.
    """

    def __init__(self, group: Group, *, h_label: bytes = b"repro.pedersen.h") -> None:
        self.group = group
        self.g = group.generator()
        self.h = group.hash_to_group(h_label)
        if self.h == self.g or self.h.is_identity():
            raise ParameterError("degenerate h; choose a different label")
        self.q = group.order
        # Fixed-base tables: the protocol commits to thousands of coins with
        # the same two generators, so comb tables pay for themselves fast.
        self._g_table = FixedBaseTable(self.g)
        self._h_table = FixedBaseTable(self.h)
        # Com(0,0) = 1 and Com(1,0) = g come up on every Line 12 update;
        # cache them instead of re-walking the comb table.
        self._const_zero = Commitment(group.identity())
        self._const_one = Commitment(self.g)

    # Committing ----------------------------------------------------------

    def commit(self, value: int, randomness: int) -> Commitment:
        """Com(value, randomness) = g^value * h^randomness.

        One fused comb walk over the cached g/h tables (interleaved digit
        lookups, raw-kernel accumulation) — the same inner loop as
        :meth:`commit_many`, shared via :func:`~repro.crypto.multiexp.dual_power`.
        """
        return Commitment(dual_power(self._g_table, value, self._h_table, randomness))

    def pow_g(self, exponent: int) -> GroupElement:
        """g ** exponent via the cached fixed-base comb table."""
        return self._g_table.power(exponent)

    def pow_h(self, exponent: int) -> GroupElement:
        """h ** exponent via the cached fixed-base comb table.

        The Σ-OR verification equations are dominated by ``h^v`` powers
        with full-width exponents; the precomputed table turns each into
        ~order_bits/window multiplications with no squarings.
        """
        return self._h_table.power(exponent)

    def commit_fresh(self, value: int, rng: RNG | None = None) -> tuple[Commitment, Opening]:
        """Commit with fresh uniform randomness; returns (c, opening)."""
        r = default_rng(rng).field_element(self.q)
        return self.commit(value, r), Opening(value % self.q, r)

    def commit_many(
        self, values: Sequence[int], randomness: Sequence[int]
    ) -> list[Commitment]:
        """Com(x_i, r_i) for every pair, on one fused comb walk each.

        Interleaves the g- and h-table digit lookups into a single raw
        accumulation per pair (no intermediate ``GroupElement`` per
        generator), using the backend's multiexp kernel.  This is the
        commit path for every bulk producer: ``commit_vector``, client
        share commitments, and the prover's nb-coin phase.
        """
        if len(values) != len(randomness):
            raise ParameterError("values and randomness length mismatch")
        kernel = kernel_for(self.group)
        g_rows = self._g_table.raw_tables(kernel)
        h_rows = self._h_table.raw_tables(kernel)
        mul = kernel.mul
        from_raw = kernel.from_raw
        window = self._g_table.window
        mask = (1 << window) - 1
        nwindows = self._g_table.nwindows
        q = self.q
        out: list[Commitment] = []
        for value, rand in zip(values, randomness):
            x = value % q
            r = rand % q
            acc = None
            for i in range(nwindows):
                shift = i * window
                dg = (x >> shift) & mask
                if dg:
                    entry = g_rows[i][dg]
                    acc = entry if acc is None else mul(acc, entry)
                dh = (r >> shift) & mask
                if dh:
                    entry = h_rows[i][dh]
                    acc = entry if acc is None else mul(acc, entry)
            raw = acc if acc is not None else kernel.identity_raw
            out.append(Commitment(from_raw(raw)))
        return out

    def commit_vector(
        self, values: Sequence[int], rng: RNG | None = None
    ) -> tuple[list[Commitment], list[Opening]]:
        """Coordinate-wise commitments to a vector (one-hot inputs etc.)."""
        rng = default_rng(rng)
        q = self.q
        openings = [
            Opening(value % q, rng.field_element(q)) for value in values
        ]
        commitments = self.commit_many(
            [o.value for o in openings], [o.randomness for o in openings]
        )
        return commitments, openings

    # Verifying -----------------------------------------------------------

    def verify_opening(self, commitment: Commitment, opening: Opening) -> None:
        """Raise :class:`CommitmentOpeningError` unless c == Com(x, r)."""
        expected = self.commit(opening.value, opening.randomness)
        if expected.element != commitment.element:
            raise CommitmentOpeningError("opening does not match commitment")

    def opens_to(self, commitment: Commitment, opening: Opening) -> bool:
        """Boolean form of :meth:`verify_opening`."""
        return self.commit(opening.value, opening.randomness).element == commitment.element

    # Homomorphic helpers ---------------------------------------------------

    def add_openings(self, openings: Iterable[Opening]) -> Opening:
        """Opening of the product of the corresponding commitments."""
        value = 0
        randomness = 0
        for opening in openings:
            value = (value + opening.value) % self.q
            randomness = (randomness + opening.randomness) % self.q
        return Opening(value, randomness)

    def product(self, commitments: Iterable[Commitment]) -> Commitment:
        """Com of the sum: product of commitments."""
        return Commitment(self.group.product(c.element for c in commitments))

    def commitment_to_constant(self, value: int) -> Commitment:
        """Com(value, 0) — used by the verifier's Line 12 update ĉ' = Com(1,0)/c'."""
        value %= self.q
        if value == 0:
            return self._const_zero
        if value == 1:
            return self._const_one
        return Commitment(self._g_table.power(value))

    def one_minus(self, commitment: Commitment) -> Commitment:
        """Com(1, 0) * c^-1: a commitment to 1 - x with randomness -r.

        This is exactly the verifier's linear update for b = 1 on Line 12
        of Figure 2: the verifier computes a commitment to the XOR-adjusted
        bit without ever seeing the bit.
        """
        return Commitment(self._const_one.element / commitment.element)

    def transcript_bytes(self) -> bytes:
        """Canonical encoding of pp, bound into every proof transcript."""
        return b"|".join(
            [self.group.name.encode(), self.g.to_bytes(), self.h.to_bytes()]
        )
