"""The session engine's phase state machine.

ΠBin (Figure 2) is one protocol machine; the phases name its rounds:

``ENROLL``
    Clients submit share commitments + validity proofs; provers check
    their private openings.  Streaming sessions fold each chunk's
    validation and Line 13 client products here, eagerly, so nothing but
    the audit verdicts and running products survives the chunk.
``VALIDATE``
    The public client record is finalized (Line 3) and the context digest
    binding all broadcasts is fixed — after this point no client can join
    and every coin proof is bound to the complete client phase.
``COMMIT_COINS``
    Provers commit nb × L private coins with Σ-OR bit proofs (Lines 4–6);
    the verifier checks them (batched, or chunk by chunk).
``MORRA``
    Prover and verifier co-sample public bits (Lines 7–8, Algorithm 1).
``ADJUST``
    Line 9/12: provers fold v̂ = v ⊕ b into their running sums, the
    verifier folds the homomorphic ĉ' products.  Streaming sessions loop
    ``COMMIT_COINS → MORRA → ADJUST`` once per chunk per prover — each
    coin is still committed strictly before its public bit is drawn.
``RELEASE``
    Prover outputs (Lines 10–11), the Line 13 check, aggregation and the
    audit record.
``DONE``
    Terminal; the session cannot be reused.

Transitions outside :data:`TRANSITIONS` raise
:class:`repro.errors.SessionStateError` — the ordering ("commit before
Morra") is a soundness requirement, not a style choice.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SessionStateError

__all__ = ["Phase", "TRANSITIONS", "advance"]


class Phase(Enum):
    """Lifecycle phase of a protocol session."""

    ENROLL = "enroll"
    VALIDATE = "validate"
    COMMIT_COINS = "commit-coins"
    MORRA = "morra"
    ADJUST = "adjust"
    RELEASE = "release"
    DONE = "done"


TRANSITIONS: dict[Phase, frozenset[Phase]] = {
    Phase.ENROLL: frozenset({Phase.VALIDATE}),
    Phase.VALIDATE: frozenset({Phase.COMMIT_COINS}),
    # COMMIT_COINS → COMMIT_COINS covers a streamed prover failing its
    # first chunk while the next prover starts; → RELEASE covers every
    # prover failing coin validation (the run still releases an audit).
    Phase.COMMIT_COINS: frozenset(
        {Phase.MORRA, Phase.COMMIT_COINS, Phase.RELEASE}
    ),
    Phase.MORRA: frozenset({Phase.ADJUST}),
    Phase.ADJUST: frozenset({Phase.COMMIT_COINS, Phase.MORRA, Phase.RELEASE}),
    Phase.RELEASE: frozenset({Phase.DONE}),
    Phase.DONE: frozenset(),
}


def advance(current: Phase, target: Phase) -> Phase:
    """Validate a transition; returns ``target`` or raises."""
    if target not in TRANSITIONS[current]:
        raise SessionStateError(
            f"illegal phase transition {current.value!r} -> {target.value!r}"
        )
    return target
