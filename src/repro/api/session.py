"""Sessions: the unified query API over the phase-driven engine.

A :class:`Session` takes a declarative :class:`~repro.api.queries.Query`
and executes it end to end::

    from repro.api import CountQuery, Session

    session = Session(CountQuery(epsilon=1.0, delta=2**-10), group="p128-sim")
    session.submit([1, 0, 1, 1, 0, 1])
    result = session.release()
    assert result.accepted
    print(result.estimate)

Clients arrive in **chunks** — ``submit`` accepts any iterable, may be
called repeatedly, and with ``chunk_size`` set the underlying engine
validates and folds each chunk instead of buffering the run, so peak
verifier memory is O(chunk) at any nb (see
:mod:`repro.api.engine`).  A :class:`~repro.api.queries.ComposedQuery`
runs one protocol instance per subquery over the same client population
(records are tuples, one entry per subquery) and charges each subquery's
honest budget to the session's
:class:`~repro.dp.accountant.PrivacyAccountant`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.engine import EngineResult, ProtocolEngine, fork_rng
from repro.api.phases import Phase
from repro.api.queries import ComposedQuery, Query
from repro.core.client import Client
from repro.core.messages import AuditRecord, Release
from repro.dp.accountant import PrivacyAccountant
from repro.errors import ParameterError, SessionStateError
from repro.utils.rng import RNG, SystemRNG
from repro.utils.timing import StageTimer

__all__ = ["Session", "SessionResult", "QueryResult", "build_engine"]


def build_engine(
    query: Query,
    *,
    num_provers: int,
    group: str = "modp-2048",
    nb_override: int | None = None,
    chunk_size: int | None = None,
    rng: RNG | None = None,
    provers=None,
    verifier=None,
    retain_messages: bool | None = None,
    params=None,
) -> ProtocolEngine:
    """One :class:`ProtocolEngine` for a single (non-composed) query.

    The shared construction path of every front-end — in-process
    :class:`Session`, distributed :class:`~repro.net.nodes.AnalystNode`,
    sharded :class:`~repro.net.shard.ShardedAnalyst` — so all of them
    derive parameters, plan and engine identically: same fingerprint,
    same RNG fork labels, hence byte-identical releases under a seed.
    ``provers``/``verifier`` slot in remote proxies or shard-aware
    verifiers without touching the engine.  A front-end that needs the
    parameters *before* the engine exists (to hand them to proxies or
    size its chunks) builds them once with ``query.build_params`` and
    passes them via ``params`` — the engine then uses that exact object,
    so there is never a second, merely-equal parameter set in play.
    """
    if isinstance(query, ComposedQuery):
        raise ParameterError("build_engine takes a single query; expand composures")
    if params is None:
        params = query.build_params(
            num_provers=num_provers, group=group, nb_override=nb_override
        )
    return ProtocolEngine(
        params,
        plan=query.build_plan(),
        provers=provers,
        verifier=verifier,
        rng=rng,
        chunk_size=chunk_size,
        retain_messages=retain_messages,
    )


@dataclass(frozen=True)
class QueryResult:
    """One query's verified release plus its run metadata."""

    query: Query
    release: Release
    engine_result: EngineResult

    @property
    def accepted(self) -> bool:
        return self.release.accepted

    @property
    def audit(self) -> AuditRecord:
        return self.release.audit

    @property
    def estimates(self) -> tuple[float, ...]:
        """Debiased per-lane estimates (noise mean already subtracted)."""
        return self.release.estimate

    @property
    def estimate(self) -> float:
        """Scalar convenience for single-lane queries (count, bounded sum)."""
        return self.release.estimate[0]

    @property
    def counts(self) -> tuple[float, ...]:
        """Histogram convenience: the per-bin estimates."""
        return self.release.estimate

    def argmax(self) -> int:
        """The (noisy) plurality winner of a histogram release."""
        return max(range(len(self.counts)), key=lambda m: self.counts[m])

    @property
    def timer(self) -> StageTimer:
        return self.engine_result.timer


@dataclass(frozen=True)
class SessionResult:
    """All query results of one session plus the budget ledger."""

    results: tuple[QueryResult, ...]
    accountant: PrivacyAccountant

    @property
    def accepted(self) -> bool:
        """True iff every query's release passed verification."""
        return all(result.accepted for result in self.results)

    @property
    def release(self) -> Release:
        """Single-query convenience accessor."""
        if len(self.results) != 1:
            raise ParameterError("session ran multiple queries; use .results")
        return self.results[0].release

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    def total_budget(self) -> tuple[float, float]:
        """Cumulative (ε, δ) under basic composition."""
        return self.accountant.total_basic()


class Session:
    """One verifiable-DP query session: enroll clients, then release.

    Parameters
    ----------
    query:
        A :class:`CountQuery`, :class:`HistogramQuery`,
        :class:`BoundedSumQuery` or :class:`ComposedQuery`.
    num_provers:
        K = 1 is the trusted-curator model, K >= 2 the client-server MPC
        model (each prover adds its own noise; the release debiases all).
    chunk_size:
        None buffers the whole run (audit-replayable, legacy-identical);
        an integer streams it with O(chunk) verifier memory.
    accountant:
        Shared budget ledger; a fresh one is created when omitted.  Each
        executed query charges its honest end-to-end (ε, δ) on release.
    """

    def __init__(
        self,
        query: Query,
        *,
        num_provers: int = 1,
        group: str = "modp-2048",
        nb_override: int | None = None,
        chunk_size: int | None = None,
        rng: RNG | None = None,
        accountant: PrivacyAccountant | None = None,
        retain_messages: bool | None = None,
    ) -> None:
        self.query = query
        self.rng = rng if rng is not None else SystemRNG()
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        queries = list(query.queries) if isinstance(query, ComposedQuery) else [query]
        composed = isinstance(query, ComposedQuery)
        self._engines: list[tuple[Query, ProtocolEngine]] = []
        for index, subquery in enumerate(queries):
            engine_rng = fork_rng(self.rng, f"query-{index}") if composed else self.rng
            engine = build_engine(
                subquery,
                num_provers=num_provers,
                group=group,
                nb_override=nb_override,
                rng=engine_rng,
                chunk_size=chunk_size,
                retain_messages=retain_messages,
            )
            self._engines.append((subquery, engine))
        self._charged: set[int] = set()
        self._result: SessionResult | None = None

    # Introspection ----------------------------------------------------------

    @property
    def phase(self) -> Phase:
        """The (first) engine's lifecycle phase."""
        return self._engines[0][1].phase

    @property
    def phases(self) -> tuple[Phase, ...]:
        """Per-subquery engine phases (composed sessions run sequentially)."""
        return tuple(engine.phase for _, engine in self._engines)

    @property
    def params(self):
        """Single-query convenience: the engine's public parameters."""
        if len(self._engines) != 1:
            raise ParameterError("session runs multiple engines; use .engines")
        return self._engines[0][1].params

    @property
    def engines(self) -> tuple[ProtocolEngine, ...]:
        return tuple(engine for _, engine in self._engines)

    @property
    def client_count(self) -> int:
        return self._engines[0][1]._client_count

    # Submission -------------------------------------------------------------

    def submit(self, values) -> None:
        """Enroll a chunk of clients.

        For simple queries, ``values`` is an iterable of raw values (bits,
        bin choices, bounded ints — whatever the query encodes) or
        pre-built :class:`~repro.core.client.Client` objects.  For a
        composed query, each element is a tuple with one raw value per
        subquery.  May be called any number of times before
        :meth:`release`; the iterable is consumed lazily, chunk by chunk.
        """
        if self._result is not None:
            raise SessionStateError("session already released")
        if len(self._engines) == 1:
            query, engine = self._engines[0]
            engine.submit_clients(self._clients(query, engine, values))
            return
        arity = len(self._engines)
        for record in values:
            record = tuple(record)
            if len(record) != arity:
                raise ParameterError(
                    f"composed record has {len(record)} values, expected {arity}"
                )
            for (query, engine), value in zip(self._engines, record):
                engine.submit_clients(self._clients(query, engine, [value]))

    def _clients(self, query: Query, engine: ProtocolEngine, values):
        for value in values:
            if isinstance(value, Client):
                yield value
                continue
            name = f"client-{engine._client_count}"
            yield query.make_client(name, value, fork_rng(engine.rng, name))

    # Release ----------------------------------------------------------------

    def release(self) -> SessionResult:
        """Drive every engine through its remaining phases and release.

        Idempotent: the result is cached.  Each executed query charges its
        honest budget to the accountant exactly once.
        """
        if self._result is not None:
            return self._result
        results = []
        for index, (query, engine) in enumerate(self._engines):
            engine_result = engine.run_release()
            if index not in self._charged:
                # A released query spends its budget exactly once, even if
                # an exception from a later engine forces a release() retry
                # (engines cache their results; the charge must not repeat).
                epsilon, delta = query.charged_budget()
                self.accountant.charge(epsilon, delta, label=query.label)
                self._charged.add(index)
            results.append(
                QueryResult(
                    query=query,
                    release=engine_result.release,
                    engine_result=engine_result,
                )
            )
        self._result = SessionResult(tuple(results), self.accountant)
        return self._result
