"""Declarative queries: workloads as data.

A query describes *what* to release — the input language, the release
lanes, the privacy budget — and the :class:`repro.api.Session` engine
decides *how*: one phase-driven protocol instance per query, buffered or
streamed.  This is the muBench-style run-table shape (factors × sizes as
data, one engine underneath) applied to verifiable DP:

* :class:`CountQuery` — how many clients hold a 1 (ΠBin, M = 1).
* :class:`HistogramQuery` — M-bin one-hot counts (Section 4.2).
* :class:`BoundedSumQuery` — sums of k-bit values via bit-decomposition
  range proofs and Δ-scaled noise (Lemma B.1).
* :class:`ComposedQuery` — several of the above over the same client
  population, each drawing its own (ε, δ) from the session's
  :class:`~repro.dp.accountant.PrivacyAccountant`.

Every query knows its own honest end-to-end budget
(:meth:`Query.charged_budget`): a histogram release charges (2ε, 2δ)
because a one-hot input change moves two bins.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.client import Client, encode_choice
from repro.core.params import PublicParams, setup
from repro.core.plan import AggregationPlan
from repro.errors import ParameterError
from repro.utils.rng import RNG

__all__ = [
    "Query",
    "CountQuery",
    "HistogramQuery",
    "BoundedSumQuery",
    "ComposedQuery",
]


class Query(abc.ABC):
    """A self-describing verifiable-DP query."""

    epsilon: float
    delta: float

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short name used for accountant ledger rows and result display."""

    @abc.abstractmethod
    def build_params(
        self,
        *,
        num_provers: int,
        group: str,
        nb_override: int | None = None,
    ) -> PublicParams:
        """Agree public parameters for this query's protocol instance."""

    @abc.abstractmethod
    def build_plan(self) -> AggregationPlan:
        """The release-lane shape the engine executes."""

    @abc.abstractmethod
    def encode(self, value) -> list[int]:
        """Client-side encoding of one raw value into the input language L."""

    def make_client(self, name: str, value, rng: RNG) -> Client:
        """A protocol client holding ``value`` (hook for richer encodings)."""
        return Client(name, self.encode(value), rng)

    def charged_budget(self) -> tuple[float, float]:
        """The honest end-to-end (ε, δ) this release spends."""
        return self.epsilon, self.delta


@dataclass(frozen=True)
class CountQuery(Query):
    """How many clients hold a 1 (the paper's core counting query)."""

    epsilon: float
    delta: float

    @property
    def label(self) -> str:
        return "count"

    def build_params(self, *, num_provers, group, nb_override=None) -> PublicParams:
        return setup(
            self.epsilon,
            self.delta,
            num_provers=num_provers,
            dimension=1,
            group=group,
            nb_override=nb_override,
        )

    def build_plan(self) -> AggregationPlan:
        return AggregationPlan.identity(1)

    def encode(self, value) -> list[int]:
        return encode_choice(int(value), 1)


@dataclass(frozen=True)
class HistogramQuery(Query):
    """M-bin one-hot counts (the plurality-election workload)."""

    bins: int
    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if self.bins < 2:
            raise ParameterError("a histogram needs at least 2 bins")

    @property
    def label(self) -> str:
        return f"histogram[{self.bins}]"

    def build_params(self, *, num_provers, group, nb_override=None) -> PublicParams:
        return setup(
            self.epsilon,
            self.delta,
            num_provers=num_provers,
            dimension=self.bins,
            group=group,
            nb_override=nb_override,
        )

    def build_plan(self) -> AggregationPlan:
        return AggregationPlan.identity(self.bins)

    def encode(self, value) -> list[int]:
        return encode_choice(int(value), self.bins)

    def charged_budget(self) -> tuple[float, float]:
        # A one-hot input change touches two bins; each bin is (ε, δ)-DP,
        # so the end-to-end honest budget is (2ε, 2δ) by composition.
        return 2.0 * self.epsilon, 2.0 * self.delta


@dataclass(frozen=True)
class BoundedSumQuery(Query):
    """Verifiable DP sum of k-bit bounded client values.

    Clients commit to the bit decomposition of their value and range-prove
    it (Σ-OR per bit); the engine releases one lane weighted 2^j per bit
    coordinate with Δ = 2^k − 1 scaled Binomial noise.  The coin count is
    calibrated at (ε/Δ, δ/Δ) so the Δ-scaled noise delivers (ε, δ) for
    the Δ-incremental sum query (Lemma B.1).
    """

    value_bits: int
    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if not 1 <= self.value_bits <= 32:
            raise ParameterError("value_bits must be in [1, 32]")

    @property
    def label(self) -> str:
        return f"bounded-sum[{self.value_bits}b]"

    @property
    def sensitivity(self) -> int:
        return (1 << self.value_bits) - 1

    def build_params(self, *, num_provers, group, nb_override=None) -> PublicParams:
        return setup(
            self.epsilon / self.sensitivity,
            min(self.delta / self.sensitivity, 0.5),
            num_provers=num_provers,
            dimension=self.value_bits,
            group=group,
            nb_override=nb_override,
        )

    def build_plan(self) -> AggregationPlan:
        return AggregationPlan.weighted_sum(
            tuple(1 << j for j in range(self.value_bits)), self.sensitivity
        )

    def encode(self, value) -> list[int]:
        value = int(value)
        if not 0 <= value <= self.sensitivity:
            raise ParameterError(f"value {value} outside [0, {self.sensitivity}]")
        return [(value >> j) & 1 for j in range(self.value_bits)]

    def make_client(self, name: str, value, rng: RNG) -> Client:
        from repro.api.clients import RangeClient

        return RangeClient(name, self.encode(value), rng)


@dataclass(frozen=True)
class ComposedQuery(Query):
    """Several queries over one client population, budget-accounted.

    A submitted client record is a tuple with one entry per subquery;
    the session runs one protocol instance per subquery (sequential
    composition) and charges each subquery's honest budget to the shared
    accountant.
    """

    queries: tuple[Query, ...]

    def __init__(self, queries) -> None:
        object.__setattr__(self, "queries", tuple(queries))
        if not self.queries:
            raise ParameterError("a composed query needs at least one subquery")
        if any(isinstance(q, ComposedQuery) for q in self.queries):
            raise ParameterError("composed queries do not nest")

    @property
    def label(self) -> str:
        return "composed[" + ", ".join(q.label for q in self.queries) + "]"

    @property
    def epsilon(self) -> float:
        return sum(q.charged_budget()[0] for q in self.queries)

    @property
    def delta(self) -> float:
        return sum(q.charged_budget()[1] for q in self.queries)

    def build_params(self, **_) -> PublicParams:
        raise ParameterError("composed queries build one params set per subquery")

    def build_plan(self) -> AggregationPlan:
        raise ParameterError("composed queries build one plan per subquery")

    def encode(self, value) -> list[int]:
        raise ParameterError("composed queries encode per subquery")
