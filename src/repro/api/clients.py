"""Clients for the non-paper input languages.

:class:`RangeClient` holds a k-bit bounded value as its bit
decomposition: shares and commitments follow the standard ΠBin client
flow per bit coordinate, and the validity proof is the bit-vector proof
(:mod:`repro.crypto.sigma.bitvec`) over the derived commitments — a
commit-and-prove range proof.  Any observer recovers the value
commitment homomorphically as Π_j c_j^{2^j}.
"""

from __future__ import annotations

from repro.core.client import Client
from repro.core.params import PublicParams
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.bitvec import prove_bit_vector

__all__ = ["RangeClient"]


class RangeClient(Client):
    """A client whose vector is the bit decomposition of a bounded value."""

    def _validity_proof(
        self,
        params: PublicParams,
        openings_km: list[list[Opening]],
        commitments_km: list[list[Commitment]],
    ):
        from repro.core.client import _client_transcript

        pedersen = params.pedersen
        derived_openings = [
            pedersen.add_openings([openings_km[k][m] for k in range(params.num_provers)])
            for m in range(params.dimension)
        ]
        derived_commitments = [
            pedersen.product([commitments_km[k][m] for k in range(params.num_provers)])
            for m in range(params.dimension)
        ]
        transcript = _client_transcript(params, self.name)
        return prove_bit_vector(
            pedersen, derived_commitments, derived_openings, transcript, self.rng
        )
