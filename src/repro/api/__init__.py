"""repro.api — the unified Query/Session interface.

Queries are composable descriptions (*what* to release, at what budget);
a :class:`Session` is the phase-driven engine that executes them
(*how*): ENROLL → VALIDATE → COMMIT_COINS → MORRA → ADJUST → RELEASE,
over the :mod:`repro.core.messages` types and the :mod:`repro.mpc.bus`
transport, buffered for audit replay or streamed in chunks for O(chunk)
verifier memory at paper scale.

Quick start::

    from repro.api import CountQuery, Session

    session = Session(CountQuery(epsilon=1.0, delta=2**-10), group="p128-sim")
    session.submit([1, 0, 1, 1, 0, 1])
    result = session.release()
    assert result.accepted
    print(result.estimate)

See ``README.md`` for the full tour and ``DESIGN.md`` for the state
machine.
"""

from repro.api.clients import RangeClient
from repro.api.engine import EngineResult, ProtocolEngine
from repro.api.phases import Phase, TRANSITIONS
from repro.api.queries import (
    BoundedSumQuery,
    ComposedQuery,
    CountQuery,
    HistogramQuery,
    Query,
)
from repro.api.session import QueryResult, Session, SessionResult

__all__ = [
    "Query",
    "CountQuery",
    "HistogramQuery",
    "BoundedSumQuery",
    "ComposedQuery",
    "Session",
    "SessionResult",
    "QueryResult",
    "Phase",
    "TRANSITIONS",
    "ProtocolEngine",
    "EngineResult",
    "RangeClient",
]
