"""The phase-driven protocol engine behind :class:`repro.api.Session`.

One :class:`ProtocolEngine` executes one ΠBin instance — a counting
query, a histogram, or a weighted-lane (bounded-sum) query, as described
by its :class:`~repro.core.plan.AggregationPlan` — over the
:mod:`repro.core.messages` types and the :mod:`repro.mpc.bus` transport.
It replaces the monolithic ``run_*()`` methods with an explicit phase
machine (:mod:`repro.api.phases`) and supports two execution modes:

**Buffered** (``chunk_size=None``) retains every public message, exactly
reproducing the legacy ``VerifiableBinomialProtocol.run`` execution order
— same RNG draw sequence per party, hence byte-identical releases under
seeded RNGs — and yields a result that can still be published to a
bulletin board for third-party replay.

**Streaming** (``chunk_size=n``) accepts clients in chunks and verifies
coins in chunks: client validity proofs fold into per-chunk Σ-batches and
running Line 13 products, coin proofs fold into a per-prover evolving
transcript with per-chunk RLC checks, and Line 12 products accumulate as
chunks retire.  Nothing proportional to nb or to the client count is
retained — peak verifier memory is O(chunk) — which is what lets the
paper-scale nb = 262,144 workload run on a laptop
(``benchmarks/bench_streaming_session.py``).  Each coin is still
committed strictly before its Morra bit is drawn, so the soundness
argument is unchanged; chunking only reorders *independent* messages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.phases import Phase, advance
from repro.core.messages import (
    ClientBroadcast,
    ClientShareMessage,
    ProverStatus,
    Release,
)
from repro.core.params import PublicParams
from repro.core.plan import AggregationPlan
from repro.core.prover import ContextAccumulator, Prover
from repro.core.verifier import PublicVerifier
from repro.errors import ParameterError, ProtocolAbort, SessionStateError
from repro.mpc.bus import SimulatedNetwork
from repro.mpc.morra import run_morra_batch
from repro.utils.rng import RNG, SystemRNG
from repro.utils.timing import StageTimer

__all__ = [
    "ProtocolEngine",
    "EngineResult",
    "fork_rng",
    "add_phase_observer",
    "remove_phase_observer",
]

# Stage names aligned with Table 1's columns.
STAGE_SIGMA_PROOF = "sigma-proof"
STAGE_SIGMA_VERIFY = "sigma-verification"
STAGE_MORRA = "morra"
STAGE_AGGREGATION = "aggregation"
STAGE_CHECK = "check"
STAGE_CLIENT_PROOF = "client-proof"
STAGE_CLIENT_VERIFY = "client-verification"


def fork_rng(rng: RNG, label: str) -> RNG:
    """A per-party child stream (system randomness when not forkable)."""
    forker = getattr(rng, "fork", None)
    return forker(label) if forker is not None else SystemRNG()


# Phase-transition observers: the observability layer (repro.net.metrics)
# hooks engine phase timings here without the engine importing it.  Each
# observer is called as ``observer(previous_phase, new_phase, elapsed_s)``
# where ``elapsed_s`` is the wall-clock time the engine spent in
# ``previous_phase`` (per transition, so a streamed run's repeated
# COMMIT_COINS -> MORRA -> ADJUST loop yields one observation per lap).
# Observers run on the engine's thread and must be cheap and non-raising.
_PHASE_OBSERVERS: list = []


def add_phase_observer(observer) -> None:
    """Register a ``(previous, new, elapsed_s)`` phase-transition callback."""
    _PHASE_OBSERVERS.append(observer)


def remove_phase_observer(observer) -> None:
    """Unregister a previously added phase observer (no-op if absent)."""
    try:
        _PHASE_OBSERVERS.remove(observer)
    except ValueError:
        pass


@dataclass
class EngineResult:
    """One protocol run's release plus run metadata.

    Buffered runs retain the public messages (``broadcasts``,
    ``coin_messages``, ``public_bits``, ``outputs``) so the run can be
    published for byte-level third-party audit replay
    (:func:`repro.core.bulletin.publish_run`); streamed runs drop them —
    that is the point — and keep only the release and audit record.
    """

    release: Release
    timer: StageTimer
    network: SimulatedNetwork
    client_count: int
    public_bits: dict[str, list[list[int]]] = field(default_factory=dict)
    broadcasts: list = field(default_factory=list)
    coin_messages: list = field(default_factory=list)
    outputs: list = field(default_factory=list)

    def to_bulletin(self, params: PublicParams):
        """Serialize this run's public messages onto a bulletin board."""
        from repro.core.bulletin import publish_run

        return publish_run(
            params, self.broadcasts, self.coin_messages, self.public_bits, self.outputs
        )


class ProtocolEngine:
    """Phase machine executing one ΠBin instance over a message bus."""

    def __init__(
        self,
        params: PublicParams,
        *,
        plan: AggregationPlan | None = None,
        provers: list[Prover] | None = None,
        verifier: PublicVerifier | None = None,
        rng: RNG | None = None,
        chunk_size: int | None = None,
        network: SimulatedNetwork | None = None,
        retain_messages: bool | None = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError("chunk_size must be positive")
        self.params = params
        self.plan = plan if plan is not None else AggregationPlan.identity(params.dimension)
        if self.plan.dimension != params.dimension:
            raise ParameterError("plan dimension does not match params dimension")
        self.rng = rng if rng is not None else SystemRNG()
        self.chunk_size = chunk_size
        self.streaming = chunk_size is not None
        self.retain_messages = (
            retain_messages if retain_messages is not None else not self.streaming
        )
        if provers is None:
            provers = [
                Prover(f"prover-{k}", params, fork_rng(self.rng, f"prover-{k}"), plan=self.plan)
                for k in range(params.num_provers)
            ]
        if len(provers) != params.num_provers:
            raise ParameterError(
                f"expected {params.num_provers} provers, got {len(provers)}"
            )
        names = [p.name for p in provers]
        if len(set(names)) != len(names) or "verifier" in names:
            raise ParameterError("prover names must be unique and not 'verifier'")
        self.provers = provers
        self.verifier = verifier or PublicVerifier(
            params, fork_rng(self.rng, "verifier"), plan=self.plan
        )
        self.network = network or SimulatedNetwork(buffering=self.retain_messages)
        for name in [self.verifier.name] + names:
            if name not in self.network.parties:
                self.network.register(name)
        self.timer = StageTimer()
        self.phase = Phase.ENROLL
        self._phase_entered = time.perf_counter()

        # Client-phase state.
        self._context = ContextAccumulator()
        self._client_count = 0
        self._valid_ids: list[str] = []
        self._chunk_entries: list[tuple[ClientBroadcast, list[ClientShareMessage]]] = []
        # Buffered-mode retention.
        self._broadcasts: list[ClientBroadcast] = []
        self._privates: list[list[ClientShareMessage]] = []
        self._public_bits: dict[str, list[list[int]]] = {}
        self._result: EngineResult | None = None

    # Phase bookkeeping ------------------------------------------------------

    def _advance(self, target: Phase) -> None:
        previous = self.phase
        self.phase = advance(self.phase, target)
        now = time.perf_counter()
        elapsed = now - self._phase_entered
        self._phase_entered = now
        # Wall-clock per phase, alongside Table 1's work-stage timings:
        # ``phase:<name>`` accumulates across a streamed run's chunk laps.
        self.timer.add(f"phase:{previous.value}", elapsed)
        for observer in list(_PHASE_OBSERVERS):
            observer(previous, self.phase, elapsed)

    def _require(self, phase: Phase, what: str) -> None:
        if self.phase is not phase:
            raise SessionStateError(
                f"{what} requires phase {phase.value!r}, session is in {self.phase.value!r}"
            )

    # ENROLL -----------------------------------------------------------------

    def submit_clients(self, clients) -> None:
        """Enroll :class:`~repro.core.client.Client` objects (any iterable).

        Streaming engines process every ``chunk_size`` enrollments
        immediately — validation, audit verdicts, Line 13 folds — and drop
        the chunk; buffered engines retain everything for the audit replay.
        """
        self._require(Phase.ENROLL, "submit")
        for client in clients:
            # Unconditional: a duplicate client id is a ParameterError, as
            # in the legacy entry point — a client must not enroll twice.
            self.network.register(client.name)
            with self.timer.stage(STAGE_CLIENT_PROOF):
                broadcast, privates = client.submit(self.params)
            self._enroll(broadcast, privates)

    def submit_prepared(self, pairs) -> None:
        """Enroll pre-built submissions: (broadcast, [share message per
        prover]) pairs, as a real serving deployment would receive them."""
        self._require(Phase.ENROLL, "submit")
        for broadcast, privates in pairs:
            self.network.register(broadcast.client_id)
            self._enroll(broadcast, list(privates))

    # Sharded enrollment ------------------------------------------------------
    #
    # A sharded front-end (repro.net.shard) validates clients on shard
    # workers and routes private shares itself; the engine still owns the
    # two pieces of client-phase state every later phase depends on — the
    # broadcast-context digest that binds all coin transcripts, and the
    # ordered valid-id list the release aggregates over.  These hooks let
    # the front-end feed both without the engine re-verifying anything,
    # while RNG consumption stays exactly that of an unsharded run (the
    # hooks draw nothing), which is what keeps sharded releases
    # byte-identical.

    def adopt_enrollment(self, broadcast: ClientBroadcast) -> None:
        """Record an enrollment whose validation happens elsewhere:
        context digest, client registry and count only.  Raises
        ``ParameterError`` on a duplicate or reserved client id, exactly
        as :meth:`submit_prepared` would."""
        self._require(Phase.ENROLL, "submit")
        self.network.register(broadcast.client_id)
        self._context.absorb(broadcast)
        self._client_count += 1

    def adopt_valid_ids(self, valid_ids) -> None:
        """Append externally validated client ids (submission order)."""
        self._require(Phase.ENROLL, "submit")
        self._valid_ids.extend(valid_ids)

    def _enroll(
        self, broadcast: ClientBroadcast, privates: list[ClientShareMessage]
    ) -> None:
        if len(privates) != self.params.num_provers:
            raise ParameterError("one private share message per prover required")
        self.network.broadcast(broadcast.client_id, broadcast)
        for prover, message in zip(self.provers, privates):
            self.network.send(broadcast.client_id, prover.name, message)
        self._context.absorb(broadcast)
        self._client_count += 1
        if self.streaming:
            self._chunk_entries.append((broadcast, privates))
            if len(self._chunk_entries) >= self.chunk_size:
                self._process_client_chunk()
        else:
            self._broadcasts.append(broadcast)
            self._privates.append(privates)

    def _process_client_chunk(self) -> None:
        """Validate one chunk of enrollments and fold it away (streaming)."""
        entries = self._chunk_entries
        self._chunk_entries = []
        if not entries:
            return
        complaints: dict[str, list[str]] = {}
        for k, prover in enumerate(self.provers):
            bad = [
                broadcast.client_id
                for broadcast, privates in entries
                if not prover.receive_client_share(broadcast, privates[k], k)
            ]
            if bad:
                complaints[prover.name] = bad
        broadcasts = [broadcast for broadcast, _ in entries]
        with self.timer.stage(STAGE_CLIENT_VERIFY):
            valid = self.verifier.validate_clients(broadcasts, complaints)
        self.verifier.fold_client_commitments(broadcasts, valid)
        valid_set = set(valid)
        invalid = [b.client_id for b in broadcasts if b.client_id not in valid_set]
        for prover in self.provers:
            prover.absorb_validated_clients(valid, discard=invalid)
        self._valid_ids.extend(valid)

    # The protocol body ------------------------------------------------------

    def run_release(self) -> EngineResult:
        """Drive the remaining phases to DONE and return the result.

        Idempotent: once the run completes, the cached result is returned.
        """
        if self._result is not None:
            return self._result
        self._require(Phase.ENROLL, "release")
        # VALIDATE: finalize the public client record and context digest.
        if self.streaming:
            self._process_client_chunk()
            self._advance(Phase.VALIDATE)
            valid_ids = self._valid_ids
        else:
            self._advance(Phase.VALIDATE)
            complaints: dict[str, list[str]] = {}
            for k, prover in enumerate(self.provers):
                bad = [
                    broadcast.client_id
                    for broadcast, privates in zip(self._broadcasts, self._privates)
                    if not prover.receive_client_share(broadcast, privates[k], k)
                ]
                if bad:
                    complaints[prover.name] = bad
            with self.timer.stage(STAGE_CLIENT_VERIFY):
                valid_ids = self.verifier.validate_clients(self._broadcasts, complaints)
            self._valid_ids = valid_ids
        context = self._context.digest()

        if self.streaming:
            coin_ok, coin_messages = self._coin_phases_streamed(context)
        else:
            coin_ok, coin_messages = self._coin_phases_buffered(context)

        self._advance(Phase.RELEASE)
        release, outputs = self._assemble_release(coin_ok)
        self._advance(Phase.DONE)
        self._result = EngineResult(
            release=release,
            timer=self.timer,
            network=self.network,
            client_count=self._client_count,
            public_bits=self._public_bits if not self.streaming else {},
            broadcasts=self._broadcasts,
            coin_messages=coin_messages if not self.streaming else [],
            outputs=outputs,
        )
        return self._result

    def _coin_phases_buffered(self, context: bytes):
        """Lines 4–9 exactly as the legacy monolithic run: all provers
        commit, one cross-prover batch verification, then Morra + Line 12
        per prover."""
        params = self.params
        self._advance(Phase.COMMIT_COINS)
        coin_messages = []
        for prover in self.provers:
            with self.timer.stage(STAGE_SIGMA_PROOF):
                message = prover.commit_coins(context)
            coin_messages.append(message)
            self.network.broadcast(prover.name, message)
        with self.timer.stage(STAGE_SIGMA_VERIFY):
            coin_ok = self.verifier.verify_all_coin_commitments(coin_messages, context)

        lanes = self.plan.lanes
        for prover in self.provers:
            if not coin_ok[prover.name]:
                continue
            self._advance(Phase.MORRA)
            with self.timer.stage(STAGE_MORRA):
                outcome = run_morra_batch(
                    [prover, self.verifier],
                    params.q,
                    params.nb * lanes,
                    network=self.network,
                )
                flat = outcome.bits()
            bits = [
                flat[j * lanes : (j + 1) * lanes] for j in range(params.nb)
            ]
            self._public_bits[prover.name] = bits
            self._advance(Phase.ADJUST)
            with self.timer.stage(STAGE_CHECK):
                self.verifier.apply_public_bits(prover.name, bits)
        return coin_ok, coin_messages

    def _coin_phases_streamed(self, context: bytes):
        """Lines 4–9 chunk by chunk per prover: commit chunk → verify
        chunk → Morra chunk → fold Line 12 → drop chunk."""
        params = self.params
        lanes = self.plan.lanes
        chunk = self.chunk_size
        coin_ok: dict[str, bool] = {}
        self._public_bits = {}
        for prover in self.provers:
            prover.begin_coin_stream(context)
            self.verifier.begin_coin_stream(prover.name, context)
            ok = True
            remaining = params.nb
            while remaining > 0:
                count = min(chunk, remaining)
                self._advance(Phase.COMMIT_COINS)
                with self.timer.stage(STAGE_SIGMA_PROOF):
                    message = prover.commit_coin_chunk(count)
                self.network.broadcast(prover.name, message)
                with self.timer.stage(STAGE_SIGMA_VERIFY):
                    ok = self.verifier.verify_coin_chunk(message)
                if not ok:
                    break
                self._advance(Phase.MORRA)
                with self.timer.stage(STAGE_MORRA):
                    outcome = run_morra_batch(
                        [prover, self.verifier],
                        params.q,
                        count * lanes,
                        network=self.network,
                    )
                    flat = outcome.bits()
                bits = [flat[j * lanes : (j + 1) * lanes] for j in range(count)]
                self._advance(Phase.ADJUST)
                with self.timer.stage(STAGE_CHECK):
                    self.verifier.apply_public_bits_chunk(prover.name, bits)
                prover.absorb_public_bits(bits)
                remaining -= count
            if ok:
                with self.timer.stage(STAGE_SIGMA_VERIFY):
                    ok = self.verifier.finish_coin_stream(prover.name)
            coin_ok[prover.name] = ok
        return coin_ok, []

    def _assemble_release(self, coin_ok: dict[str, bool]):
        """Lines 10–13 plus aggregation into the public release."""
        params = self.params
        q = params.q
        lanes = self.plan.lanes
        verifier = self.verifier
        outputs: dict[str, object] = {}
        all_outputs = []
        if self.streaming:
            for k, prover in enumerate(self.provers):
                if not coin_ok.get(prover.name):
                    continue
                with self.timer.stage(STAGE_AGGREGATION):
                    try:
                        output = prover.finish_output()
                    except ProtocolAbort as exc:
                        verifier.audit.provers[prover.name] = ProverStatus.ABORTED
                        verifier.audit.note(str(exc))
                        continue
                all_outputs.append(output)
                self.network.broadcast(prover.name, output)
                with self.timer.stage(STAGE_CHECK):
                    if verifier.check_prover_output_folded(output, k):
                        outputs[prover.name] = output
        else:
            valid_set = set(self._valid_ids)
            included = [b for b in self._broadcasts if b.client_id in valid_set]
            for k, prover in enumerate(self.provers):
                if not coin_ok.get(prover.name):
                    continue
                with self.timer.stage(STAGE_AGGREGATION):
                    try:
                        output = prover.compute_output(
                            self._valid_ids, self._public_bits[prover.name]
                        )
                    except ProtocolAbort as exc:
                        verifier.audit.provers[prover.name] = ProverStatus.ABORTED
                        verifier.audit.note(str(exc))
                        continue
                all_outputs.append(output)
                self.network.broadcast(prover.name, output)
                client_commitments = [
                    [b.share_commitments[k][m] for b in included]
                    for m in range(params.dimension)
                ]
                with self.timer.stage(STAGE_CHECK):
                    if verifier.check_prover_output(output, client_commitments):
                        outputs[prover.name] = output

        audit = verifier.audit
        accepted = (
            len(audit.provers) == len(self.provers) and audit.all_provers_honest()
        )
        raw = tuple(
            sum(outputs[name].y[lane] for name in outputs) % q if outputs else 0
            for lane in range(lanes)
        )
        noise_means = self.plan.noise_mean(params.num_provers, params.nb)
        estimate = tuple(value - mean for value, mean in zip(raw, noise_means))
        release = Release(
            raw=raw,
            estimate=estimate,
            accepted=accepted,
            audit=audit,
            epsilon=params.epsilon,
            delta=params.delta,
        )
        return release, all_outputs
