"""Hash-based commitments for Morra.

Algorithm 1 needs a commitment scheme but *not* a homomorphic one — the
values are opened in full during the reveal phase.  A hash commitment
``c = H(domain || m || r)`` with 256-bit randomness is

* binding under collision resistance of SHA-512/256, and
* hiding because r has 256 bits of entropy,

and it costs one hash per commit instead of two exponentiations, which is
why Table 1's Morra column is an order of magnitude cheaper per coin than
the Σ-proof columns.  (Pedersen would work too — the protocol layer only
needs ``commit``/``verify``.)
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import CommitmentOpeningError
from repro.utils.encoding import encode_length_prefixed, int_to_bytes
from repro.utils.rng import RNG, default_rng

__all__ = ["HashCommitment", "HashCommitmentScheme"]

_RANDOMNESS_BYTES = 32


@dataclass(frozen=True)
class HashCommitment:
    """An opaque 32-byte commitment digest."""

    digest: bytes

    def to_bytes(self) -> bytes:
        return self.digest


class HashCommitmentScheme:
    """Commitments to integers via SHA-512/256 with explicit domain."""

    def __init__(self, domain: bytes = b"repro.morra.commit") -> None:
        self._domain = domain

    @property
    def domain(self) -> bytes:
        """The domain-separation label; all committing parties must agree
        on it (remote provers receive it over the wire)."""
        return self._domain

    def _digest(self, value: int, randomness: bytes) -> bytes:
        payload = encode_length_prefixed(self._domain, int_to_bytes(value), randomness)
        return hashlib.sha512(payload).digest()[:32]

    def commit(self, value: int, rng: RNG | None = None) -> tuple[HashCommitment, bytes]:
        """Commit to ``value``; returns (commitment, randomness)."""
        randomness = default_rng(rng).random_bytes(_RANDOMNESS_BYTES)
        return HashCommitment(self._digest(value, randomness)), randomness

    def verify(self, commitment: HashCommitment, value: int, randomness: bytes) -> None:
        """Raise :class:`CommitmentOpeningError` unless the opening matches."""
        expected = self._digest(value, randomness)
        # Constant-time comparison: the commitment is public but there is
        # no reason to leak match length through timing.
        if not hmac.compare_digest(expected, commitment.digest):
            raise CommitmentOpeningError("hash commitment opening mismatch")

    def opens_to(self, commitment: HashCommitment, value: int, randomness: bytes) -> bool:
        return hmac.compare_digest(self._digest(value, randomness), commitment.digest)
