"""Multi-party protocol substrate.

Provides the simulated network the protocols run over, the Morra
commit-reveal coin-flipping protocol (Algorithm 1) that realizes the
public-randomness oracle ``O_morra``, and the adversary framework for
active (arbitrarily deviating) participants.
"""

from repro.mpc.bus import SimulatedNetwork, Envelope
from repro.mpc.party import Party
from repro.mpc.commit import HashCommitmentScheme, HashCommitment
from repro.mpc.pedersen_morra import PedersenMorraScheme
from repro.mpc.morra import (
    MorraParticipant,
    run_morra,
    run_morra_batch,
    morra_bits,
    morra_scalar,
)
from repro.mpc.adversary import (
    HonestMorraParticipant,
    BiasedMorraParticipant,
    EquivocatingMorraParticipant,
    AbortingMorraParticipant,
    StuckMorraParticipant,
)

__all__ = [
    "SimulatedNetwork",
    "Envelope",
    "Party",
    "HashCommitmentScheme",
    "HashCommitment",
    "PedersenMorraScheme",
    "MorraParticipant",
    "run_morra",
    "run_morra_batch",
    "morra_bits",
    "morra_scalar",
    "HonestMorraParticipant",
    "BiasedMorraParticipant",
    "EquivocatingMorraParticipant",
    "AbortingMorraParticipant",
    "StuckMorraParticipant",
]
