"""Pedersen-backed commitments for Morra.

Algorithm 1 is written over a *generic* commitment scheme; our default is
the hash scheme (fast, binding under collision resistance).  This adapter
lets Morra run over Pedersen instead — matching deployments that already
carry Pedersen parameters and want a single hardness assumption (discrete
log) for the whole protocol, at ~2 exponentiations per commit.

The trade-off is quantified in
``benchmarks/bench_ablation_morra_commitments.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pedersen import Opening, PedersenParams
from repro.errors import CommitmentOpeningError, EncodingError, NotOnGroupError
from repro.utils.encoding import bytes_to_int, int_to_bytes
from repro.utils.rng import RNG, default_rng

__all__ = ["PedersenMorraScheme"]


@dataclass(frozen=True)
class _PedersenMorraCommitment:
    """Wraps the group element so the Morra layer sees an opaque token."""

    encoded: bytes

    @property
    def digest(self) -> bytes:  # interface parity with HashCommitment
        return self.encoded

    def to_bytes(self) -> bytes:
        return self.encoded


class PedersenMorraScheme:
    """Adapter satisfying the Morra commitment-scheme interface.

    ``commit(value, rng) -> (commitment, randomness_bytes)`` and
    ``verify(commitment, value, randomness_bytes)`` — randomness is
    carried as canonical bytes because Morra broadcasts it on reveal.
    """

    def __init__(self, params: PedersenParams) -> None:
        self._params = params

    def commit(self, value: int, rng: RNG | None = None):
        rng = default_rng(rng)
        commitment, opening = self._params.commit_fresh(value, rng)
        randomness = int_to_bytes(opening.randomness, self._params.group.scalar_bytes)
        return _PedersenMorraCommitment(commitment.to_bytes()), randomness

    def verify(self, commitment, value: int, randomness: bytes) -> None:
        from repro.crypto.pedersen import Commitment

        try:
            element = self._params.group.from_bytes(commitment.encoded)
        except (EncodingError, NotOnGroupError) as exc:
            raise CommitmentOpeningError(f"malformed commitment: {exc}") from exc
        expected = Commitment(element)
        opening = Opening(value % self._params.q, bytes_to_int(randomness) % self._params.q)
        if not self._params.opens_to(expected, opening):
            raise CommitmentOpeningError("Pedersen Morra opening mismatch")

    def opens_to(self, commitment, value: int, randomness: bytes) -> bool:
        try:
            self.verify(commitment, value, randomness)
        except CommitmentOpeningError:
            return False
        return True
