"""Base class for protocol participants."""

from __future__ import annotations

from repro.utils.rng import RNG, SystemRNG

__all__ = ["Party"]


class Party:
    """A named participant with its own randomness tape.

    The paper models participants as "next-message-computing-algorithms"
    with an input tape and internal randomness ⃗r (Section 3.1); subclasses
    implement the per-protocol message functions.  Giving every party its
    own RNG keeps simulated runs reproducible per party and lets tests
    corrupt one party's randomness without touching others.
    """

    def __init__(self, name: str, rng: RNG | None = None) -> None:
        self.name = name
        self.rng = rng if rng is not None else SystemRNG()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
