"""Actively corrupted Morra participants.

The paper's security model allows participants to "deviate from protocol
specifications arbitrarily".  These subclasses implement the canonical
deviations; the test-suite asserts each is either harmless (bias — the
output stays uniform while one party is honest) or detected (equivocation,
silence — :class:`ProtocolAbort`/:class:`EarlyExit`).
"""

from __future__ import annotations

from repro.mpc.morra import MorraParticipant

__all__ = [
    "HonestMorraParticipant",
    "BiasedMorraParticipant",
    "EquivocatingMorraParticipant",
    "AbortingMorraParticipant",
    "StuckMorraParticipant",
]


class HonestMorraParticipant(MorraParticipant):
    """Alias making intent explicit in experiment scripts."""


class BiasedMorraParticipant(MorraParticipant):
    """Always contributes a fixed value instead of a uniform one.

    Harmless: the sum of contributions is still uniform provided at least
    one other participant sampled honestly (the hiding property prevents
    this party from correlating with others).
    """

    def __init__(self, name: str, fixed_value: int = 0, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.fixed_value = fixed_value

    def sample_values(self, q: int, count: int) -> list[int]:
        return [self.fixed_value % q] * count


class EquivocatingMorraParticipant(MorraParticipant):
    """Tries to change its contribution after seeing others' openings.

    Because it reveals *after* observing later parties in the reverse
    order, it recomputes the value that would force the batch's first
    coin toward ``target_bit`` — but the new value no longer matches its
    commitment, so the binding check aborts the protocol and names it.
    """

    def __init__(self, name: str, target_bit: int = 1, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.target_bit = target_bit

    def reveal(self, values, randomness, observed):
        if not observed:
            # Nobody to adapt to (we reveal first); behave honestly.
            return values, randomness
        tweaked = list(values)
        tweaked[0] = (values[0] + 1)  # any change breaks the opening
        return tweaked, randomness


class AbortingMorraParticipant(MorraParticipant):
    """Goes silent during the reveal phase (early exit)."""

    def reveal(self, values, randomness, observed):
        return None


class StuckMorraParticipant(MorraParticipant):
    """Fails to contribute at the sampling step."""

    def sample_values(self, q: int, count: int):
        return None
