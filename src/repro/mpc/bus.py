"""An in-memory message bus standing in for the network.

The paper measures local computation only ("we do not include time spent
to communicate over the network"), so the substrate's job is fidelity of
*semantics*, not of latency: ordered point-to-point channels, broadcast,
and per-protocol traffic accounting (bytes and message counts), which the
bench harness reports alongside timings.

Messages are delivered synchronously in send order per (sender, recipient)
pair — the model every protocol in the paper assumes.  Traffic accounting
is *exact* for every message with a wire codec in
:mod:`repro.crypto.serialization` (the full protocol message set of ΠBin):
the payload's real encoded frame length is charged, so communication-cost
numbers in benchmarks equal actual wire bytes.  Sizing reuses the
encode-once fan-out cache (:func:`repro.crypto.serialization.
encode_message_cached`, populated when a front-end ships the same
message to K servers or S shard workers) whenever an encoding is
already at hand, but never inserts into it — a buffered session retains
its messages, and accounting must not pin every frame alongside them.
The accounted byte counts are identical either way.  Payloads without a
codec fall back to a best-effort ``to_bytes``/``__len__`` estimate.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EncodingError, ParameterError, ProtocolAbort

__all__ = ["Envelope", "SimulatedNetwork"]


@dataclass(frozen=True)
class Envelope:
    """A delivered message: sender, recipient ('*' for broadcast), payload."""

    sender: str
    recipient: str
    payload: Any


_wire_size = None  # resolved lazily; serialization imports core which imports us


def _payload_size(payload: Any) -> int:
    """Byte size of a payload for traffic accounting.

    Exact (real encoded frame length) when the payload type is in the
    serialization registry; best-effort estimation otherwise.
    """
    global _wire_size
    if _wire_size is None:
        from repro.crypto.serialization import wire_size

        _wire_size = wire_size
    try:
        exact = _wire_size(payload)
    except EncodingError:
        exact = None
    if exact is not None:
        return exact
    return _estimate_size(payload)


def _estimate_size(payload: Any) -> int:
    """Best-effort byte size for payloads without a wire codec."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if hasattr(payload, "to_bytes") and not isinstance(payload, int):
        try:
            return len(payload.to_bytes())
        except TypeError:
            pass
    if isinstance(payload, int):
        return max(1, (payload.bit_length() + 7) // 8)
    if isinstance(payload, (tuple, list)):
        return sum(_estimate_size(item) for item in payload)
    if isinstance(payload, dict):
        return sum(_estimate_size(k) + _estimate_size(v) for k, v in payload.items())
    return 0


@dataclass
class SimulatedNetwork:
    """Synchronous in-memory channels between named parties.

    ``buffering=False`` turns the bus into a pure accounting transport:
    traffic is still counted per sender, but payloads are not retained in
    delivery queues.  The streaming session engine uses this so undrained
    broadcast queues (every protocol message × every registered client)
    cannot dominate peak memory; ``receive`` on a non-buffering bus is a
    protocol abort, exactly as an unexpectedly silent peer would be.
    """

    parties: set[str] = field(default_factory=set)
    _queues: dict[tuple[str, str], deque] = field(default_factory=lambda: defaultdict(deque))
    bytes_sent: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    messages_sent: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    log: list[Envelope] = field(default_factory=list)
    record_log: bool = False
    buffering: bool = True

    def register(self, name: str) -> None:
        if name in self.parties:
            raise ParameterError(f"party {name!r} already registered")
        if name == "*":
            raise ParameterError("'*' is reserved for broadcast")
        self.parties.add(name)

    def _check_party(self, name: str) -> None:
        if name not in self.parties:
            raise ParameterError(f"unknown party {name!r}")

    def send(self, sender: str, recipient: str, payload: Any) -> None:
        """Point-to-point ordered delivery."""
        self._check_party(sender)
        self._check_party(recipient)
        if self.buffering:
            self._queues[(sender, recipient)].append(payload)
        self._account(sender, recipient, payload)

    def broadcast(self, sender: str, payload: Any) -> None:
        """Deliver to every other party (and the public log)."""
        self._check_party(sender)
        if self.buffering:
            for recipient in sorted(self.parties):
                if recipient != sender:
                    self._queues[(sender, recipient)].append(payload)
        self._account(sender, "*", payload)

    def _account(self, sender: str, recipient: str, payload: Any) -> None:
        self.bytes_sent[sender] += _payload_size(payload)
        self.messages_sent[sender] += 1
        if self.record_log:
            self.log.append(Envelope(sender, recipient, payload))

    def receive(self, recipient: str, sender: str) -> Any:
        """Pop the next message from ``sender`` to ``recipient``.

        Raises :class:`ProtocolAbort` when no message is waiting — in a
        synchronous protocol a missing expected message *is* an abort
        (the peer went silent).
        """
        self._check_party(recipient)
        queue = self._queues[(sender, recipient)]
        if not queue:
            raise ProtocolAbort(
                f"{recipient!r} expected a message from {sender!r} but none arrived",
                party=sender,
            )
        return queue.popleft()

    def try_receive(self, recipient: str, sender: str) -> Any | None:
        """Non-raising :meth:`receive`; None when the queue is empty."""
        self._check_party(recipient)
        queue = self._queues[(sender, recipient)]
        return queue.popleft() if queue else None

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())
