"""Π_morra — commit-reveal sampling of public randomness (Algorithm 1).

K parties jointly sample a uniform value that none of them controls:

1. each party k samples m_k ← Z_q uniformly (an adversary may bias its
   own m_k — it doesn't matter),
2. **Commit**: parties broadcast Com(m_k, r_k) in lexicographic order,
3. **Reveal**: once *all* commitments are in, parties open in *reverse*
   order (the reverse order guarantees each party's value was fixed
   before it saw any other opening); any failed opening or missing
   message aborts the protocol,
4. X = Σ m_k mod q is uniform as long as one party was honest; a bit is
   extracted by thresholding at ⌈q/2⌉ (bias O(1/q), negligible).

This securely computes the oracle ``O_morra`` against a dishonest
majority of *active* adversaries: hiding prevents copying another party's
value, binding prevents changing one's value after the fact, and early
exit is detected (and, per the paper, not a security breach — the output
is simply discarded).

``run_morra_batch`` runs many independent instances in one commit round
and one reveal round (parallel composition, footnote 7) — this is how
ΠBin obtains its nb public coins at Table 1's "Morra" cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EarlyExit, ParameterError, ProtocolAbort, VerificationError
from repro.mpc.bus import SimulatedNetwork
from repro.mpc.commit import HashCommitment, HashCommitmentScheme
from repro.mpc.party import Party

__all__ = [
    "MorraParticipant",
    "MorraOutcome",
    "run_morra",
    "run_morra_batch",
    "morra_bits",
    "morra_scalar",
]


class MorraParticipant(Party):
    """An honest Morra participant.

    Subclasses in :mod:`repro.mpc.adversary` override the three hook
    methods to deviate arbitrarily (bias, equivocate, abort, stall).
    """

    def sample_values(self, q: int, count: int) -> list[int]:
        """Step 1: choose contributions (honest: uniform on Z_q)."""
        return [self.rng.field_element(q) for _ in range(count)]

    def commitments(
        self, scheme: HashCommitmentScheme, values: list[int]
    ) -> tuple[list[HashCommitment], list[bytes]]:
        """Step 2: commit to each contribution."""
        commitments: list[HashCommitment] = []
        randomness: list[bytes] = []
        for value in values:
            c, r = scheme.commit(value, self.rng)
            commitments.append(c)
            randomness.append(r)
        return commitments, randomness

    def reveal(
        self, values: list[int], randomness: list[bytes], observed: dict[str, list[int]]
    ) -> tuple[list[int], list[bytes]] | None:
        """Step 3: open the commitments.

        ``observed`` maps party names to values already revealed by later
        parties in the reverse order — an adversary could try to use this
        (binding stops it).  Returning None models going silent.
        """
        return values, randomness


@dataclass(frozen=True)
class MorraOutcome:
    """The public result of a batch of Morra instances."""

    values: tuple[int, ...]
    q: int

    def bits(self) -> list[int]:
        """Threshold each value at ⌈q/2⌉ (Algorithm 1, step 4)."""
        half = (self.q + 1) // 2  # ⌈q/2⌉ for odd q
        return [0 if value <= half else 1 for value in self.values]


def run_morra_batch(
    participants: list[MorraParticipant],
    q: int,
    count: int,
    *,
    network: SimulatedNetwork | None = None,
    scheme: HashCommitmentScheme | None = None,
) -> MorraOutcome:
    """Run ``count`` parallel Morra instances among ``participants``.

    Raises :class:`ProtocolAbort` (or :class:`EarlyExit`) when any party
    equivocates, opens inconsistently, or goes silent — mirroring the
    "protocol is aborted" clause of Algorithm 1 step 3.
    """
    # Imported here: repro.core.prover subclasses MorraParticipant, so a
    # top-level import of repro.core.messages would be circular.
    from repro.core.messages import MorraCommitMessage, MorraRevealMessage

    if len(participants) < 2:
        raise ParameterError("Morra needs at least two participants")
    if count < 1:
        raise ParameterError("count must be positive")
    if q < 3:
        raise ParameterError("q must be an odd prime-sized modulus")
    scheme = scheme or HashCommitmentScheme()
    network = network or SimulatedNetwork()
    names = [p.name for p in participants]
    if len(set(names)) != len(names):
        raise ParameterError("participant names must be unique")
    for name in names:
        if name not in network.parties:
            network.register(name)

    # Step 1-2: sample and broadcast commitments in lexicographic order.
    state: dict[str, tuple[list[int], list[bytes]]] = {}
    commitments: dict[str, list[HashCommitment]] = {}
    for participant in sorted(participants, key=lambda p: p.name):
        values = participant.sample_values(q, count)
        if values is None or len(values) != count:
            raise EarlyExit("participant failed to contribute", party=participant.name)
        comms, rand = participant.commitments(scheme, values)
        state[participant.name] = (values, rand)
        commitments[participant.name] = comms
        network.broadcast(
            participant.name,
            MorraCommitMessage(
                sender=participant.name, digests=tuple(c.digest for c in comms)
            ),
        )

    # Step 3: reveal in reverse lexicographic order; verify every opening.
    revealed: dict[str, list[int]] = {}
    for participant in sorted(participants, key=lambda p: p.name, reverse=True):
        values, rand = state[participant.name]
        response = participant.reveal(values, rand, dict(revealed))
        if response is None:
            raise EarlyExit("participant went silent during reveal", party=participant.name)
        opened_values, opened_rand = response
        if len(opened_values) != count or len(opened_rand) != count:
            raise ProtocolAbort("malformed reveal", party=participant.name)
        for i in range(count):
            try:
                scheme.verify(commitments[participant.name][i], opened_values[i], opened_rand[i])
            except VerificationError as exc:
                raise ProtocolAbort(
                    f"opening check failed on instance {i}: {exc}",
                    party=participant.name,
                ) from exc
            if not 0 <= opened_values[i] < q:
                raise ProtocolAbort(
                    f"revealed value out of range on instance {i}",
                    party=participant.name,
                )
        revealed[participant.name] = opened_values
        network.broadcast(
            participant.name,
            MorraRevealMessage(sender=participant.name, values=tuple(opened_values)),
        )

    # Step 4: combine.
    totals = [
        sum(revealed[name][i] for name in names) % q for i in range(count)
    ]
    return MorraOutcome(tuple(totals), q)


def run_morra(
    participants: list[MorraParticipant],
    q: int,
    *,
    network: SimulatedNetwork | None = None,
    scheme: HashCommitmentScheme | None = None,
) -> int:
    """A single Morra instance; returns the uniform value in Z_q."""
    outcome = run_morra_batch(participants, q, 1, network=network, scheme=scheme)
    return outcome.values[0]


def morra_bits(
    participants: list[MorraParticipant],
    q: int,
    count: int,
    *,
    network: SimulatedNetwork | None = None,
) -> list[int]:
    """``count`` unbiased public bits (the O_morra oracle of ΠBin)."""
    return run_morra_batch(participants, q, count, network=network).bits()


def morra_scalar(
    participants: list[MorraParticipant],
    q: int,
    *,
    network: SimulatedNetwork | None = None,
) -> int:
    """A uniform public scalar in Z_q (Algorithm 1 without thresholding)."""
    return run_morra(participants, q, network=network)
