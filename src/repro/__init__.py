"""repro — a full reproduction of *Verifiable Differential Privacy*
(Narayan, Feldman, Papadimitriou & Haeberlen, EuroSys 2015).

Differential privacy's randomness is an attack surface: a malicious
aggregator can bias "noise" and claim innocence.  This library implements
the paper's answer — ΠBin, a protocol whose DP releases come with a
zero-knowledge argument that the statistic is the true aggregate of
validated client inputs plus honestly-sampled Binomial noise — together
with every substrate it stands on and every baseline it is compared to.

Quick start (trusted curator)::

    from repro import CountQuery, Session

    session = Session(CountQuery(epsilon=1.0, delta=2**-10), group="p128-sim")
    session.submit([1, 0, 1, 1, 0, 1])
    result = session.release()
    assert result.accepted                  # proofs checked out
    print(result.results[0].estimate)       # DP count (noise mean removed)

Histograms, bounded sums and composed multi-query workloads run through
the same :class:`~repro.api.Session` engine — declaratively via
:mod:`repro.api` queries, in chunks via ``chunk_size`` for O(chunk)
verifier memory at paper scale (nb = 262,144).  See ``README.md`` for
the tour, ``DESIGN.md`` for the phase state machine, and ``examples/``
for the MPC election and telemetry scenarios.
"""

from repro.api import (
    BoundedSumQuery,
    ComposedQuery,
    CountQuery,
    HistogramQuery,
    Phase,
    Query,
    QueryResult,
    Session,
    SessionResult,
)
from repro.core import (
    Client,
    PublicParams,
    PublicVerifier,
    Prover,
    Release,
    VerifiableBinomialProtocol,
    VerifiableHistogram,
    encode_choice,
    setup,
)
from repro.dp import (
    BinomialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    RandomizedResponse,
    coins_for_privacy,
    epsilon_for_coins,
)
from repro.errors import (
    ClientInputRejected,
    ProofRejected,
    ProtocolAbort,
    ProverCheatingDetected,
    ReproError,
    SessionStateError,
    VerificationError,
)

__version__ = "2.0.0"

__all__ = [
    # Declarative query/session API (the advertised surface).
    "Query",
    "CountQuery",
    "HistogramQuery",
    "BoundedSumQuery",
    "ComposedQuery",
    "Session",
    "SessionResult",
    "QueryResult",
    "Phase",
    # Protocol substrate.
    "setup",
    "PublicParams",
    "Client",
    "Prover",
    "PublicVerifier",
    "Release",
    "encode_choice",
    # Legacy shims (deprecated; kept for one release).
    "VerifiableBinomialProtocol",
    "VerifiableHistogram",
    # Mechanisms.
    "BinomialMechanism",
    "LaplaceMechanism",
    "GaussianMechanism",
    "RandomizedResponse",
    "coins_for_privacy",
    "epsilon_for_coins",
    # Errors.
    "ReproError",
    "VerificationError",
    "ProofRejected",
    "ProtocolAbort",
    "ProverCheatingDetected",
    "ClientInputRejected",
    "SessionStateError",
    "__version__",
]
