"""repro — a full reproduction of *Verifiable Differential Privacy*
(Biswas & Cormode).

Differential privacy's randomness is an attack surface: a malicious
aggregator can bias "noise" and claim innocence.  This library implements
the paper's answer — ΠBin, a protocol whose DP releases come with a
zero-knowledge argument that the statistic is the true aggregate of
validated client inputs plus honestly-sampled Binomial noise — together
with every substrate it stands on and every baseline it is compared to.

Quick start (trusted curator)::

    from repro import setup, VerifiableBinomialProtocol

    params = setup(epsilon=1.0, delta=2**-10, num_provers=1, group="p128-sim")
    protocol = VerifiableBinomialProtocol(params)
    result = protocol.run_bits([1, 0, 1, 1, 0, 1])
    assert result.release.accepted          # proofs checked out
    print(result.release.scalar_estimate)   # DP count (noise mean removed)

See ``examples/`` for the MPC election and telemetry scenarios, DESIGN.md
for the architecture and experiment index, and EXPERIMENTS.md for
measured-vs-paper results.
"""

from repro.core import (
    Client,
    PublicParams,
    PublicVerifier,
    Prover,
    Release,
    VerifiableBinomialProtocol,
    VerifiableHistogram,
    encode_choice,
    setup,
)
from repro.dp import (
    BinomialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    RandomizedResponse,
    coins_for_privacy,
    epsilon_for_coins,
)
from repro.errors import (
    ClientInputRejected,
    ProofRejected,
    ProtocolAbort,
    ProverCheatingDetected,
    ReproError,
    VerificationError,
)

__version__ = "1.0.0"

__all__ = [
    "setup",
    "PublicParams",
    "VerifiableBinomialProtocol",
    "VerifiableHistogram",
    "Client",
    "Prover",
    "PublicVerifier",
    "Release",
    "encode_choice",
    "BinomialMechanism",
    "LaplaceMechanism",
    "GaussianMechanism",
    "RandomizedResponse",
    "coins_for_privacy",
    "epsilon_for_coins",
    "ReproError",
    "VerificationError",
    "ProofRejected",
    "ProtocolAbort",
    "ProverCheatingDetected",
    "ClientInputRejected",
    "__version__",
]
