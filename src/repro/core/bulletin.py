"""The public bulletin board — a byte-level transcript of ΠBin.

Section 4.3: "As the verifier is public, anyone (even non-participants to
ΠBin) can see the messages it receives."  This module makes that literal:
every public message of a protocol run is serialized onto a
:class:`BulletinBoard`, and :func:`replay_audit` re-derives the verifier's
verdicts *from the bytes alone* — no live objects, no trust in the
original verifier.  This is the mechanism behind Table 2's "Auditable"
column and the third-party-replay example.

The board stores (topic, party, payload-bytes) entries in order.  Topics:

* ``client-broadcast/<id>``   — share commitments + validity proof,
* ``coin-commitments/<k>``    — a prover's coin commitments + Σ-OR proofs,
* ``morra-bits/<k>``          — the public bits from that prover's Morra,
* ``prover-output/<k>``       — (y_k, z_k).

Morra transcripts are recorded post-hoc as their resulting public bits:
re-checking Morra's own commit-reveal interaction requires its (hash)
commitments, which the simulated network does retain; for the audit the
bits are what enter the Line 12 computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import (
    ClientBroadcast,
    CoinCommitmentMessage,
    ProverOutputMessage,
)
from repro.core.params import PublicParams
from repro.core.verifier import PublicVerifier
from repro.crypto.serialization import (
    decode_bit_proof,
    decode_commitment,
    decode_one_hot_proof,
    encode_bit_proof,
    encode_commitments,
    encode_one_hot_proof,
)
from repro.crypto.sigma.or_bit import BitProof
from repro.errors import EncodingError
from repro.utils.encoding import (
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)
from repro.utils.rng import SeededRNG

__all__ = ["BulletinBoard", "publish_run", "replay_audit"]


@dataclass(frozen=True)
class BoardEntry:
    topic: str
    party: str
    payload: bytes


@dataclass
class BulletinBoard:
    """An append-only public log of serialized protocol messages."""

    entries: list[BoardEntry] = field(default_factory=list)

    def publish(self, topic: str, party: str, payload: bytes) -> None:
        self.entries.append(BoardEntry(topic, party, payload))

    def topic(self, prefix: str) -> list[BoardEntry]:
        return [e for e in self.entries if e.topic.startswith(prefix)]

    def total_bytes(self) -> int:
        return sum(len(e.payload) for e in self.entries)


# Serialization of the composite messages --------------------------------------


def _encode_client_broadcast(broadcast: ClientBroadcast) -> bytes:
    rows = []
    for row in broadcast.share_commitments:
        rows.append(encode_length_prefixed(*encode_commitments(row)))
    if isinstance(broadcast.validity_proof, BitProof):
        proof = encode_length_prefixed(b"bit", encode_bit_proof(broadcast.validity_proof))
    else:
        proof = encode_length_prefixed(
            b"onehot", encode_one_hot_proof(broadcast.validity_proof)
        )
    return encode_length_prefixed(
        broadcast.client_id.encode(), proof, *rows
    )


def _decode_client_broadcast(params: PublicParams, data: bytes) -> ClientBroadcast:
    parts = decode_length_prefixed(data)
    if len(parts) < 3:
        raise EncodingError("client broadcast too short")
    client_id = parts[0].decode()
    kind, proof_bytes = decode_length_prefixed(parts[1])
    if kind == b"bit":
        proof = decode_bit_proof(params.group, proof_bytes)
    elif kind == b"onehot":
        proof = decode_one_hot_proof(params.group, proof_bytes)
    else:
        raise EncodingError(f"unknown validity proof kind {kind!r}")
    rows = []
    for raw in parts[2:]:
        rows.append(
            tuple(decode_commitment(params.group, c) for c in decode_length_prefixed(raw))
        )
    return ClientBroadcast(client_id, tuple(rows), proof)


def _encode_coin_message(message: CoinCommitmentMessage) -> bytes:
    rows = []
    for c_row, p_row in zip(message.commitments, message.proofs):
        rows.append(
            encode_length_prefixed(
                *encode_commitments(c_row),
                *[encode_bit_proof(p) for p in p_row],
            )
        )
    return encode_length_prefixed(message.prover_id.encode(), *rows)


def _decode_coin_message(params: PublicParams, data: bytes) -> CoinCommitmentMessage:
    parts = decode_length_prefixed(data)
    prover_id = parts[0].decode()
    commitments = []
    proofs = []
    m = params.dimension
    for raw in parts[1:]:
        fields = decode_length_prefixed(raw)
        if len(fields) != 2 * m:
            raise EncodingError("coin row has wrong arity")
        commitments.append(
            tuple(decode_commitment(params.group, c) for c in fields[:m])
        )
        proofs.append(tuple(decode_bit_proof(params.group, p) for p in fields[m:]))
    return CoinCommitmentMessage(prover_id, tuple(commitments), tuple(proofs))


def _encode_bits(bits: list[list[int]]) -> bytes:
    return encode_length_prefixed(*[bytes(row) for row in bits])


def _decode_bits(data: bytes) -> list[list[int]]:
    return [list(row) for row in decode_length_prefixed(data)]


def _encode_output(output: ProverOutputMessage, params: PublicParams) -> bytes:
    width = params.group.scalar_bytes
    return encode_length_prefixed(
        output.prover_id.encode(),
        *[int_to_bytes(y, width) for y in output.y],
        *[int_to_bytes(z, width) for z in output.z],
    )


def _decode_output(params: PublicParams, data: bytes) -> ProverOutputMessage:
    parts = decode_length_prefixed(data)
    prover_id = parts[0].decode()
    m = params.dimension
    if len(parts) != 1 + 2 * m:
        raise EncodingError("prover output has wrong arity")
    values = [int.from_bytes(raw, "big") for raw in parts[1:]]
    return ProverOutputMessage(prover_id, tuple(values[:m]), tuple(values[m:]))


# Publishing and replaying -------------------------------------------------------


def publish_run(
    params: PublicParams,
    broadcasts: list[ClientBroadcast],
    coin_messages: list[CoinCommitmentMessage],
    public_bits: dict[str, list[list[int]]],
    outputs: list[ProverOutputMessage],
) -> BulletinBoard:
    """Serialize one run's public messages onto a fresh board."""
    board = BulletinBoard()
    for broadcast in broadcasts:
        board.publish(
            f"client-broadcast/{broadcast.client_id}",
            broadcast.client_id,
            _encode_client_broadcast(broadcast),
        )
    for message in coin_messages:
        board.publish(
            f"coin-commitments/{message.prover_id}",
            message.prover_id,
            _encode_coin_message(message),
        )
    for prover_id, bits in public_bits.items():
        board.publish(f"morra-bits/{prover_id}", prover_id, _encode_bits(bits))
    for output in outputs:
        board.publish(
            f"prover-output/{output.prover_id}", output.prover_id, _encode_output(output, params)
        )
    return board


def replay_audit(params: PublicParams, board: BulletinBoard):
    """Re-run the complete public verification from serialized bytes.

    Returns a fresh :class:`AuditRecord` derived only from the board.
    Any third party holding (pp, board) computes the same verdicts as the
    original verifier — the auditability property, end to end.
    """
    from repro.core.prover import broadcast_context_digest

    # batch=False: the batched path's random-linear-combination weights
    # are only sound when unpredictable to the proof author, and a replay
    # auditor's RNG is public by construction (anyone must be able to
    # reproduce the verdicts).  Sequential verification is exact — no
    # soundness slack — and byte-for-byte deterministic.
    auditor = PublicVerifier(
        params, SeededRNG("replay-auditor"), name="auditor", batch=False
    )

    broadcasts = [
        _decode_client_broadcast(params, e.payload)
        for e in board.topic("client-broadcast/")
    ]
    valid_ids = auditor.validate_clients(broadcasts)
    context = broadcast_context_digest(broadcasts)

    coin_messages = [
        _decode_coin_message(params, e.payload)
        for e in board.topic("coin-commitments/")
    ]
    bits_by_prover = {
        e.party: _decode_bits(e.payload) for e in board.topic("morra-bits/")
    }
    outputs = [
        _decode_output(params, e.payload) for e in board.topic("prover-output/")
    ]

    included = [b for b in broadcasts if b.client_id in set(valid_ids)]
    order = {msg.prover_id: k for k, msg in enumerate(coin_messages)}
    for message in coin_messages:
        if not auditor.verify_coin_commitments(message, context):
            continue
        auditor.apply_public_bits(message.prover_id, bits_by_prover[message.prover_id])
    for output in outputs:
        if output.prover_id not in auditor._adjusted_products:
            continue
        k = order[output.prover_id]
        client_commitments = [
            [b.share_commitments[k][m] for b in included]
            for m in range(params.dimension)
        ]
        auditor.check_prover_output(output, client_commitments)
    return auditor.audit
