"""Clients of ΠBin.

A client holds a value in the legal language L — a bit for M = 1, a
one-hot vector for M-bin histograms — and produces (Line 2 of Figure 2):

* K share vectors, one per prover, under additive sharing mod q,
* per-share Pedersen commitments, broadcast publicly,
* a validity proof over the derived commitments (Σ-OR for a bit, the
  Appendix C one-hot proof for M > 1),
* a private :class:`ClientShareMessage` per prover carrying that prover's
  openings.

Dishonest-client variants used by the attack experiments are at the
bottom; their submissions are *rejected* by the public verifier (the
"guaranteed exclusion of corrupt clients" property of Section 4.2).
"""

from __future__ import annotations

from repro.core.messages import ClientBroadcast, ClientShareMessage
from repro.core.params import PublicParams
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.onehot import prove_one_hot
from repro.crypto.sigma.or_bit import prove_bit
from repro.errors import ParameterError
from repro.mpc.party import Party
from repro.sharing.additive import share_additive
from repro.utils.rng import RNG

__all__ = [
    "encode_choice",
    "Client",
    "NonBinaryClient",
    "NotOneHotClient",
    "InconsistentShareClient",
]


def encode_choice(choice: int, dimension: int) -> list[int]:
    """One-hot encode a choice in [0, M) (identity for M = 1 bit inputs)."""
    if dimension == 1:
        if choice not in (0, 1):
            raise ParameterError("for dimension 1 the input must be a bit")
        return [choice]
    if not 0 <= choice < dimension:
        raise ParameterError(f"choice {choice} out of range for {dimension} bins")
    return [1 if m == choice else 0 for m in range(dimension)]


def _client_transcript(params: PublicParams, client_id: str) -> Transcript:
    transcript = Transcript("repro.pibin.client-validity")
    transcript.append_bytes("params", params.fingerprint())
    transcript.append_str("client", client_id)
    return transcript


class Client(Party):
    """An honest client holding a vector in L."""

    def __init__(self, name: str, vector: list[int], rng: RNG | None = None) -> None:
        super().__init__(name, rng)
        self.vector = list(vector)

    def _share_and_commit(
        self, params: PublicParams
    ) -> tuple[list[list[int]], list[list[Opening]], list[list[Commitment]]]:
        """Share each coordinate across K provers and commit to each share.

        Returns (shares, openings, commitments) indexed [k][m].
        """
        k_provers = params.num_provers
        q = params.q
        shares_km: list[list[int]] = [[] for _ in range(k_provers)]
        openings_km: list[list[Opening]] = [[] for _ in range(k_provers)]
        flat: list[tuple[int, Opening]] = []  # (prover index, opening)
        for value in self.vector:
            shares = share_additive(value, k_provers, q, self.rng)
            for k, share in enumerate(shares):
                opening = Opening(share % q, self.rng.field_element(q))
                shares_km[k].append(share)
                openings_km[k].append(opening)
                flat.append((k, opening))
        # One fused commit pass over every (prover, coordinate) share.
        flat_commitments = params.pedersen.commit_many(
            [o.value for _, o in flat], [o.randomness for _, o in flat]
        )
        commitments_km: list[list[Commitment]] = [[] for _ in range(k_provers)]
        for (k, _), commitment in zip(flat, flat_commitments):
            commitments_km[k].append(commitment)
        return shares_km, openings_km, commitments_km

    def _validity_proof(
        self,
        params: PublicParams,
        openings_km: list[list[Opening]],
        commitments_km: list[list[Commitment]],
    ):
        """Prove the derived (plaintext) commitments are in L."""
        pedersen = params.pedersen
        dimension = params.dimension
        derived_openings = [
            pedersen.add_openings([openings_km[k][m] for k in range(params.num_provers)])
            for m in range(dimension)
        ]
        derived_commitments = [
            pedersen.product([commitments_km[k][m] for k in range(params.num_provers)])
            for m in range(dimension)
        ]
        transcript = _client_transcript(params, self.name)
        if dimension == 1:
            return prove_bit(
                pedersen, derived_commitments[0], derived_openings[0], transcript, self.rng
            )
        return prove_one_hot(
            pedersen, derived_commitments, derived_openings, transcript, self.rng
        )

    def submit(
        self, params: PublicParams
    ) -> tuple[ClientBroadcast, list[ClientShareMessage]]:
        """Produce the public broadcast and the K private share messages."""
        if len(self.vector) != params.dimension:
            raise ParameterError(
                f"client vector has {len(self.vector)} coordinates, expected {params.dimension}"
            )
        shares_km, openings_km, commitments_km = self._share_and_commit(params)
        proof = self._validity_proof(params, openings_km, commitments_km)
        broadcast = ClientBroadcast(
            client_id=self.name,
            share_commitments=tuple(tuple(row) for row in commitments_km),
            validity_proof=proof,
        )
        privates = [
            ClientShareMessage(client_id=self.name, openings=tuple(openings_km[k]))
            for k in range(params.num_provers)
        ]
        return broadcast, privates


class NonBinaryClient(Client):
    """Submits a value outside {0, 1} (e.g. 5 votes at once).

    It cannot construct a valid Σ-OR proof (the prover-side check in
    :func:`prove_bit` would refuse, and forging is infeasible), so it
    mimics an attacker by reusing a proof for a *different* commitment:
    the verifier rejects because the Fiat–Shamir challenge is bound to
    the actual derived commitment.
    """

    def submit(self, params: PublicParams):
        true_vector = self.vector
        # Build an honest-looking submission for a legal vector...
        self.vector = encode_choice(0, params.dimension)
        broadcast, _ = super().submit(params)
        legal_proof = broadcast.validity_proof
        # ...then swap in shares/commitments of the illegal vector.
        self.vector = true_vector
        shares_km, openings_km, commitments_km = self._share_and_commit(params)
        forged = ClientBroadcast(
            client_id=self.name,
            share_commitments=tuple(tuple(row) for row in commitments_km),
            validity_proof=legal_proof,
        )
        privates = [
            ClientShareMessage(client_id=self.name, openings=tuple(openings_km[k]))
            for k in range(params.num_provers)
        ]
        return forged, privates


class NotOneHotClient(NonBinaryClient):
    """M > 1 variant: submits e.g. two hot coordinates or a cold vector."""


class InconsistentShareClient(Client):
    """Broadcasts commitments to one sharing but sends a prover different
    openings (tries to make provers disagree about its input).

    Caught by the receiving prover's opening check against the public
    commitments; audit status BAD_OPENING.
    """

    def __init__(self, name: str, vector: list[int], *, victim_prover: int = 0, rng=None) -> None:
        super().__init__(name, vector, rng)
        self.victim_prover = victim_prover

    def submit(self, params: PublicParams):
        broadcast, privates = super().submit(params)
        k = self.victim_prover % params.num_provers
        tampered = list(privates[k].openings)
        first = tampered[0]
        tampered[0] = Opening((first.value + 1) % params.q, first.randomness)
        privates[k] = ClientShareMessage(client_id=self.name, openings=tuple(tampered))
        return broadcast, privates
