"""Operator-facing run reports.

A deployment wants a machine-readable record of every release: what was
published, under what budget, who was excluded and why, and whether the
release stands.  :func:`run_report` turns a :class:`ProtocolResult` into
a plain-JSON-serializable dict (and :func:`render_report` into text for
logs).  The report contains *only public information* — it can be
attached to the release itself.
"""

from __future__ import annotations

import json

from repro.core.params import PublicParams
from repro.core.protocol import ProtocolResult

__all__ = ["run_report", "render_report"]


def run_report(params: PublicParams, result: ProtocolResult) -> dict:
    """A JSON-serializable public summary of one protocol run."""
    release = result.release
    return {
        "schema": "repro.run-report.v1",
        "parameters": {
            "epsilon": params.epsilon,
            "delta": params.delta,
            "nb": params.nb,
            "num_provers": params.num_provers,
            "dimension": params.dimension,
            "group": params.group.name,
            "fingerprint": params.fingerprint().hex(),
        },
        "release": {
            "accepted": release.accepted,
            "raw": list(release.raw),
            "estimate": list(release.estimate),
            "noise_mean_removed": params.noise_mean,
        },
        "audit": {
            "clients": {cid: status.value for cid, status in release.audit.clients.items()},
            "provers": {pid: status.value for pid, status in release.audit.provers.items()},
            "notes": list(release.audit.notes),
        },
        "costs": {
            "stage_ms": {k: round(v * 1e3, 3) for k, v in result.timer.stages.items()},
            "network_bytes": result.network.total_bytes(),
            "network_messages": result.network.total_messages(),
        },
    }


def render_report(params: PublicParams, result: ProtocolResult) -> str:
    """Human-readable rendering (stable key order for log diffing)."""
    return json.dumps(run_report(params, result), indent=2, sort_keys=True)
