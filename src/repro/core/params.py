"""Public parameters for ΠBin (Line 1 of Figure 2).

``Setup(1^κ)`` fixes: the prime-order group Gq (which determines the
commitment, message and randomness spaces C_pp = Gq, M_pp = R_pp = Z_q),
the Pedersen generators (g, h), the privacy parameters (ε, δ) and the
derived coin count nb per Lemma 2.1, the number of provers K and the
input dimension M.

All parties must agree on pp; :meth:`PublicParams.fingerprint` is a digest
bound into every Fiat–Shamir transcript so proofs cannot migrate between
parameter sets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.group import Group
from repro.crypto.pedersen import PedersenParams
from repro.crypto.ristretto import RistrettoGroup
from repro.crypto.schnorr_group import SchnorrGroup
from repro.dp.binomial import coins_for_privacy, epsilon_for_coins
from repro.errors import ParameterError

__all__ = ["PublicParams", "setup"]


@dataclass(frozen=True)
class PublicParams:
    """Agreed-upon public parameters for one run of ΠBin."""

    pedersen: PedersenParams
    epsilon: float
    delta: float
    nb: int
    num_provers: int
    dimension: int = 1

    def __post_init__(self) -> None:
        if self.num_provers < 1:
            raise ParameterError("need at least one prover (K >= 1)")
        if self.dimension < 1:
            raise ParameterError("dimension must be at least 1")
        if self.nb < 1:
            raise ParameterError("nb must be positive")

    @property
    def group(self) -> Group:
        return self.pedersen.group

    @property
    def q(self) -> int:
        return self.pedersen.q

    @property
    def total_noise_coins(self) -> int:
        """Coins across all provers and coordinates: K · M · nb."""
        return self.num_provers * self.dimension * self.nb

    @property
    def noise_mean(self) -> float:
        """Mean of the total added noise per coordinate: K · nb / 2.

        Public, so analysts debias releases by subtracting it.
        """
        return self.num_provers * self.nb / 2.0

    def fingerprint(self) -> bytes:
        """Digest of pp, bound into every transcript."""
        payload = b"|".join(
            [
                b"repro.params.v1",
                self.pedersen.transcript_bytes(),
                f"{self.epsilon:.12g}".encode(),
                f"{self.delta:.12g}".encode(),
                str(self.nb).encode(),
                str(self.num_provers).encode(),
                str(self.dimension).encode(),
            ]
        )
        return hashlib.sha256(payload).digest()


def _resolve_group(group: Group | str) -> Group:
    if isinstance(group, Group):
        return group
    if group == "ristretto255":
        return RistrettoGroup.instance()
    if group == "p256":
        from repro.crypto.p256 import P256Group

        return P256Group.instance()
    return SchnorrGroup.named(group)


def setup(
    epsilon: float,
    delta: float,
    *,
    num_provers: int = 1,
    dimension: int = 1,
    group: Group | str = "modp-2048",
    nb_override: int | None = None,
    round_to_power_of_two: bool = False,
) -> PublicParams:
    """Construct agreed public parameters.

    ``nb`` is derived from (ε, δ) via Lemma 2.1 unless ``nb_override`` is
    given (used by benchmarks to reproduce the paper's stated workload
    sizes; the effective ε for an override is reported by
    :func:`repro.dp.binomial.epsilon_for_coins`).
    """
    resolved = _resolve_group(group)
    if nb_override is not None:
        if nb_override < 1:
            raise ParameterError("nb_override must be positive")
        nb = nb_override
        effective_epsilon = epsilon_for_coins(max(nb, 31), delta)
    else:
        nb = coins_for_privacy(epsilon, delta, round_to_power_of_two=round_to_power_of_two)
        effective_epsilon = epsilon
    return PublicParams(
        pedersen=PedersenParams(resolved),
        epsilon=effective_epsilon,
        delta=delta,
        nb=nb,
        num_provers=num_provers,
        dimension=dimension,
    )
