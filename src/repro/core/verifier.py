"""The public verifier of ΠBin.

The verifier (the "analyst" Vfr) never sees a client input, a private
coin, or any commitment opening other than the aggregate (y_k, z_k).  It:

1. validates every client's Σ-OR / one-hot / bit-vector proof over the
   *derived* commitments (Line 3) and publishes the per-client verdicts,
2. checks every prover's coin commitments are bits (Lines 5–6),
3. co-samples the public Morra bits with each prover (Lines 7–8),
4. applies the linear commitment update ĉ' (Line 12) — computing a
   commitment to v̂ = v ⊕ b without knowing v, and
5. checks Π_m (Π_i c_{i,m})^{w_m} · (Π_j ĉ'_{j,l})^{Δ_l} == Com(y_l, z_l)
   per release lane (Line 13; unit weights reproduce the paper's check).

Because all five steps consume only public messages, *anyone* can replay
them: the audit record produced here is reproducible by third parties,
which is the "publicly auditable" property of Table 2.

Verification is **batched by default**: all Σ-OR equations — every
prover's nb coin proofs and every client's validity proof — are folded
into a :class:`repro.crypto.sigma.batch.SigmaBatch` random linear
combination and checked with one Pippenger multi-exponentiation.  A batch
rejection cannot name the cheater, so on failure the verifier replays
the sequential per-proof path to pinpoint (and audit-record) exactly
which proof failed; construct with ``batch=False`` to force the
sequential path throughout (the ablation benchmarks do).

Verification is also **streamable**: the ``begin_coin_stream`` /
``verify_coin_chunk`` / ``apply_public_bits_chunk`` / ``finish_coin_stream``
family verifies a prover's nb proofs chunk by chunk over one evolving
Fiat–Shamir transcript, folding each chunk's Line 12 update into a
running product and then discarding it — peak memory O(chunk) instead of
O(nb), which is what lets a 262,144-coin run fit on a laptop (see
``repro.api.Session``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import _client_transcript
from repro.core.messages import (
    AuditRecord,
    ClientBroadcast,
    ClientStatus,
    CoinCommitmentMessage,
    ProverOutputMessage,
    ProverStatus,
)
from repro.core.params import PublicParams
from repro.core.plan import AggregationPlan
from repro.core.prover import coin_transcript
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.group import GroupElement
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.batch import GAMMA_BITS, SigmaBatch
from repro.crypto.sigma.bitvec import BitVectorProof, verify_bit_vector
from repro.crypto.sigma.onehot import OneHotProof, verify_one_hot
from repro.crypto.sigma.or_bit import BitProof, verify_bit
from repro.errors import EncodingError, ParameterError, VerificationError
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import RNG, SystemRNG

__all__ = ["PublicVerifier"]

_PROOF_TYPES = {"bit": BitProof, "onehot": OneHotProof, "bitvec": BitVectorProof}


@dataclass
class _CoinStream:
    """Per-prover state of a chunked coin verification."""

    transcript: Transcript
    lanes: int
    received: int = 0
    failed: bool = False
    # The last verified chunk's commitments, awaiting their Morra bits.
    pending: tuple[tuple[Commitment, ...], ...] = ()
    # Running Line 12 folds per lane.
    keep: list[GroupElement | None] = field(default_factory=list)
    flip: list[GroupElement | None] = field(default_factory=list)
    flips: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.keep = [None] * self.lanes
        self.flip = [None] * self.lanes
        self.flips = [0] * self.lanes


class PublicVerifier(MorraParticipant):
    """The (honest) public verifier / analyst."""

    def __init__(
        self,
        params: PublicParams,
        rng: RNG | None = None,
        *,
        name: str = "verifier",
        batch: bool = True,
        gamma_rng: RNG | None = None,
        plan: AggregationPlan | None = None,
    ) -> None:
        super().__init__(name, rng)
        self.params = params
        self.plan = plan if plan is not None else AggregationPlan.identity(params.dimension)
        if self.plan.dimension != params.dimension:
            raise ParameterError("plan dimension does not match params dimension")
        self.batch = batch
        # Batch RLC weights must be unpredictable to proof authors even
        # when ``rng`` is a seeded simulation stream (a predictable γ
        # stream lets two tampered proofs cancel — see the batch module
        # docstring), so they come from a dedicated source that defaults
        # to system randomness.  Auditors replaying with a *public* RNG
        # must use ``batch=False`` instead.
        self.gamma_rng = gamma_rng if gamma_rng is not None else SystemRNG()
        self.audit = AuditRecord()
        # Adjusted coin-commitment products per prover, filled in phase 4.
        self._coin_messages: dict[str, CoinCommitmentMessage] = {}
        self._adjusted_products: dict[str, list[Commitment]] = {}
        # Streaming state.
        self._coin_streams: dict[str, _CoinStream] = {}
        self._client_products: list[list[GroupElement | None]] | None = None

    @property
    def lanes(self) -> int:
        return self.plan.lanes

    # Phase 1: client validation (Line 3) -----------------------------------

    def validate_client(self, broadcast: ClientBroadcast) -> ClientStatus:
        """Check shape and the validity proof of one client submission.

        This is the sequential path; it stays authoritative so a failed
        batch can always be replayed proof by proof.
        """
        params = self.params
        if not self._client_shape_ok(broadcast):
            return ClientStatus.INVALID_PROOF
        derived = broadcast.derived_commitments()
        transcript = _client_transcript(params, broadcast.client_id)
        validity = self.plan.validity
        try:
            if validity == "bit":
                verify_bit(params.pedersen, derived[0], broadcast.validity_proof, transcript)
            elif validity == "onehot":
                verify_one_hot(params.pedersen, derived, broadcast.validity_proof, transcript)
            else:
                verify_bit_vector(
                    params.pedersen, derived, broadcast.validity_proof, transcript
                )
        except VerificationError:
            return ClientStatus.INVALID_PROOF
        return ClientStatus.VALID

    def _client_shape_ok(self, broadcast: ClientBroadcast) -> bool:
        params = self.params
        if not (
            len(broadcast.share_commitments) == params.num_provers
            and all(len(row) == params.dimension for row in broadcast.share_commitments)
        ):
            return False
        return isinstance(broadcast.validity_proof, _PROOF_TYPES[self.plan.validity])

    def validate_clients(
        self,
        broadcasts: list[ClientBroadcast],
        complaints: dict[str, list[str]] | None = None,
    ) -> list[str]:
        """Validate all clients; returns ids of included clients.

        With batching enabled every client's validity proof is folded
        into one cross-client random linear combination (a single
        multi-exponentiation); a rejection replays the per-client path so
        the audit record still names each invalid client individually.

        ``complaints`` maps prover name → client ids whose private opening
        failed that prover's check; such clients are excluded with status
        BAD_OPENING (the public record resolving Figure 1's ambiguity).

        Incremental by construction: the streaming session calls this
        once per chunk and the audit record simply accumulates.
        """
        if self.batch:
            statuses = self._validate_clients_batched(broadcasts)
        else:
            statuses = [self.validate_client(broadcast) for broadcast in broadcasts]
        complained = {cid for cids in (complaints or {}).values() for cid in cids}
        valid: list[str] = []
        for broadcast, status in zip(broadcasts, statuses):
            if status is ClientStatus.VALID and broadcast.client_id in complained:
                status = ClientStatus.BAD_OPENING
            self.audit.clients[broadcast.client_id] = status
            if status is ClientStatus.VALID:
                valid.append(broadcast.client_id)
        return valid

    def _validate_clients_batched(
        self, broadcasts: list[ClientBroadcast]
    ) -> list[ClientStatus]:
        """Per-broadcast statuses, aligned with ``broadcasts`` by position
        (never keyed by client id — duplicate ids must not share a verdict).
        """
        combined = SigmaBatch(self.params.pedersen, self.gamma_rng)
        staged: list[int] = []
        statuses: list[ClientStatus] = []
        for i, broadcast in enumerate(broadcasts):
            ok = self._client_shape_ok(broadcast) and self._stage_into(
                combined, lambda sub: self._fold_client(sub, broadcast)
            )
            if ok:
                staged.append(i)
            statuses.append(
                ClientStatus.VALID if ok else ClientStatus.INVALID_PROOF
            )
        if staged and not self._verify_staged(combined):
            # One combined product cannot name the cheater; replay each
            # staged client sequentially to pinpoint.
            for i in staged:
                statuses[i] = self.validate_client(broadcasts[i])
        return statuses

    # Shared batch staging ---------------------------------------------------

    def _stage_into(self, combined: SigmaBatch, fold) -> bool:
        """Fold one message into ``combined`` via a throwaway sub-batch.

        Staging per message means a structural failure (bad challenge
        split) taints only that message, never the whole combination.
        Returns False — leaving ``combined`` untouched — when ``fold``
        raises a verification error.
        """
        sub = SigmaBatch(self.params.pedersen, self.gamma_rng)
        try:
            fold(sub)
        except VerificationError:
            return False
        combined.merge(sub)
        return True

    @staticmethod
    def _verify_staged(combined: SigmaBatch) -> bool:
        try:
            combined.verify()
        except VerificationError:
            return False
        return True

    def _fold_client(self, batch: SigmaBatch, broadcast: ClientBroadcast) -> None:
        params = self.params
        derived = broadcast.derived_commitments()
        transcript = _client_transcript(params, broadcast.client_id)
        validity = self.plan.validity
        if validity == "bit":
            batch.add_bit_proof(derived[0], broadcast.validity_proof, transcript)
        elif validity == "onehot":
            batch.add_one_hot(derived, broadcast.validity_proof, transcript)
        else:
            batch.add_bit_vector(derived, broadcast.validity_proof, transcript)

    # Shard-mergeable client state -------------------------------------------
    #
    # A sharded front-end (repro.net.shard) partitions the client stream
    # across S workers, each of which runs validate_clients +
    # fold_client_commitments on its own PublicVerifier.  These helpers
    # are the merge half: verdicts re-enter the analyst's audit record in
    # global submission order, and the per-(prover, coordinate) products
    # — abelian, so grouping is irrelevant — multiply together.

    def record_client_verdicts(self, verdicts) -> list[str]:
        """Adopt externally computed (client_id, status) verdicts in order.

        Returns the ids recorded VALID, preserving submission order —
        exactly what :meth:`validate_clients` would have returned had the
        proofs been checked here.
        """
        valid: list[str] = []
        for client_id, status in verdicts:
            self.audit.clients[client_id] = status
            if status is ClientStatus.VALID:
                valid.append(client_id)
        return valid

    def merge_client_products(
        self, partial: list[list[GroupElement | None]]
    ) -> None:
        """Fold one shard's per-(prover, coordinate) commitment products
        into the running products the streamed Line 13 check consumes."""
        params = self.params
        if len(partial) != params.num_provers or any(
            len(row) != params.dimension for row in partial
        ):
            raise ParameterError("partial client products have the wrong shape")
        if self._client_products is None:
            self._client_products = [
                [None] * params.dimension for _ in range(params.num_provers)
            ]
        for held_row, partial_row in zip(self._client_products, partial):
            for m, element in enumerate(partial_row):
                if element is None:
                    continue
                held = held_row[m]
                held_row[m] = element if held is None else held * element

    def client_products(self) -> list[list[GroupElement | None]]:
        """The running per-(prover, coordinate) products (shard export)."""
        params = self.params
        if self._client_products is None:
            return [[None] * params.dimension for _ in range(params.num_provers)]
        return [list(row) for row in self._client_products]

    def fold_client_commitments(
        self, broadcasts: list[ClientBroadcast], valid_ids: list[str]
    ) -> None:
        """Fold included clients' share commitments into the running
        per-(prover, coordinate) products the streamed Line 13 check
        consumes — after which the broadcasts can be dropped."""
        params = self.params
        if self._client_products is None:
            self._client_products = [
                [None] * params.dimension for _ in range(params.num_provers)
            ]
        included = set(valid_ids)
        for broadcast in broadcasts:
            if broadcast.client_id not in included:
                continue
            for k, row in enumerate(broadcast.share_commitments):
                products = self._client_products[k]
                for m, commitment in enumerate(row):
                    held = products[m]
                    products[m] = (
                        commitment.element
                        if held is None
                        else held * commitment.element
                    )

    # Phase 2: prover coin validation (Lines 5-6) ----------------------------

    def _coin_shape_ok(
        self, message: CoinCommitmentMessage, expected_rows: int | None = None
    ) -> bool:
        rows = self.params.nb if expected_rows is None else expected_rows
        lanes = self.lanes
        if len(message.commitments) != rows or len(message.proofs) != rows:
            return False
        return all(
            len(c_row) == lanes and len(p_row) == lanes
            for c_row, p_row in zip(message.commitments, message.proofs)
        )

    def _replay_coin_rows(
        self,
        transcript: Transcript,
        commitments,
        proofs,
        start: int = 0,
    ) -> str | None:
        """Replay coin proofs one by one on ``transcript``.

        Returns None when every proof verifies, else a note naming the
        first failing coin (global index ``start + row``) — the
        pinpointing the batch path cannot do.
        """
        params = self.params
        for j, (c_row, p_row) in enumerate(zip(commitments, proofs)):
            for m, (commitment, proof) in enumerate(zip(c_row, p_row)):
                try:
                    verify_bit(params.pedersen, commitment, proof, transcript)
                except VerificationError as exc:
                    return (
                        f"coin proof rejected at coin {start + j}, coordinate {m} ({exc})"
                    )
        return None

    def _sequential_coin_note(
        self, message: CoinCommitmentMessage, context: bytes
    ) -> str | None:
        """Replay one prover's full coin message from a fresh transcript."""
        transcript = coin_transcript(self.params, message.prover_id, context)
        return self._replay_coin_rows(transcript, message.commitments, message.proofs)

    def _fold_coin_message(
        self, batch: SigmaBatch, message: CoinCommitmentMessage, context: bytes
    ) -> None:
        transcript = coin_transcript(self.params, message.prover_id, context)
        for c_row, p_row in zip(message.commitments, message.proofs):
            for commitment, proof in zip(c_row, p_row):
                batch.add_bit_proof(commitment, proof, transcript)

    def _reject_coins(self, prover_id: str, note: str) -> None:
        self.audit.provers[prover_id] = ProverStatus.BAD_COIN_PROOF
        self.audit.note(f"{prover_id}: {note}")

    def verify_coin_commitments(self, message: CoinCommitmentMessage, context: bytes) -> bool:
        """Check every coin commitment is a bit; record verdict on failure.

        Batched by default: one random-linear-combination multiexp over
        all nb·L proofs, with the sequential path replayed on rejection
        so the audit note names the exact failing coin.
        """
        if not self._coin_shape_ok(message):
            self._reject_coins(message.prover_id, "malformed coin message")
            return False
        if self.batch:
            batch = SigmaBatch(self.params.pedersen, self.gamma_rng)
            try:
                self._fold_coin_message(batch, message, context)
                batch.verify()
            except VerificationError:
                note = self._sequential_coin_note(message, context)
                if note is None:  # pragma: no cover - batch/sequential divergence (bug)
                    note = "batched coin verification rejected (sequential replay accepted)"
                self._reject_coins(message.prover_id, note)
                return False
        else:
            note = self._sequential_coin_note(message, context)
            if note is not None:
                self._reject_coins(message.prover_id, note)
                return False
        self._coin_messages[message.prover_id] = message
        return True

    def verify_all_coin_commitments(
        self, messages: list[CoinCommitmentMessage], context: bytes
    ) -> dict[str, bool]:
        """Lines 5–6 for *all* provers with one multi-exponentiation.

        Every well-formed prover message is staged into a single
        cross-prover :class:`SigmaBatch`; only if the combined check
        rejects does the verifier narrow down per prover (and then per
        proof) to name the cheater.
        """
        results: dict[str, bool] = {}
        if not self.batch:
            for message in messages:
                results[message.prover_id] = self.verify_coin_commitments(message, context)
            return results
        combined = SigmaBatch(self.params.pedersen, self.gamma_rng)
        staged: list[CoinCommitmentMessage] = []
        for message in messages:
            if not self._coin_shape_ok(message):
                self._reject_coins(message.prover_id, "malformed coin message")
                results[message.prover_id] = False
                continue
            if not self._stage_into(
                combined, lambda sub: self._fold_coin_message(sub, message, context)
            ):
                note = self._sequential_coin_note(message, context)
                self._reject_coins(message.prover_id, note or "coin proof rejected")
                results[message.prover_id] = False
                continue
            staged.append(message)
        if staged:
            if not self._verify_staged(combined):
                # Narrow per prover; verify_coin_commitments pinpoints.
                for message in staged:
                    results[message.prover_id] = self.verify_coin_commitments(
                        message, context
                    )
                return results
            for message in staged:
                self._coin_messages[message.prover_id] = message
                results[message.prover_id] = True
        return results

    # Streamed coin validation (Lines 5-6, chunked) ---------------------------

    def begin_coin_stream(self, prover_id: str, context: bytes) -> None:
        """Open a chunked verification stream for one prover's coins.

        The stream shares one evolving Fiat–Shamir transcript across all
        chunks, so the accepted proofs are exactly those a monolithic
        :meth:`verify_coin_commitments` call would accept.
        """
        self._coin_streams[prover_id] = _CoinStream(
            transcript=coin_transcript(self.params, prover_id, context),
            lanes=self.lanes,
        )

    def _stream_for(self, prover_id: str) -> _CoinStream:
        stream = self._coin_streams.get(prover_id)
        if stream is None:
            raise ParameterError(f"no open coin stream for {prover_id!r}")
        return stream

    def verify_coin_chunk(self, message: CoinCommitmentMessage) -> bool:
        """Verify the next chunk of a prover's coin stream.

        Each chunk is checked eagerly (one RLC multiexp per chunk), so a
        cheating prover is caught — and the offending coin named, via
        sequential replay from a transcript snapshot — the moment its
        chunk arrives, not at the end of the run.
        """
        prover_id = message.prover_id
        stream = self._stream_for(prover_id)
        if stream.failed:
            return False
        rows = len(message.commitments)
        if (
            rows == 0
            or not self._coin_shape_ok(message, expected_rows=rows)
            or stream.received + rows > self.params.nb
            or stream.pending
        ):
            stream.failed = True
            self._reject_coins(prover_id, "malformed coin chunk")
            return False
        snapshot = stream.transcript.clone()
        if self.batch:
            batch = SigmaBatch(self.params.pedersen, self.gamma_rng)
            try:
                for c_row, p_row in zip(message.commitments, message.proofs):
                    for commitment, proof in zip(c_row, p_row):
                        batch.add_bit_proof(commitment, proof, stream.transcript)
                batch.verify()
            except VerificationError:
                note = self._replay_coin_rows(
                    snapshot, message.commitments, message.proofs, start=stream.received
                )
                if note is None:  # pragma: no cover - batch/sequential divergence (bug)
                    note = "batched coin chunk rejected (sequential replay accepted)"
                stream.failed = True
                self._reject_coins(prover_id, note)
                return False
        else:
            note = self._replay_coin_rows(
                stream.transcript, message.commitments, message.proofs, start=stream.received
            )
            if note is not None:
                stream.failed = True
                self._reject_coins(prover_id, note)
                return False
        stream.pending = message.commitments
        stream.received += rows
        return True

    def apply_public_bits_chunk(self, prover_id: str, public_bits: list[list[int]]) -> None:
        """Fold the pending chunk's Line 12 updates into the running
        per-lane products, then drop the chunk's commitments."""
        stream = self._stream_for(prover_id)
        if len(public_bits) != len(stream.pending):
            raise ParameterError("public bits do not match the pending chunk")
        group = self.params.group
        for lane in range(stream.lanes):
            keep = []
            flip = []
            for c_row, b_row in zip(stream.pending, public_bits):
                element = c_row[lane].element
                (flip if b_row[lane] == 1 else keep).append(element)
            if keep:
                folded = group.product(keep)
                held = stream.keep[lane]
                stream.keep[lane] = folded if held is None else held * folded
            if flip:
                folded = group.product(flip)
                held = stream.flip[lane]
                stream.flip[lane] = folded if held is None else held * folded
                stream.flips[lane] += len(flip)
        stream.pending = ()

    def finish_coin_stream(self, prover_id: str) -> bool:
        """Close a coin stream: all nb coins must have been verified and
        adjusted; materializes the per-lane ĉ' products for Line 13."""
        stream = self._stream_for(prover_id)
        if stream.failed:
            return False
        if stream.received != self.params.nb or stream.pending:
            stream.failed = True
            self._reject_coins(
                prover_id,
                f"incomplete coin stream ({stream.received}/{self.params.nb} coins)",
            )
            return False
        self._adjusted_products[prover_id] = self._materialize_line12(stream)
        del self._coin_streams[prover_id]
        return True

    def _materialize_line12(self, stream: _CoinStream) -> list[Commitment]:
        """Per-lane ĉ' product Com(k₁, 0)·Π_keep/Π_flip from fold state."""
        pedersen = self.params.pedersen
        products: list[Commitment] = []
        for lane in range(stream.lanes):
            element = (
                stream.keep[lane]
                if stream.keep[lane] is not None
                else self.params.group.identity()
            )
            if stream.flips[lane]:
                constant = pedersen.commitment_to_constant(stream.flips[lane])
                element = constant.element * element / stream.flip[lane]
            products.append(Commitment(element))
        return products

    # Shard-mergeable coin state ---------------------------------------------
    #
    # One prover's chunked stream can be verified by S shard workers: the
    # evolving Fiat–Shamir transcript is a deterministic function of the
    # public frames alone, so every shard fast-forwards the chunks it
    # does not own (pure hashing) and pays the RLC multi-exponentiation
    # only for its own.  The Line 12 fold Com(k₁,0)·Π_keep/Π_flip is a
    # product of per-chunk factors in an abelian group, so per-shard
    # partial products multiply into exactly the unsharded value.

    def skip_coin_chunk(self, prover_id: str, frame: bytes, rows: int) -> bool:
        """Fast-forward a stream over a chunk another shard verifies.

        ``frame`` is the chunk's wire encoding; the transcript absorbs
        element encodings verbatim, so the replay is pure length-prefix
        parsing plus hashing — no decoding, no group operations.
        Returns False (and fails the stream, with an audit note) when the
        frame cannot even be parsed.
        """
        from repro.crypto.serialization import advance_coin_transcript_frame

        stream = self._stream_for(prover_id)
        if stream.failed:
            return False
        try:
            advance_coin_transcript_frame(self.params, stream.transcript, frame)
        except (EncodingError, ValueError) as exc:
            stream.failed = True
            self._reject_coins(prover_id, f"undecodable chunk in stream: {exc}")
            return False
        stream.received += rows
        return True

    def partial_adjusted_products(self, prover_id: str) -> tuple[bool, list[Commitment]]:
        """One shard's Line 12 contribution: (stream healthy, per-lane
        partials).  Unlike :meth:`finish_coin_stream` there is no
        completeness check — a shard only ever sees its own chunks' folds
        — and the stream stays open."""
        stream = self._stream_for(prover_id)
        if stream.failed or stream.pending:
            return False, []
        return True, self._materialize_line12(stream)

    def install_adjusted_products(
        self, prover_id: str, products: list[Commitment]
    ) -> None:
        """Adopt merged Line 12 products computed by shard workers, in
        place of a locally run :meth:`finish_coin_stream`."""
        if len(products) != self.lanes:
            raise ParameterError("adjusted products do not match the plan's lanes")
        self._adjusted_products[prover_id] = list(products)
        self._coin_streams.pop(prover_id, None)

    # Phase 3/4: Morra results and the Line 12 update -------------------------

    def apply_public_bits(self, prover_id: str, public_bits: list[list[int]]) -> None:
        """Compute Π_j ĉ'_j per lane from the public bits (Line 12).

        One homomorphic pass: coins with b = 0 multiply in as-is, coins
        with b = 1 contribute Com(1,0)·c⁻¹, so the whole column folds to

            Com(k₁, 0) · Π_{b=0} c_j · (Π_{b=1} c_j)⁻¹

        with k₁ the number of flipped coins — two kernel products and a
        single inversion instead of nb divisions.
        """
        params = self.params
        group = params.group
        message = self._coin_messages[prover_id]
        products: list[Commitment] = []
        for lane in range(self.lanes):
            keep = []
            flip = []
            for j in range(params.nb):
                element = message.commitments[j][lane].element
                (flip if public_bits[j][lane] == 1 else keep).append(element)
            element = group.product(keep)
            if flip:
                constant = params.pedersen.commitment_to_constant(len(flip))
                element = constant.element * element / group.product(flip)
            products.append(Commitment(element))
        self._adjusted_products[prover_id] = products

    # Phase 5: final homomorphic check (Line 13) ------------------------------

    def check_prover_output(
        self,
        output: ProverOutputMessage,
        client_commitments: list[list[Commitment]],
    ) -> bool:
        """Line 13 for one prover, as a single multi_scale identity check.

        ``client_commitments[m]`` lists the included clients' commitments
        to this prover's shares of coordinate m.  All L lane equations are
        γ-weighted into one product

            Π_l [ ĉ'_l^{Δ_l} · Π_m (Π_i c_{i,m})^{w_{l,m}} ]^{γ_l}
              · g^{-Σγ_l y_l} · h^{-Σγ_l z_l} == 1

        checked with one multi-exponentiation; a rejection replays the
        per-lane check to name the mismatching coordinate.  With
        ``batch=False`` only the per-lane products run.
        """
        if len(client_commitments) != self.params.dimension:
            self.audit.provers[output.prover_id] = ProverStatus.FAILED_FINAL_CHECK
            return False
        group = self.params.group
        products = [
            group.product(c.element for c in column) for column in client_commitments
        ]
        return self._check_output_against(output, products)

    def check_prover_output_folded(self, output: ProverOutputMessage, prover_index: int) -> bool:
        """Streamed Line 13: check against the running client products
        accumulated by :meth:`fold_client_commitments`."""
        params = self.params
        if self._client_products is None:
            products = [params.group.identity()] * params.dimension
        else:
            products = [
                p if p is not None else params.group.identity()
                for p in self._client_products[prover_index]
            ]
        return self._check_output_against(output, products)

    def _check_output_against(
        self, output: ProverOutputMessage, coordinate_products: list[GroupElement]
    ) -> bool:
        """Shared Line 13 body over precomputed per-coordinate products."""
        params = self.params
        plan = self.plan
        lanes = plan.lanes
        prover_id = output.prover_id
        if prover_id not in self._adjusted_products:
            self.audit.provers[prover_id] = ProverStatus.ABORTED
            return False
        if len(output.y) != lanes or len(output.z) != lanes:
            self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
            return False
        q = params.q
        pedersen = params.pedersen
        adjusted = self._adjusted_products[prover_id]
        if self.batch:
            identity_plan = plan.is_identity()
            bases: list[GroupElement] = []
            exponents: list[int] = []
            coord_exps = [0] * plan.dimension
            g_exp = 0
            h_exp = 0
            for lane in range(lanes):
                gamma = 1 if lanes == 1 else self.gamma_rng.randbits(GAMMA_BITS)
                bases.append(adjusted[lane].element)
                if identity_plan:
                    # Lane l is coordinate l with unit weights — skip the
                    # O(M) zero-weight walk per lane.
                    exponents.append(gamma % q)
                    coord_exps[lane] = gamma % q
                else:
                    exponents.append((gamma * plan.noise_weights[lane]) % q)
                    for m, weight in enumerate(plan.lane_weights[lane]):
                        if weight:
                            coord_exps[m] = (coord_exps[m] + gamma * weight) % q
                g_exp = (g_exp - gamma * output.y[lane]) % q
                h_exp = (h_exp - gamma * output.z[lane]) % q
            for m, exp in enumerate(coord_exps):
                if exp:
                    bases.append(coordinate_products[m])
                    exponents.append(exp)
            combined = params.group.multi_scale(bases, exponents)
            combined = combined * pedersen.commit(g_exp, h_exp).element
            if combined.is_identity():
                self.audit.provers[prover_id] = ProverStatus.HONEST
                return True
        # Lane-by-lane: the whole check when batch=False, the pinpointing
        # replay when the combined product rejected.
        mismatch = None
        for lane in range(lanes):
            lhs = adjusted[lane].element ** plan.noise_weights[lane] if plan.noise_weights[lane] != 1 else adjusted[lane].element
            for m, weight in enumerate(plan.lane_weights[lane]):
                if weight == 1:
                    lhs = lhs * coordinate_products[m]
                elif weight:
                    lhs = lhs * (coordinate_products[m] ** weight)
            rhs = pedersen.commit(output.y[lane], output.z[lane])
            if lhs != rhs.element:
                mismatch = lane
                break
        if mismatch is None:
            if self.batch:  # pragma: no cover - batch/sequential divergence (bug)
                self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
                self.audit.note(f"{prover_id}: combined Line 13 check rejected")
                return False
            self.audit.provers[prover_id] = ProverStatus.HONEST
            return True
        self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
        self.audit.note(
            f"{prover_id}: commitment product mismatch on coordinate {mismatch}"
        )
        return False
