"""The public verifier of ΠBin.

The verifier (the "analyst" Vfr) never sees a client input, a private
coin, or any commitment opening other than the aggregate (y_k, z_k).  It:

1. validates every client's Σ-OR / one-hot proof over the *derived*
   commitments (Line 3) and publishes the per-client verdicts,
2. checks every prover's coin commitments are bits (Lines 5–6),
3. co-samples the public Morra bits with each prover (Lines 7–8),
4. applies the linear commitment update ĉ' (Line 12) — computing a
   commitment to v̂ = v ⊕ b without knowing v, and
5. checks Π_i c_{i,k} · Π_j ĉ'_{j,k} == Com(y_k, z_k) (Line 13).

Because all five steps consume only public messages, *anyone* can replay
them: the audit record produced here is reproducible by third parties,
which is the "publicly auditable" property of Table 2.
"""

from __future__ import annotations

from repro.core.client import _client_transcript
from repro.core.messages import (
    AuditRecord,
    ClientBroadcast,
    ClientStatus,
    CoinCommitmentMessage,
    ProverOutputMessage,
    ProverStatus,
)
from repro.core.params import PublicParams
from repro.core.prover import coin_transcript
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.onehot import OneHotProof, verify_one_hot
from repro.crypto.sigma.or_bit import BitProof, verify_bit
from repro.errors import VerificationError
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import RNG

__all__ = ["PublicVerifier"]


class PublicVerifier(MorraParticipant):
    """The (honest) public verifier / analyst."""

    def __init__(self, params: PublicParams, rng: RNG | None = None, *, name: str = "verifier") -> None:
        super().__init__(name, rng)
        self.params = params
        self.audit = AuditRecord()
        # Adjusted coin-commitment products per prover, filled in phase 4.
        self._coin_messages: dict[str, CoinCommitmentMessage] = {}
        self._adjusted_products: dict[str, list[Commitment]] = {}

    # Phase 1: client validation (Line 3) -----------------------------------

    def validate_client(self, broadcast: ClientBroadcast) -> ClientStatus:
        """Check shape and the validity proof of one client submission."""
        params = self.params
        expected_shape = (
            len(broadcast.share_commitments) == params.num_provers
            and all(len(row) == params.dimension for row in broadcast.share_commitments)
        )
        if not expected_shape:
            return ClientStatus.INVALID_PROOF
        derived = broadcast.derived_commitments()
        transcript = _client_transcript(params, broadcast.client_id)
        try:
            if params.dimension == 1:
                if not isinstance(broadcast.validity_proof, BitProof):
                    return ClientStatus.INVALID_PROOF
                verify_bit(params.pedersen, derived[0], broadcast.validity_proof, transcript)
            else:
                if not isinstance(broadcast.validity_proof, OneHotProof):
                    return ClientStatus.INVALID_PROOF
                verify_one_hot(params.pedersen, derived, broadcast.validity_proof, transcript)
        except VerificationError:
            return ClientStatus.INVALID_PROOF
        return ClientStatus.VALID

    def validate_clients(
        self,
        broadcasts: list[ClientBroadcast],
        complaints: dict[str, list[str]] | None = None,
    ) -> list[str]:
        """Validate all clients; returns ids of included clients.

        ``complaints`` maps prover name → client ids whose private opening
        failed that prover's check; such clients are excluded with status
        BAD_OPENING (the public record resolving Figure 1's ambiguity).
        """
        complained = {cid for cids in (complaints or {}).values() for cid in cids}
        valid: list[str] = []
        for broadcast in broadcasts:
            status = self.validate_client(broadcast)
            if status is ClientStatus.VALID and broadcast.client_id in complained:
                status = ClientStatus.BAD_OPENING
            self.audit.clients[broadcast.client_id] = status
            if status is ClientStatus.VALID:
                valid.append(broadcast.client_id)
        return valid

    # Phase 2: prover coin validation (Lines 5-6) ----------------------------

    def verify_coin_commitments(self, message: CoinCommitmentMessage, context: bytes) -> bool:
        """Check every coin commitment is a bit; record verdict on failure."""
        params = self.params
        transcript = coin_transcript(params, message.prover_id, context)
        shape_ok = len(message.commitments) == params.nb and len(message.proofs) == params.nb
        if shape_ok:
            shape_ok = all(
                len(c_row) == params.dimension and len(p_row) == params.dimension
                for c_row, p_row in zip(message.commitments, message.proofs)
            )
        if not shape_ok:
            self.audit.provers[message.prover_id] = ProverStatus.BAD_COIN_PROOF
            self.audit.note(f"{message.prover_id}: malformed coin message")
            return False
        try:
            for c_row, p_row in zip(message.commitments, message.proofs):
                for commitment, proof in zip(c_row, p_row):
                    verify_bit(params.pedersen, commitment, proof, transcript)
        except VerificationError as exc:
            self.audit.provers[message.prover_id] = ProverStatus.BAD_COIN_PROOF
            self.audit.note(f"{message.prover_id}: coin proof rejected ({exc})")
            return False
        self._coin_messages[message.prover_id] = message
        return True

    # Phase 3/4: Morra results and the Line 12 update -------------------------

    def apply_public_bits(self, prover_id: str, public_bits: list[list[int]]) -> None:
        """Compute Π_j ĉ'_j per coordinate from the public bits (Line 12)."""
        params = self.params
        message = self._coin_messages[prover_id]
        products: list[Commitment] = [
            params.pedersen.commitment_to_constant(0) for _ in range(params.dimension)
        ]
        for j in range(params.nb):
            for m in range(params.dimension):
                c = message.commitments[j][m]
                adjusted = params.pedersen.one_minus(c) if public_bits[j][m] == 1 else c
                products[m] = products[m] * adjusted
        self._adjusted_products[prover_id] = products

    # Phase 5: final homomorphic check (Line 13) ------------------------------

    def check_prover_output(
        self,
        output: ProverOutputMessage,
        client_commitments: list[list[Commitment]],
    ) -> bool:
        """Line 13 for one prover.

        ``client_commitments[m]`` lists the included clients' commitments
        to this prover's shares of coordinate m.
        """
        params = self.params
        prover_id = output.prover_id
        if prover_id not in self._adjusted_products:
            self.audit.provers[prover_id] = ProverStatus.ABORTED
            return False
        if len(output.y) != params.dimension or len(output.z) != params.dimension:
            self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
            return False
        for m in range(params.dimension):
            lhs = self._adjusted_products[prover_id][m]
            for commitment in client_commitments[m]:
                lhs = lhs * commitment
            rhs = params.pedersen.commit(output.y[m], output.z[m])
            if lhs.element != rhs.element:
                self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
                self.audit.note(
                    f"{prover_id}: commitment product mismatch on coordinate {m}"
                )
                return False
        self.audit.provers[prover_id] = ProverStatus.HONEST
        return True
