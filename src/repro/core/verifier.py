"""The public verifier of ΠBin.

The verifier (the "analyst" Vfr) never sees a client input, a private
coin, or any commitment opening other than the aggregate (y_k, z_k).  It:

1. validates every client's Σ-OR / one-hot proof over the *derived*
   commitments (Line 3) and publishes the per-client verdicts,
2. checks every prover's coin commitments are bits (Lines 5–6),
3. co-samples the public Morra bits with each prover (Lines 7–8),
4. applies the linear commitment update ĉ' (Line 12) — computing a
   commitment to v̂ = v ⊕ b without knowing v, and
5. checks Π_i c_{i,k} · Π_j ĉ'_{j,k} == Com(y_k, z_k) (Line 13).

Because all five steps consume only public messages, *anyone* can replay
them: the audit record produced here is reproducible by third parties,
which is the "publicly auditable" property of Table 2.

Verification is **batched by default**: all Σ-OR equations — every
prover's nb coin proofs and every client's validity proof — are folded
into a :class:`repro.crypto.sigma.batch.SigmaBatch` random linear
combination and checked with one Pippenger multi-exponentiation.  A batch
rejection cannot name the cheater, so on failure the verifier replays
the sequential per-proof path to pinpoint (and audit-record) exactly
which proof failed; construct with ``batch=False`` to force the
sequential path throughout (the ablation benchmarks do).
"""

from __future__ import annotations

from repro.core.client import _client_transcript
from repro.core.messages import (
    AuditRecord,
    ClientBroadcast,
    ClientStatus,
    CoinCommitmentMessage,
    ProverOutputMessage,
    ProverStatus,
)
from repro.core.params import PublicParams
from repro.core.prover import coin_transcript
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.batch import GAMMA_BITS, SigmaBatch
from repro.crypto.sigma.onehot import OneHotProof, verify_one_hot
from repro.crypto.sigma.or_bit import BitProof, verify_bit
from repro.errors import VerificationError
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import RNG, SystemRNG

__all__ = ["PublicVerifier"]


class PublicVerifier(MorraParticipant):
    """The (honest) public verifier / analyst."""

    def __init__(
        self,
        params: PublicParams,
        rng: RNG | None = None,
        *,
        name: str = "verifier",
        batch: bool = True,
        gamma_rng: RNG | None = None,
    ) -> None:
        super().__init__(name, rng)
        self.params = params
        self.batch = batch
        # Batch RLC weights must be unpredictable to proof authors even
        # when ``rng`` is a seeded simulation stream (a predictable γ
        # stream lets two tampered proofs cancel — see the batch module
        # docstring), so they come from a dedicated source that defaults
        # to system randomness.  Auditors replaying with a *public* RNG
        # must use ``batch=False`` instead.
        self.gamma_rng = gamma_rng if gamma_rng is not None else SystemRNG()
        self.audit = AuditRecord()
        # Adjusted coin-commitment products per prover, filled in phase 4.
        self._coin_messages: dict[str, CoinCommitmentMessage] = {}
        self._adjusted_products: dict[str, list[Commitment]] = {}

    # Phase 1: client validation (Line 3) -----------------------------------

    def validate_client(self, broadcast: ClientBroadcast) -> ClientStatus:
        """Check shape and the validity proof of one client submission.

        This is the sequential path; it stays authoritative so a failed
        batch can always be replayed proof by proof.
        """
        params = self.params
        if not self._client_shape_ok(broadcast):
            return ClientStatus.INVALID_PROOF
        derived = broadcast.derived_commitments()
        transcript = _client_transcript(params, broadcast.client_id)
        try:
            if params.dimension == 1:
                verify_bit(params.pedersen, derived[0], broadcast.validity_proof, transcript)
            else:
                verify_one_hot(params.pedersen, derived, broadcast.validity_proof, transcript)
        except VerificationError:
            return ClientStatus.INVALID_PROOF
        return ClientStatus.VALID

    def _client_shape_ok(self, broadcast: ClientBroadcast) -> bool:
        params = self.params
        if not (
            len(broadcast.share_commitments) == params.num_provers
            and all(len(row) == params.dimension for row in broadcast.share_commitments)
        ):
            return False
        expected_proof = BitProof if params.dimension == 1 else OneHotProof
        return isinstance(broadcast.validity_proof, expected_proof)

    def validate_clients(
        self,
        broadcasts: list[ClientBroadcast],
        complaints: dict[str, list[str]] | None = None,
    ) -> list[str]:
        """Validate all clients; returns ids of included clients.

        With batching enabled every client's validity proof is folded
        into one cross-client random linear combination (a single
        multi-exponentiation); a rejection replays the per-client path so
        the audit record still names each invalid client individually.

        ``complaints`` maps prover name → client ids whose private opening
        failed that prover's check; such clients are excluded with status
        BAD_OPENING (the public record resolving Figure 1's ambiguity).
        """
        if self.batch:
            statuses = self._validate_clients_batched(broadcasts)
        else:
            statuses = [self.validate_client(broadcast) for broadcast in broadcasts]
        complained = {cid for cids in (complaints or {}).values() for cid in cids}
        valid: list[str] = []
        for broadcast, status in zip(broadcasts, statuses):
            if status is ClientStatus.VALID and broadcast.client_id in complained:
                status = ClientStatus.BAD_OPENING
            self.audit.clients[broadcast.client_id] = status
            if status is ClientStatus.VALID:
                valid.append(broadcast.client_id)
        return valid

    def _validate_clients_batched(
        self, broadcasts: list[ClientBroadcast]
    ) -> list[ClientStatus]:
        """Per-broadcast statuses, aligned with ``broadcasts`` by position
        (never keyed by client id — duplicate ids must not share a verdict).
        """
        combined = SigmaBatch(self.params.pedersen, self.gamma_rng)
        staged: list[int] = []
        statuses: list[ClientStatus] = []
        for i, broadcast in enumerate(broadcasts):
            ok = self._client_shape_ok(broadcast) and self._stage_into(
                combined, lambda sub: self._fold_client(sub, broadcast)
            )
            if ok:
                staged.append(i)
            statuses.append(
                ClientStatus.VALID if ok else ClientStatus.INVALID_PROOF
            )
        if staged and not self._verify_staged(combined):
            # One combined product cannot name the cheater; replay each
            # staged client sequentially to pinpoint.
            for i in staged:
                statuses[i] = self.validate_client(broadcasts[i])
        return statuses

    # Shared batch staging ---------------------------------------------------

    def _stage_into(self, combined: SigmaBatch, fold) -> bool:
        """Fold one message into ``combined`` via a throwaway sub-batch.

        Staging per message means a structural failure (bad challenge
        split) taints only that message, never the whole combination.
        Returns False — leaving ``combined`` untouched — when ``fold``
        raises a verification error.
        """
        sub = SigmaBatch(self.params.pedersen, self.gamma_rng)
        try:
            fold(sub)
        except VerificationError:
            return False
        combined.merge(sub)
        return True

    @staticmethod
    def _verify_staged(combined: SigmaBatch) -> bool:
        try:
            combined.verify()
        except VerificationError:
            return False
        return True

    def _fold_client(self, batch: SigmaBatch, broadcast: ClientBroadcast) -> None:
        params = self.params
        derived = broadcast.derived_commitments()
        transcript = _client_transcript(params, broadcast.client_id)
        if params.dimension == 1:
            batch.add_bit_proof(derived[0], broadcast.validity_proof, transcript)
        else:
            batch.add_one_hot(derived, broadcast.validity_proof, transcript)

    # Phase 2: prover coin validation (Lines 5-6) ----------------------------

    def _coin_shape_ok(self, message: CoinCommitmentMessage) -> bool:
        params = self.params
        if len(message.commitments) != params.nb or len(message.proofs) != params.nb:
            return False
        return all(
            len(c_row) == params.dimension and len(p_row) == params.dimension
            for c_row, p_row in zip(message.commitments, message.proofs)
        )

    def _sequential_coin_note(
        self, message: CoinCommitmentMessage, context: bytes
    ) -> str | None:
        """Replay one prover's coin proofs one by one.

        Returns None when every proof verifies, else a note naming the
        first failing coin — the pinpointing the batch path cannot do.
        """
        params = self.params
        transcript = coin_transcript(params, message.prover_id, context)
        for j, (c_row, p_row) in enumerate(zip(message.commitments, message.proofs)):
            for m, (commitment, proof) in enumerate(zip(c_row, p_row)):
                try:
                    verify_bit(params.pedersen, commitment, proof, transcript)
                except VerificationError as exc:
                    return f"coin proof rejected at coin {j}, coordinate {m} ({exc})"
        return None

    def _fold_coin_message(
        self, batch: SigmaBatch, message: CoinCommitmentMessage, context: bytes
    ) -> None:
        params = self.params
        transcript = coin_transcript(params, message.prover_id, context)
        for c_row, p_row in zip(message.commitments, message.proofs):
            for commitment, proof in zip(c_row, p_row):
                batch.add_bit_proof(commitment, proof, transcript)

    def _reject_coins(self, prover_id: str, note: str) -> None:
        self.audit.provers[prover_id] = ProverStatus.BAD_COIN_PROOF
        self.audit.note(f"{prover_id}: {note}")

    def verify_coin_commitments(self, message: CoinCommitmentMessage, context: bytes) -> bool:
        """Check every coin commitment is a bit; record verdict on failure.

        Batched by default: one random-linear-combination multiexp over
        all nb·M proofs, with the sequential path replayed on rejection
        so the audit note names the exact failing coin.
        """
        if not self._coin_shape_ok(message):
            self._reject_coins(message.prover_id, "malformed coin message")
            return False
        if self.batch:
            batch = SigmaBatch(self.params.pedersen, self.gamma_rng)
            try:
                self._fold_coin_message(batch, message, context)
                batch.verify()
            except VerificationError:
                note = self._sequential_coin_note(message, context)
                if note is None:  # pragma: no cover - batch/sequential divergence (bug)
                    note = "batched coin verification rejected (sequential replay accepted)"
                self._reject_coins(message.prover_id, note)
                return False
        else:
            note = self._sequential_coin_note(message, context)
            if note is not None:
                self._reject_coins(message.prover_id, note)
                return False
        self._coin_messages[message.prover_id] = message
        return True

    def verify_all_coin_commitments(
        self, messages: list[CoinCommitmentMessage], context: bytes
    ) -> dict[str, bool]:
        """Lines 5–6 for *all* provers with one multi-exponentiation.

        Every well-formed prover message is staged into a single
        cross-prover :class:`SigmaBatch`; only if the combined check
        rejects does the verifier narrow down per prover (and then per
        proof) to name the cheater.
        """
        results: dict[str, bool] = {}
        if not self.batch:
            for message in messages:
                results[message.prover_id] = self.verify_coin_commitments(message, context)
            return results
        combined = SigmaBatch(self.params.pedersen, self.gamma_rng)
        staged: list[CoinCommitmentMessage] = []
        for message in messages:
            if not self._coin_shape_ok(message):
                self._reject_coins(message.prover_id, "malformed coin message")
                results[message.prover_id] = False
                continue
            if not self._stage_into(
                combined, lambda sub: self._fold_coin_message(sub, message, context)
            ):
                note = self._sequential_coin_note(message, context)
                self._reject_coins(message.prover_id, note or "coin proof rejected")
                results[message.prover_id] = False
                continue
            staged.append(message)
        if staged:
            if not self._verify_staged(combined):
                # Narrow per prover; verify_coin_commitments pinpoints.
                for message in staged:
                    results[message.prover_id] = self.verify_coin_commitments(
                        message, context
                    )
                return results
            for message in staged:
                self._coin_messages[message.prover_id] = message
                results[message.prover_id] = True
        return results

    # Phase 3/4: Morra results and the Line 12 update -------------------------

    def apply_public_bits(self, prover_id: str, public_bits: list[list[int]]) -> None:
        """Compute Π_j ĉ'_j per coordinate from the public bits (Line 12).

        One homomorphic pass: coins with b = 0 multiply in as-is, coins
        with b = 1 contribute Com(1,0)·c⁻¹, so the whole column folds to

            Com(k₁, 0) · Π_{b=0} c_j · (Π_{b=1} c_j)⁻¹

        with k₁ the number of flipped coins — two kernel products and a
        single inversion instead of nb divisions.
        """
        params = self.params
        group = params.group
        message = self._coin_messages[prover_id]
        products: list[Commitment] = []
        for m in range(params.dimension):
            keep = []
            flip = []
            for j in range(params.nb):
                element = message.commitments[j][m].element
                (flip if public_bits[j][m] == 1 else keep).append(element)
            element = group.product(keep)
            if flip:
                constant = params.pedersen.commitment_to_constant(len(flip))
                element = constant.element * element / group.product(flip)
            products.append(Commitment(element))
        self._adjusted_products[prover_id] = products

    # Phase 5: final homomorphic check (Line 13) ------------------------------

    def check_prover_output(
        self,
        output: ProverOutputMessage,
        client_commitments: list[list[Commitment]],
    ) -> bool:
        """Line 13 for one prover, as a single multi_scale identity check.

        ``client_commitments[m]`` lists the included clients' commitments
        to this prover's shares of coordinate m.  All M coordinate
        equations are γ-weighted into one product

            Π_m [ ĉ'_m · Π_i c_{i,m} ]^{γ_m} · g^{-Σγ_m y_m} · h^{-Σγ_m z_m} == 1

        checked with one multi-exponentiation; a rejection replays the
        per-coordinate check to name the mismatching coordinate.  With
        ``batch=False`` only the per-coordinate products run.
        """
        params = self.params
        prover_id = output.prover_id
        if prover_id not in self._adjusted_products:
            self.audit.provers[prover_id] = ProverStatus.ABORTED
            return False
        if len(output.y) != params.dimension or len(output.z) != params.dimension:
            self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
            return False
        q = params.q
        pedersen = params.pedersen
        adjusted = self._adjusted_products[prover_id]
        if self.batch:
            bases = []
            exponents = []
            g_exp = 0
            h_exp = 0
            for m in range(params.dimension):
                gamma = 1 if params.dimension == 1 else self.gamma_rng.randbits(GAMMA_BITS)
                # All of coordinate m's commitments share γ_m: fold them
                # with plain multiplications (one each) instead of giving
                # every client commitment its own multiexp term.
                bases.append(
                    params.group.product(
                        [adjusted[m].element]
                        + [c.element for c in client_commitments[m]]
                    )
                )
                exponents.append(gamma)
                g_exp = (g_exp - gamma * output.y[m]) % q
                h_exp = (h_exp - gamma * output.z[m]) % q
            bases.extend([pedersen.g, pedersen.h])
            exponents.extend([g_exp, h_exp])
            if params.group.multi_scale(bases, exponents).is_identity():
                self.audit.provers[prover_id] = ProverStatus.HONEST
                return True
        # Coordinate-by-coordinate: the whole check when batch=False, the
        # pinpointing replay when the combined product rejected.
        mismatch = None
        for m in range(params.dimension):
            lhs = params.group.product(
                [adjusted[m].element] + [c.element for c in client_commitments[m]]
            )
            rhs = pedersen.commit(output.y[m], output.z[m])
            if lhs != rhs.element:
                mismatch = m
                break
        if mismatch is None:
            if self.batch:  # pragma: no cover - batch/sequential divergence (bug)
                self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
                self.audit.note(f"{prover_id}: combined Line 13 check rejected")
                return False
            self.audit.provers[prover_id] = ProverStatus.HONEST
            return True
        self.audit.provers[prover_id] = ProverStatus.FAILED_FINAL_CHECK
        self.audit.note(
            f"{prover_id}: commitment product mismatch on coordinate {mismatch}"
        )
        return False
