"""Message and record types exchanged during ΠBin.

Everything a party broadcasts is public (the verifier is public: "anyone
(even non-participants to ΠBin) can see the messages it receives",
Section 4.3).  Private channels carry only :class:`ClientShareMessage`.

Index conventions (matching Figure 2):

* ``i`` ∈ [n] indexes clients, ``k`` ∈ [K] provers, ``m`` ∈ [M] histogram
  coordinates, ``j`` ∈ [nb] private noise coins.
* ``c[i][k][m]`` — client commitment to the k-th share of coordinate m.
* ``c'[j][m]`` — a prover's commitment to private coin j of coordinate m.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.bitvec import BitVectorProof
from repro.crypto.sigma.onehot import OneHotProof
from repro.crypto.sigma.or_bit import BitProof

__all__ = [
    "ClientBroadcast",
    "ClientShareMessage",
    "CoinCommitmentMessage",
    "ProverOutputMessage",
    "MorraCommitMessage",
    "MorraRevealMessage",
    "ClientStatus",
    "ProverStatus",
    "AuditRecord",
    "Release",
]


@dataclass(frozen=True)
class ClientBroadcast:
    """A client's public message (Line 2–3 of Figure 2).

    ``share_commitments[k][m]`` commits to the k-th share of coordinate m;
    ``validity_proof`` proves the *derived* commitments c_m = Π_k c[k][m]
    (which anyone can compute) lie in the query's language L: Σ-OR for a
    bit, one-hot for histograms, bit-vector for range decompositions.
    """

    client_id: str
    share_commitments: tuple[tuple[Commitment, ...], ...]
    validity_proof: BitProof | OneHotProof | BitVectorProof

    def derived_commitments(self) -> list[Commitment]:
        """c_m = Π_k c[k][m] — commitments to the plaintext coordinates."""
        out = []
        for m in range(len(self.share_commitments[0])):
            acc = self.share_commitments[0][m]
            for k in range(1, len(self.share_commitments)):
                acc = acc * self.share_commitments[k][m]
            out.append(acc)
        return out


@dataclass(frozen=True)
class ClientShareMessage:
    """A client's private message to one prover: openings of its share
    commitments for that prover (⟦x_i⟧_k with randomness, Line 2)."""

    client_id: str
    openings: tuple[Opening, ...]  # one per coordinate m


@dataclass(frozen=True)
class CoinCommitmentMessage:
    """A prover's coin commitments and bit proofs (Lines 4–5).

    ``commitments[j][m]`` with matching ``proofs[j][m]``.
    """

    prover_id: str
    commitments: tuple[tuple[Commitment, ...], ...]
    proofs: tuple[tuple[BitProof, ...], ...]


@dataclass(frozen=True)
class ProverOutputMessage:
    """A prover's final (y_k, z_k) per coordinate (Lines 10–11)."""

    prover_id: str
    y: tuple[int, ...]
    z: tuple[int, ...]


@dataclass(frozen=True)
class MorraCommitMessage:
    """One party's Morra commit round (Algorithm 1, step 2).

    ``digests[i]`` is the hash commitment to contribution m_i of the i-th
    parallel instance; the values themselves stay private until reveal.
    """

    sender: str
    digests: tuple[bytes, ...]


@dataclass(frozen=True)
class MorraRevealMessage:
    """One party's Morra reveal round (Algorithm 1, step 3).

    Only the contributed values are public protocol messages; the
    commitment randomness travels on the point-to-point opening channel
    and is consumed by the verifying parties.
    """

    sender: str
    values: tuple[int, ...]


class ClientStatus(Enum):
    """Public per-client verdict (the Line 3 'public record')."""

    VALID = "valid"
    INVALID_PROOF = "invalid-proof"
    BAD_OPENING = "bad-opening"


class ProverStatus(Enum):
    """Public per-prover verdict."""

    HONEST = "honest"
    BAD_COIN_PROOF = "bad-coin-proof"
    FAILED_FINAL_CHECK = "failed-final-check"
    ABORTED = "aborted"


@dataclass
class AuditRecord:
    """The public audit trail of one protocol run.

    This is what makes the protocol *publicly auditable* (Table 2): every
    accept/reject decision is recorded with its reason, so any third party
    replaying the public messages reaches the same verdicts.
    """

    clients: dict[str, ClientStatus] = field(default_factory=dict)
    provers: dict[str, ProverStatus] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def valid_clients(self) -> list[str]:
        return [cid for cid, status in self.clients.items() if status is ClientStatus.VALID]

    def honest_provers(self) -> list[str]:
        return [pid for pid, status in self.provers.items() if status is ProverStatus.HONEST]

    def all_provers_honest(self) -> bool:
        return all(status is ProverStatus.HONEST for status in self.provers.values())

    def note(self, message: str) -> None:
        self.notes.append(message)


@dataclass(frozen=True)
class Release:
    """The verified DP output.

    ``raw`` is y = Σ_k y_k per coordinate (count plus noise, in Z_q);
    ``estimate`` subtracts the public noise mean K·nb/2.  ``accepted`` is
    the verifier's overall bit — when False the output must be discarded
    (a cheater was detected and is named in the audit record).
    """

    raw: tuple[int, ...]
    estimate: tuple[float, ...]
    accepted: bool
    audit: AuditRecord
    epsilon: float
    delta: float

    @property
    def scalar_estimate(self) -> float:
        """Convenience accessor for M = 1 counting queries."""
        return self.estimate[0]
