"""ΠBin — verifiable differentially-private counting (the paper's core).

The package implements Figure 2 end to end, in both models:

* **Trusted curator** (K = 1): one prover sees client bits in plaintext and
  must prove the released count is the true count plus honestly-sampled
  Binomial noise.
* **Client–server MPC** (K >= 2): clients secret-share their inputs; each
  prover runs the identical per-prover protocol on its shares, adding its
  own independent copy of Binomial noise (necessary against K-1
  collusions); a public verifier validates clients, checks every prover's
  Σ-OR proofs, co-samples the Morra public coins and performs the final
  homomorphic check.

Entry point: :class:`repro.api.Session` executes declarative queries
(count, histogram, bounded sum, composed) over the substrate defined
here.  The legacy :class:`repro.core.protocol.VerifiableBinomialProtocol`
and :class:`repro.core.histogram.VerifiableHistogram` classes remain as
deprecated shims over the same engine.
"""

from repro.core.params import PublicParams, setup
from repro.core.plan import AggregationPlan
from repro.core.messages import (
    ClientBroadcast,
    ClientShareMessage,
    CoinCommitmentMessage,
    ProverOutputMessage,
    AuditRecord,
    Release,
)
from repro.core.client import Client, encode_choice
from repro.core.prover import (
    Prover,
    BiasedCoinProver,
    SkipAdjustmentProver,
    OutputTamperingProver,
    InputDroppingProver,
    InputInjectingProver,
)
from repro.core.verifier import PublicVerifier
from repro.core.protocol import VerifiableBinomialProtocol
from repro.core.histogram import VerifiableHistogram
from repro.core.simulator import simulate_curator_view, simulate_mpc_view
from repro.core.bounded_sum import VerifiableBoundedSum
from repro.core.bulletin import BulletinBoard, replay_audit

__all__ = [
    "PublicParams",
    "setup",
    "AggregationPlan",
    "ClientBroadcast",
    "ClientShareMessage",
    "CoinCommitmentMessage",
    "ProverOutputMessage",
    "AuditRecord",
    "Release",
    "Client",
    "encode_choice",
    "Prover",
    "BiasedCoinProver",
    "SkipAdjustmentProver",
    "OutputTamperingProver",
    "InputDroppingProver",
    "InputInjectingProver",
    "PublicVerifier",
    "VerifiableBinomialProtocol",
    "VerifiableHistogram",
    "simulate_curator_view",
    "simulate_mpc_view",
    "VerifiableBoundedSum",
    "BulletinBoard",
    "replay_audit",
]
