"""Zero-knowledge simulators for ΠBin (Proof 1, case 3 and Appendix D).

These are executable versions of the simulators in the paper's security
proof.  A simulator is given only what a corrupted verifier legitimately
learns — the public client commitments and the *ideal* output y of MBin —
and must fabricate a transcript indistinguishable from a real run.  That
such a transcript exists (and passes every public check) is exactly why
the protocol leaks nothing beyond y.

Construction (Appendix D, K = 1):

1. receive the public client commitments {c_i} and the ideal y,
2. pick z ← R_pp and target Com(y, z),
3. fabricate coin commitments: c'_j = Com(1, s_j) for j >= 2, and solve
   for the first *adjusted* commitment
   ĉ'_1 = Com(y, z) · (Π_i c_i)⁻¹ · (Π_{j>=2} ĉ'_j)⁻¹ so the Line 13
   product holds; un-adjust by the pre-programmed Morra bit to get c'_1,
4. program the Morra oracle with the pre-sampled public bits (the
   simulator controls O_morra in the hybrid world).

The simulator cannot open c'_1 — but it never must: c'_1 *is* a
commitment to a bit (Pedersen commitments are perfectly hiding, every
group element commits to every value), so the O_OR oracle answers 1.  In
the real (non-hybrid) world that step is the Σ-OR proof, whose simulation
requires programming the random oracle; tests therefore compare the
hybrid-world views, exactly as the paper's proof does.

The MPC case (K = 2, Proof 1) additionally receives the corrupted
prover's input X₁ and its noise Δ₁ from MBin, sets y₁ = X₁ + Δ₁ and
simulates the honest prover's output share as y₂ = y - y₁.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PublicParams
from repro.crypto.pedersen import Commitment
from repro.dp.binomial import sample_binomial
from repro.errors import ParameterError
from repro.utils.rng import RNG, default_rng

__all__ = [
    "SimulatedProverView",
    "simulate_curator_view",
    "simulate_mpc_view",
    "simulate_mpc_view_general",
]


@dataclass(frozen=True)
class SimulatedProverView:
    """The public view of one prover's run, as fabricated by the simulator.

    Mirrors what a verifier sees in a real run: the coin commitments, the
    public Morra bits, and the output (y, z).  ``verify_line13`` replays
    the verifier's product check — the distinguisher's strongest test.
    """

    coin_commitments: tuple[Commitment, ...]
    public_bits: tuple[int, ...]
    y: int
    z: int

    def adjusted_products(self, params: PublicParams) -> Commitment:
        """Π_j ĉ'_j per Line 12."""
        product = params.pedersen.commitment_to_constant(0)
        for commitment, bit in zip(self.coin_commitments, self.public_bits):
            adjusted = params.pedersen.one_minus(commitment) if bit else commitment
            product = product * adjusted
        return product

    def verify_line13(
        self, params: PublicParams, client_commitments: list[Commitment]
    ) -> bool:
        """The verifier's final check on this (simulated) view."""
        lhs = self.adjusted_products(params)
        for commitment in client_commitments:
            lhs = lhs * commitment
        rhs = params.pedersen.commit(self.y, self.z)
        return lhs.element == rhs.element


def _fabricate_view(
    params: PublicParams,
    client_commitments: list[Commitment],
    y_share: int,
    rng: RNG,
) -> SimulatedProverView:
    """Steps 2-4 of the simulator for one prover's view."""
    pedersen = params.pedersen
    q = params.q
    nb = params.nb
    if nb < 1:
        raise ParameterError("nb must be at least 1")

    z = rng.field_element(q)
    target = pedersen.commit(y_share, z)

    # Pre-programmed public bits (the simulator controls O_morra).
    bits = [rng.coin() for _ in range(nb)]

    # Coin commitments j >= 2: honest-looking commitments to 1.
    tail_commitments: list[Commitment] = []
    tail_adjusted: list[Commitment] = []
    for j in range(1, nb):
        c, _ = pedersen.commit_fresh(1, rng)
        tail_commitments.append(c)
        tail_adjusted.append(pedersen.one_minus(c) if bits[j] else c)

    # Solve for the first adjusted commitment so Line 13 holds.
    inverse_product = params.group.identity()
    for c in tail_adjusted:
        inverse_product = inverse_product * c.element
    for c in client_commitments:
        inverse_product = inverse_product * c.element
    adjusted_first = Commitment(target.element / inverse_product)
    first = (
        pedersen.one_minus(adjusted_first) if bits[0] else adjusted_first
    )  # one_minus is an involution: un-adjusting equals adjusting again

    return SimulatedProverView(
        coin_commitments=tuple([first] + tail_commitments),
        public_bits=tuple(bits),
        y=y_share % q,
        z=z,
    )


def simulate_curator_view(
    params: PublicParams,
    client_commitments: list[Commitment],
    ideal_output: int,
    rng: RNG | None = None,
) -> SimulatedProverView:
    """Appendix D: simulate the single curator's public view.

    ``ideal_output`` is y = MBin(X, Q) obtained from the ideal
    functionality — the *only* data-dependent value the simulator sees.
    """
    if params.num_provers != 1:
        raise ParameterError("curator simulation requires K = 1 params")
    if params.dimension != 1:
        raise ParameterError("simulator implemented for the counting query (M = 1)")
    rng = default_rng(rng)
    return _fabricate_view(params, client_commitments, ideal_output, rng)


def simulate_mpc_view(
    params: PublicParams,
    client_commitments_by_prover: list[list[Commitment]],
    corrupted_input: int,
    ideal_output: int,
    rng: RNG | None = None,
) -> tuple[int, SimulatedProverView]:
    """Proof 1 case 3 (K = 2, Pv₁ and Vfr* corrupted, Pv₂ honest).

    ``corrupted_input`` is X₁ — the aggregate share the *corrupted* prover
    actually used (extracted from the adversary, not from honest clients,
    per the definition of security).  Returns (y₁, honest prover view):
    the simulator samples Δ₁ itself (as MBin would), sets y₁ = X₁ + Δ₁
    and fabricates Pv₂'s view for y₂ = y - y₁.
    """
    if params.num_provers != 2:
        raise ParameterError("this simulator is specialized to K = 2, as in the paper")
    if params.dimension != 1:
        raise ParameterError("simulator implemented for the counting query (M = 1)")
    rng = default_rng(rng)
    q = params.q
    delta1 = sample_binomial(params.nb, rng)
    y1 = (corrupted_input + delta1) % q
    y2 = (ideal_output - y1) % q
    view2 = _fabricate_view(params, client_commitments_by_prover[1], y2, rng)
    return y1, view2


def simulate_mpc_view_general(
    params: PublicParams,
    client_commitments_by_prover: list[list[Commitment]],
    corrupted_inputs: dict[int, int],
    ideal_output: int,
    rng: RNG | None = None,
) -> tuple[dict[int, int], dict[int, SimulatedProverView]]:
    """The K >= 2 generalization the paper asserts ("trivially generalises").

    ``corrupted_inputs`` maps corrupted prover indices (the set I, a
    *proper* subset of [K]) to the aggregate inputs X_k the adversary
    actually used.  Per MBin's ideal functionality the simulator draws an
    independent Δ_k for each corrupted prover (y_k = X_k + Δ_k); the
    honest provers' output shares are fabricated as uniform values summing
    to y - Σ_{k∈I} y_k, each backed by a view passing the Line 13 check
    on that prover's public client commitments.

    Returns ({corrupted k: y_k}, {honest k: fabricated view}).
    """
    k_total = params.num_provers
    if len(client_commitments_by_prover) != k_total:
        raise ParameterError("need one commitment list per prover")
    corrupted = set(corrupted_inputs)
    if not corrupted.issubset(range(k_total)) or len(corrupted) >= k_total:
        raise ParameterError("corrupted set must be a proper subset of [K]")
    if params.dimension != 1:
        raise ParameterError("simulator implemented for the counting query (M = 1)")
    rng = default_rng(rng)
    q = params.q

    corrupted_outputs: dict[int, int] = {}
    for k, x_k in corrupted_inputs.items():
        corrupted_outputs[k] = (x_k + sample_binomial(params.nb, rng)) % q

    honest = sorted(set(range(k_total)) - corrupted)
    residual = (ideal_output - sum(corrupted_outputs.values())) % q
    shares: dict[int, int] = {}
    running = 0
    for k in honest[:-1]:
        shares[k] = rng.field_element(q)
        running = (running + shares[k]) % q
    shares[honest[-1]] = (residual - running) % q

    views = {
        k: _fabricate_view(params, client_commitments_by_prover[k], shares[k], rng)
        for k in honest
    }
    return corrupted_outputs, views
