"""Aggregation plans: what a protocol run releases, as public data.

ΠBin as printed releases one lane per input coordinate — a count (M = 1)
or an M-bin histogram — with unit weights and unit noise.  The bounded-sum
extension releases *one* lane that is a 2^j-weighted combination of the
client's bit-decomposition coordinates, with the Binomial noise scaled by
the query sensitivity Δ.  An :class:`AggregationPlan` captures exactly
that shape so one prover/verifier implementation covers every workload:

* ``lane_weights[l][m]`` — the public weight of client coordinate ``m``
  in release lane ``l``; prover ``k`` outputs
  ``y_{l,k} = Σ_m w_{l,m} · Σ_i ⟦x_{i,m}⟧_k + Δ_l · Σ_j v̂_{j,l,k}``.
* ``noise_weights[l]`` — the public scale Δ_l applied to that lane's
  nb adjusted coins (Lemma B.1: D-noise on a Δ-incremental query).
* ``validity`` — the client language L: ``"bit"`` (scalar bit),
  ``"onehot"`` (one-hot vector), or ``"bitvec"`` (independent bits, the
  range-decomposition language).

Everything in a plan is public, so Line 13 stays a homomorphic identity
anyone can replay:

    Π_m (Π_i c_{i,m})^{w_{l,m}} · (Π_j ĉ'_{j,l})^{Δ_l} == Com(y_l, z_l).

The default plan (``AggregationPlan.identity``) reproduces Figure 2
verbatim: one lane per coordinate, unit weights, unit noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["AggregationPlan"]

_VALIDITY_MODES = ("bit", "onehot", "bitvec")


@dataclass(frozen=True)
class AggregationPlan:
    """Public description of a run's release lanes over M client coordinates."""

    lane_weights: tuple[tuple[int, ...], ...]
    noise_weights: tuple[int, ...]
    validity: str

    def __post_init__(self) -> None:
        if not self.lane_weights:
            raise ParameterError("plan needs at least one release lane")
        dimension = len(self.lane_weights[0])
        if dimension < 1 or any(len(row) != dimension for row in self.lane_weights):
            raise ParameterError("lane weight rows must share one dimension >= 1")
        if len(self.noise_weights) != len(self.lane_weights):
            raise ParameterError("one noise weight per lane required")
        if any(w < 1 for w in self.noise_weights):
            raise ParameterError("noise weights must be positive")
        if self.validity not in _VALIDITY_MODES:
            raise ParameterError(f"unknown validity mode {self.validity!r}")
        if self.validity == "bit" and dimension != 1:
            raise ParameterError("'bit' validity requires dimension 1")

    @property
    def lanes(self) -> int:
        """Number of release lanes L (the protocol's output arity)."""
        return len(self.lane_weights)

    @property
    def dimension(self) -> int:
        """Number of client input coordinates M."""
        return len(self.lane_weights[0])

    def is_identity(self) -> bool:
        """True when this plan is Figure 2 verbatim (lane l == coordinate l,
        unit weights, unit noise) — the fast paths key off this."""
        if self.lanes != self.dimension:
            return False
        if any(w != 1 for w in self.noise_weights):
            return False
        return all(
            weight == (1 if l == m else 0)
            for l, row in enumerate(self.lane_weights)
            for m, weight in enumerate(row)
        )

    def noise_mean(self, num_provers: int, nb: int) -> tuple[float, ...]:
        """Per-lane mean of the total added noise: Δ_l · K · nb / 2."""
        return tuple(w * num_provers * nb / 2.0 for w in self.noise_weights)

    @classmethod
    def identity(cls, dimension: int) -> "AggregationPlan":
        """The paper's plan: one unit lane per coordinate."""
        return cls(
            lane_weights=tuple(
                tuple(1 if l == m else 0 for m in range(dimension))
                for l in range(dimension)
            ),
            noise_weights=(1,) * dimension,
            validity="bit" if dimension == 1 else "onehot",
        )

    @classmethod
    def weighted_sum(cls, weights: tuple[int, ...], noise_weight: int) -> "AggregationPlan":
        """One lane combining all coordinates (the bounded-sum shape)."""
        return cls(
            lane_weights=(tuple(weights),),
            noise_weights=(noise_weight,),
            validity="bitvec",
        )
