"""Provers (curators) of ΠBin.

A prover holds one additive share of every validated client's input
(all of it, in plaintext, when K = 1) and must convince the public
verifier that its output y_k equals

    Σ_i ⟦x_i⟧_k  +  Σ_j v̂_{j,k}        with  v̂_{j,k} = v_{j,k} ⊕ b_{j,k}

where the v are its own private coins (committed before the public Morra
bits b are drawn, and proven to be bits via Σ-OR) — Lines 2–11 of
Figure 2.

The honest :class:`Prover` implements the protocol exactly; the cheating
subclasses each deviate at one specific line, mirroring the case analysis
in the paper's soundness proof ("Cheat at Line 4/7/10").  Every deviation
is either *harmless by design* (biased private coins — the public XOR
washes the bias out) or *detected* by the verifier with overwhelming
probability.
"""

from __future__ import annotations

import hashlib

from repro.core.messages import (
    ClientBroadcast,
    ClientShareMessage,
    CoinCommitmentMessage,
    ProverOutputMessage,
)
from repro.core.params import PublicParams
from repro.core.plan import AggregationPlan
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.or_bit import BitProof, prove_bit
from repro.errors import ParameterError, ProtocolAbort
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import RNG

__all__ = [
    "Prover",
    "coin_transcript",
    "ContextAccumulator",
    "broadcast_context_digest",
    "BiasedCoinProver",
    "NonBitCoinProver",
    "SkipAdjustmentProver",
    "OutputTamperingProver",
    "InputDroppingProver",
    "InputInjectingProver",
]


def coin_transcript(params: PublicParams, prover_id: str, context: bytes) -> Transcript:
    """The Fiat–Shamir transcript for a prover's coin proofs.

    Bound to pp, the prover's identity and a digest of all public client
    messages, so coin proofs cannot be replayed across runs or provers.
    """
    transcript = Transcript("repro.pibin.prover-coins")
    transcript.append_bytes("params", params.fingerprint())
    transcript.append_str("prover", prover_id)
    transcript.append_bytes("context", context)
    return transcript


class ContextAccumulator:
    """Incremental form of :func:`broadcast_context_digest`.

    The streaming session absorbs each client chunk as it arrives and
    drops the broadcasts; the final digest is byte-identical to hashing
    the full list at once.
    """

    def __init__(self) -> None:
        self._h = hashlib.sha256(b"repro.pibin.context")

    def absorb(self, broadcast: ClientBroadcast) -> None:
        self._h.update(broadcast.client_id.encode())
        for row in broadcast.share_commitments:
            for commitment in row:
                self._h.update(commitment.to_bytes())

    def digest(self) -> bytes:
        return self._h.digest()


def broadcast_context_digest(broadcasts: list[ClientBroadcast]) -> bytes:
    """Digest of the public client phase, shared by prover and verifier."""
    accumulator = ContextAccumulator()
    for broadcast in broadcasts:
        accumulator.absorb(broadcast)
    return accumulator.digest()


class Prover(MorraParticipant):
    """An honest ΠBin prover (index k).

    ``plan`` generalizes Figure 2's release shape (see
    :class:`repro.core.plan.AggregationPlan`); the default identity plan
    is the paper's protocol verbatim — one unit-weight lane per input
    coordinate with unit noise.
    """

    def __init__(
        self,
        name: str,
        params: PublicParams,
        rng: RNG | None = None,
        *,
        plan: AggregationPlan | None = None,
    ) -> None:
        super().__init__(name, rng)
        self.params = params
        self.plan = plan if plan is not None else AggregationPlan.identity(params.dimension)
        if self.plan.dimension != params.dimension:
            raise ParameterError("plan dimension does not match params dimension")
        # State accumulated across phases.
        self._client_openings: dict[str, tuple[Opening, ...]] = {}
        self._coin_openings: list[list[Opening]] = []  # [j][lane]
        self._coin_commitments: list[list[Commitment]] = []
        # Streaming state (begin_coin_stream / absorb_* / finish_output).
        self._stream_transcript: Transcript | None = None
        self._coins_emitted = 0
        self._coins_absorbed = 0
        self._pending_openings: list[list[Opening]] = []
        self._share_y: list[int] | None = None
        self._share_z: list[int] | None = None
        self._noise_y = [0] * self.plan.lanes
        self._noise_z = [0] * self.plan.lanes

    # Phase A: receive client shares ---------------------------------------

    def receive_client_share(
        self,
        broadcast: ClientBroadcast,
        message: ClientShareMessage,
        prover_index: int,
    ) -> bool:
        """Check the private openings against the public commitments.

        Returns False (a public complaint) when the client's opening does
        not match what it broadcast — the client is then excluded
        everywhere.  The client→prover channel is authenticated in our
        model, so a complaint is attributable to the client.
        """
        if broadcast.client_id != message.client_id:
            raise ParameterError("broadcast/share client mismatch")
        if len(message.openings) != self.params.dimension:
            return False
        # A broadcast declaring fewer rows than K provers (or short rows)
        # is a client-attributable shape lie: complain, don't crash.
        if not 0 <= prover_index < len(broadcast.share_commitments):
            return False
        commitments = broadcast.share_commitments[prover_index]
        if len(commitments) != self.params.dimension:
            return False
        for commitment, opening in zip(commitments, message.openings):
            if not self.params.pedersen.opens_to(commitment, opening):
                return False
        self._client_openings[message.client_id] = message.openings
        return True

    # Phase B: private coins (Lines 4-5) ------------------------------------

    def choose_coin(self, j: int, m: int) -> int:
        """Sample the private coin v_{j,m}.

        Honest provers sample uniformly; the protocol tolerates *any*
        bias here (the Morra XOR re-randomizes), which
        :class:`BiasedCoinProver` demonstrates.
        """
        return self.rng.coin()

    def commit_coins(self, context: bytes) -> CoinCommitmentMessage:
        """Commit to nb × L private coins and prove each is a bit.

        One row per coin, one column per release lane (L = M for the
        paper's identity plan).  All nb·L commitments go through one fused
        :meth:`~repro.crypto.pedersen.PedersenParams.commit_many` pass
        (shared comb tables, interleaved g/h digits); the Σ-OR proofs are
        then produced over the shared transcript in the same order.
        """
        transcript = coin_transcript(self.params, self.name, context)
        commitments, openings, proofs = self._make_coins(
            transcript, 0, self.params.nb
        )
        self._coin_commitments = commitments
        self._coin_openings = openings
        return CoinCommitmentMessage(
            prover_id=self.name,
            commitments=tuple(tuple(row) for row in commitments),
            proofs=tuple(tuple(row) for row in proofs),
        )

    def _make_coins(
        self, transcript: Transcript, start: int, count: int
    ) -> tuple[list[list[Commitment]], list[list[Opening]], list[list[BitProof]]]:
        """Sample, commit and prove coins ``start .. start+count`` (rows × L)."""
        params = self.params
        q = params.q
        lanes = self.plan.lanes
        flat_openings = [
            Opening(self.choose_coin(j, lane) % q, self.rng.field_element(q))
            for j in range(start, start + count)
            for lane in range(lanes)
        ]
        flat_commitments = params.pedersen.commit_many(
            [o.value for o in flat_openings],
            [o.randomness for o in flat_openings],
        )
        commitments = [
            flat_commitments[j * lanes : (j + 1) * lanes] for j in range(count)
        ]
        openings = [flat_openings[j * lanes : (j + 1) * lanes] for j in range(count)]
        proofs = [
            [self._prove_coin(c, o, transcript) for c, o in zip(c_row, o_row)]
            for c_row, o_row in zip(commitments, openings)
        ]
        return commitments, openings, proofs

    def _prove_coin(self, commitment: Commitment, opening: Opening, transcript: Transcript) -> BitProof:
        """Hook so :class:`NonBitCoinProver` can attempt forgery."""
        return prove_bit(self.params.pedersen, commitment, opening, transcript, self.rng)

    # Phase C: XOR adjustment and output (Lines 9-11) ------------------------

    def adjusted_coin(self, opening: Opening, bit: int) -> tuple[int, int]:
        """(v̂, signed randomness) for one coin given the public bit.

        b = 0:  v̂ = v,      randomness  +s   (commitment unchanged)
        b = 1:  v̂ = 1 - v,  randomness  -s   (ĉ' = Com(1,0) · c'⁻¹)
        """
        q = self.params.q
        if bit == 0:
            return opening.value % q, opening.randomness % q
        return (1 - opening.value) % q, (-opening.randomness) % q

    def select_client_ids(self, valid_ids: list[str]) -> list[str]:
        """Which validated clients to aggregate (honest: all of them)."""
        return list(valid_ids)

    def compute_output(
        self, valid_ids: list[str], public_bits: list[list[int]]
    ) -> ProverOutputMessage:
        """Aggregate shares and adjusted coins into (y_k, z_k) per lane."""
        params = self.params
        q = params.q
        lanes = self.plan.lanes
        if len(public_bits) != params.nb or any(
            len(row) != lanes for row in public_bits
        ):
            raise ProtocolAbort("public bit matrix has wrong shape", party=self.name)
        share_y = [0] * params.dimension
        share_z = [0] * params.dimension
        for client_id in self.select_client_ids(valid_ids):
            openings = self._client_openings.get(client_id)
            if openings is None:
                raise ProtocolAbort(
                    f"validated client {client_id!r} never sent this prover a share",
                    party=self.name,
                )
            for m, opening in enumerate(openings):
                share_y[m] = (share_y[m] + opening.value) % q
                share_z[m] = (share_z[m] + opening.randomness) % q
        noise_y = [0] * lanes
        noise_z = [0] * lanes
        for j in range(params.nb):
            for lane in range(lanes):
                value, randomness = self.adjusted_coin(
                    self._coin_openings[j][lane], public_bits[j][lane]
                )
                noise_y[lane] = (noise_y[lane] + value) % q
                noise_z[lane] = (noise_z[lane] + randomness) % q
        y, z = self._combine_lanes(share_y, share_z, noise_y, noise_z)
        return self._emit_output(y, z)

    def _combine_lanes(
        self,
        share_y: list[int],
        share_z: list[int],
        noise_y: list[int],
        noise_z: list[int],
    ) -> tuple[list[int], list[int]]:
        """Apply the plan's public weights: y_l = Σ_m w·share + Δ·noise."""
        q = self.params.q
        plan = self.plan
        if plan.is_identity():
            # Figure 2 verbatim: lane l is coordinate l, unit weights.
            return (
                [(s + n) % q for s, n in zip(share_y, noise_y)],
                [(s + n) % q for s, n in zip(share_z, noise_z)],
            )
        y: list[int] = []
        z: list[int] = []
        for lane in range(plan.lanes):
            weights = plan.lane_weights[lane]
            delta = plan.noise_weights[lane]
            y.append(
                (
                    sum(w * s for w, s in zip(weights, share_y))
                    + delta * noise_y[lane]
                )
                % q
            )
            z.append(
                (
                    sum(w * s for w, s in zip(weights, share_z))
                    + delta * noise_z[lane]
                )
                % q
            )
        return y, z

    def _emit_output(self, y: list[int], z: list[int]) -> ProverOutputMessage:
        """Hook so :class:`OutputTamperingProver` can lie at the last step."""
        return ProverOutputMessage(prover_id=self.name, y=tuple(y), z=tuple(z))

    # Streaming (chunked) execution ------------------------------------------
    #
    # The session engine's O(chunk)-memory mode: client shares and coin
    # openings fold into running sums as soon as their phase commitments
    # are settled, so the prover never holds more than one chunk of
    # openings.  The same cheat hooks (`choose_coin`, `_prove_coin`,
    # `adjusted_coin`, `select_client_ids`, `_emit_output`) apply, so the
    # cheating subclasses misbehave identically mid-stream.

    def absorb_validated_clients(
        self, valid_ids: list[str], *, discard: list[str] = ()
    ) -> None:
        """Fold one chunk of validated clients' openings into the running
        share sums (Line 10, incrementally) and drop the openings.

        ``discard`` lists clients the verifier rejected; their retained
        openings are dropped too so the prover's state stays O(chunk).
        """
        q = self.params.q
        if self._share_y is None:
            self._share_y = [0] * self.params.dimension
            self._share_z = [0] * self.params.dimension
        for client_id in self.select_client_ids(list(valid_ids)):
            openings = self._client_openings.pop(client_id, None)
            if openings is None:
                raise ProtocolAbort(
                    f"validated client {client_id!r} never sent this prover a share",
                    party=self.name,
                )
            for m, opening in enumerate(openings):
                self._share_y[m] = (self._share_y[m] + opening.value) % q
                self._share_z[m] = (self._share_z[m] + opening.randomness) % q
        for client_id in discard:
            self._client_openings.pop(client_id, None)

    def begin_coin_stream(self, context: bytes) -> None:
        """Start the chunked coin phase: one evolving transcript for all nb
        coins, exactly as the monolithic :meth:`commit_coins` would bind
        them — a streamed run's proofs are byte-identical to a buffered
        run's under the same coin draws."""
        self._stream_transcript = coin_transcript(self.params, self.name, context)
        self._coins_emitted = 0
        self._coins_absorbed = 0
        self._pending_openings = []
        self._noise_y = [0] * self.plan.lanes
        self._noise_z = [0] * self.plan.lanes

    def commit_coin_chunk(self, count: int) -> CoinCommitmentMessage:
        """Commit and prove the next ``count`` coins (rows × L lanes)."""
        if self._stream_transcript is None:
            raise ProtocolAbort("begin_coin_stream was never called", party=self.name)
        if self._pending_openings:
            raise ProtocolAbort(
                "previous coin chunk still awaits its public bits", party=self.name
            )
        count = min(count, self.params.nb - self._coins_emitted)
        if count <= 0:
            raise ProtocolAbort("all nb coins already committed", party=self.name)
        commitments, openings, proofs = self._make_coins(
            self._stream_transcript, self._coins_emitted, count
        )
        self._coins_emitted += count
        self._pending_openings = openings
        return CoinCommitmentMessage(
            prover_id=self.name,
            commitments=tuple(tuple(row) for row in commitments),
            proofs=tuple(tuple(row) for row in proofs),
        )

    def absorb_public_bits(self, public_bits: list[list[int]]) -> None:
        """Fold the pending chunk's adjusted coins (Lines 9–11) into the
        running noise sums, then drop the chunk's openings."""
        q = self.params.q
        if len(public_bits) != len(self._pending_openings) or any(
            len(row) != self.plan.lanes for row in public_bits
        ):
            raise ProtocolAbort("public bit matrix has wrong shape", party=self.name)
        for o_row, b_row in zip(self._pending_openings, public_bits):
            for lane, (opening, bit) in enumerate(zip(o_row, b_row)):
                value, randomness = self.adjusted_coin(opening, bit)
                self._noise_y[lane] = (self._noise_y[lane] + value) % q
                self._noise_z[lane] = (self._noise_z[lane] + randomness) % q
        self._coins_absorbed += len(public_bits)
        self._pending_openings = []

    def finish_output(self) -> ProverOutputMessage:
        """Emit (y_k, z_k) from the running sums (streamed Line 11)."""
        if self._coins_absorbed != self.params.nb or self._pending_openings:
            raise ProtocolAbort(
                f"coin stream incomplete ({self._coins_absorbed}/{self.params.nb} absorbed)",
                party=self.name,
            )
        share_y = self._share_y or [0] * self.params.dimension
        share_z = self._share_z or [0] * self.params.dimension
        y, z = self._combine_lanes(share_y, share_z, self._noise_y, self._noise_z)
        return self._emit_output(y, z)


# --------------------------------------------------------------------------
# Cheating provers — one per line of the soundness case analysis.
# --------------------------------------------------------------------------


class BiasedCoinProver(Prover):
    """Samples every private coin as 1 (maximal bias).

    *Not* an attack: the paper lets provers pick private coins with "any
    arbitrary bias" — v̂ = v ⊕ b is uniform because the Morra bit b is.
    Tests use this prover to show the output distribution is unchanged.
    """

    def choose_coin(self, j: int, m: int) -> int:
        return 1


class NonBitCoinProver(Prover):
    """Cheat at Line 4: commits to v = 2 ∉ {0, 1}.

    It cannot produce a real Σ-OR proof for a non-bit (the honest prover
    refuses), so it ships a *simulated-looking* proof built for a fake
    challenge; the Fiat–Shamir challenge bound to the transcript will not
    match and the verifier rejects with status BAD_COIN_PROOF.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, bad_value: int = 2, plan=None) -> None:
        super().__init__(name, params, rng, plan=plan)
        self.bad_value = bad_value

    def choose_coin(self, j: int, m: int) -> int:
        return self.bad_value

    def _prove_coin(self, commitment: Commitment, opening: Opening, transcript: Transcript):
        from repro.crypto.sigma.or_bit import simulate_bit_transcript

        # Forge: simulate against a self-chosen challenge. The transcript
        # must still be advanced the same way an honest proof would, or
        # every later proof would also fail (hiding which coin cheated).
        from repro.crypto.sigma.or_bit import _bind  # same binding as honest path

        _bind(transcript, self.params.pedersen, commitment)
        fake_challenge = self.rng.field_element(self.params.q)
        proof = simulate_bit_transcript(self.params.pedersen, commitment, fake_challenge, self.rng)
        transcript.append_element("d0", proof.d0)
        transcript.append_element("d1", proof.d1)
        transcript.challenge_scalar("or-challenge", self.params.q)
        return proof


class SkipAdjustmentProver(Prover):
    """Cheat at Line 9: ignores the public Morra bits (keeps v̂ = v).

    Its (y, z) no longer matches the verifier's adjusted commitment
    product unless every Morra bit came up 0 (probability 2^-nb·M); the
    Line 13 check fails — status FAILED_FINAL_CHECK.
    """

    def adjusted_coin(self, opening: Opening, bit: int) -> tuple[int, int]:
        return opening.value % self.params.q, opening.randomness % self.params.q


class OutputTamperingProver(Prover):
    """Cheat at Line 10: shifts the released count by ``bias``.

    This is *the* attack motivating the paper — nudging the tally and
    blaming the discrepancy on DP noise.  To pass Line 13 it would need a
    second opening of the commitment product, i.e. break binding.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, bias: int = 10, plan=None) -> None:
        super().__init__(name, params, rng, plan=plan)
        self.bias = bias

    def _emit_output(self, y: list[int], z: list[int]) -> ProverOutputMessage:
        tampered = [(value + self.bias) % self.params.q for value in y]
        return ProverOutputMessage(prover_id=self.name, y=tuple(tampered), z=tuple(z))


class InputDroppingProver(Prover):
    """Figure 1(a) as attempted inside ΠBin: silently exclude a client.

    Unlike in Poplar/PRIO, the victim's share commitment is public, so
    the verifier's product on Line 13 includes it and the prover's
    dropped aggregate cannot match — guaranteed inclusion of honest
    clients.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, victim: str = "", plan=None) -> None:
        super().__init__(name, params, rng, plan=plan)
        self.victim = victim

    def select_client_ids(self, valid_ids: list[str]) -> list[str]:
        return [cid for cid in valid_ids if cid != self.victim]


class InputInjectingProver(Prover):
    """Figure 1(b) as attempted inside ΠBin: stuff extra ballots.

    Adds ``extra`` phantom votes to its aggregate; no public commitment
    backs them, so Line 13 fails.  The injection happens in the
    ``_emit_output`` hook — the last step both the buffered
    (:meth:`~Prover.compute_output`) and streamed
    (:meth:`~Prover.finish_output`) paths run — so the attack is
    exercised (and caught) identically in either mode.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, extra: int = 5, plan=None) -> None:
        super().__init__(name, params, rng, plan=plan)
        self.extra = extra

    def _emit_output(self, y: list[int], z: list[int]) -> ProverOutputMessage:
        honest = super()._emit_output(y, z)
        stuffed = [(value + self.extra) % self.params.q for value in honest.y]
        return ProverOutputMessage(prover_id=self.name, y=tuple(stuffed), z=honest.z)
