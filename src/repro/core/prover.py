"""Provers (curators) of ΠBin.

A prover holds one additive share of every validated client's input
(all of it, in plaintext, when K = 1) and must convince the public
verifier that its output y_k equals

    Σ_i ⟦x_i⟧_k  +  Σ_j v̂_{j,k}        with  v̂_{j,k} = v_{j,k} ⊕ b_{j,k}

where the v are its own private coins (committed before the public Morra
bits b are drawn, and proven to be bits via Σ-OR) — Lines 2–11 of
Figure 2.

The honest :class:`Prover` implements the protocol exactly; the cheating
subclasses each deviate at one specific line, mirroring the case analysis
in the paper's soundness proof ("Cheat at Line 4/7/10").  Every deviation
is either *harmless by design* (biased private coins — the public XOR
washes the bias out) or *detected* by the verifier with overwhelming
probability.
"""

from __future__ import annotations

import hashlib

from repro.core.messages import (
    ClientBroadcast,
    ClientShareMessage,
    CoinCommitmentMessage,
    ProverOutputMessage,
)
from repro.core.params import PublicParams
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.or_bit import BitProof, prove_bit
from repro.errors import ParameterError, ProtocolAbort
from repro.mpc.morra import MorraParticipant
from repro.utils.rng import RNG

__all__ = [
    "Prover",
    "coin_transcript",
    "BiasedCoinProver",
    "NonBitCoinProver",
    "SkipAdjustmentProver",
    "OutputTamperingProver",
    "InputDroppingProver",
    "InputInjectingProver",
]


def coin_transcript(params: PublicParams, prover_id: str, context: bytes) -> Transcript:
    """The Fiat–Shamir transcript for a prover's coin proofs.

    Bound to pp, the prover's identity and a digest of all public client
    messages, so coin proofs cannot be replayed across runs or provers.
    """
    transcript = Transcript("repro.pibin.prover-coins")
    transcript.append_bytes("params", params.fingerprint())
    transcript.append_str("prover", prover_id)
    transcript.append_bytes("context", context)
    return transcript


def broadcast_context_digest(broadcasts: list[ClientBroadcast]) -> bytes:
    """Digest of the public client phase, shared by prover and verifier."""
    h = hashlib.sha256(b"repro.pibin.context")
    for broadcast in broadcasts:
        h.update(broadcast.client_id.encode())
        for row in broadcast.share_commitments:
            for commitment in row:
                h.update(commitment.to_bytes())
    return h.digest()


class Prover(MorraParticipant):
    """An honest ΠBin prover (index k)."""

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None) -> None:
        super().__init__(name, rng)
        self.params = params
        # State accumulated across phases.
        self._client_openings: dict[str, tuple[Opening, ...]] = {}
        self._coin_openings: list[list[Opening]] = []  # [j][m]
        self._coin_commitments: list[list[Commitment]] = []

    # Phase A: receive client shares ---------------------------------------

    def receive_client_share(
        self,
        broadcast: ClientBroadcast,
        message: ClientShareMessage,
        prover_index: int,
    ) -> bool:
        """Check the private openings against the public commitments.

        Returns False (a public complaint) when the client's opening does
        not match what it broadcast — the client is then excluded
        everywhere.  The client→prover channel is authenticated in our
        model, so a complaint is attributable to the client.
        """
        if broadcast.client_id != message.client_id:
            raise ParameterError("broadcast/share client mismatch")
        if len(message.openings) != self.params.dimension:
            return False
        commitments = broadcast.share_commitments[prover_index]
        for commitment, opening in zip(commitments, message.openings):
            if not self.params.pedersen.opens_to(commitment, opening):
                return False
        self._client_openings[message.client_id] = message.openings
        return True

    # Phase B: private coins (Lines 4-5) ------------------------------------

    def choose_coin(self, j: int, m: int) -> int:
        """Sample the private coin v_{j,m}.

        Honest provers sample uniformly; the protocol tolerates *any*
        bias here (the Morra XOR re-randomizes), which
        :class:`BiasedCoinProver` demonstrates.
        """
        return self.rng.coin()

    def commit_coins(self, context: bytes) -> CoinCommitmentMessage:
        """Commit to nb × M private coins and prove each is a bit.

        All nb·M commitments go through one fused
        :meth:`~repro.crypto.pedersen.PedersenParams.commit_many` pass
        (shared comb tables, interleaved g/h digits); the Σ-OR proofs are
        then produced over the shared transcript in the same order.
        """
        params = self.params
        pedersen = params.pedersen
        q = params.q
        transcript = coin_transcript(params, self.name, context)
        flat_openings = [
            Opening(self.choose_coin(j, m) % q, self.rng.field_element(q))
            for j in range(params.nb)
            for m in range(params.dimension)
        ]
        flat_commitments = pedersen.commit_many(
            [o.value for o in flat_openings],
            [o.randomness for o in flat_openings],
        )
        d = params.dimension
        commitments = [
            flat_commitments[j * d : (j + 1) * d] for j in range(params.nb)
        ]
        openings = [flat_openings[j * d : (j + 1) * d] for j in range(params.nb)]
        proofs: list[list[BitProof]] = [
            [
                self._prove_coin(c, o, transcript)
                for c, o in zip(c_row, o_row)
            ]
            for c_row, o_row in zip(commitments, openings)
        ]
        self._coin_commitments = commitments
        self._coin_openings = openings
        return CoinCommitmentMessage(
            prover_id=self.name,
            commitments=tuple(tuple(row) for row in commitments),
            proofs=tuple(tuple(row) for row in proofs),
        )

    def _prove_coin(self, commitment: Commitment, opening: Opening, transcript: Transcript) -> BitProof:
        """Hook so :class:`NonBitCoinProver` can attempt forgery."""
        return prove_bit(self.params.pedersen, commitment, opening, transcript, self.rng)

    # Phase C: XOR adjustment and output (Lines 9-11) ------------------------

    def adjusted_coin(self, opening: Opening, bit: int) -> tuple[int, int]:
        """(v̂, signed randomness) for one coin given the public bit.

        b = 0:  v̂ = v,      randomness  +s   (commitment unchanged)
        b = 1:  v̂ = 1 - v,  randomness  -s   (ĉ' = Com(1,0) · c'⁻¹)
        """
        q = self.params.q
        if bit == 0:
            return opening.value % q, opening.randomness % q
        return (1 - opening.value) % q, (-opening.randomness) % q

    def select_client_ids(self, valid_ids: list[str]) -> list[str]:
        """Which validated clients to aggregate (honest: all of them)."""
        return list(valid_ids)

    def compute_output(
        self, valid_ids: list[str], public_bits: list[list[int]]
    ) -> ProverOutputMessage:
        """Aggregate shares and adjusted coins into (y_k, z_k) per coordinate."""
        params = self.params
        q = params.q
        if len(public_bits) != params.nb or any(
            len(row) != params.dimension for row in public_bits
        ):
            raise ProtocolAbort("public bit matrix has wrong shape", party=self.name)
        y = [0] * params.dimension
        z = [0] * params.dimension
        for client_id in self.select_client_ids(valid_ids):
            openings = self._client_openings.get(client_id)
            if openings is None:
                raise ProtocolAbort(
                    f"validated client {client_id!r} never sent this prover a share",
                    party=self.name,
                )
            for m, opening in enumerate(openings):
                y[m] = (y[m] + opening.value) % q
                z[m] = (z[m] + opening.randomness) % q
        for j in range(params.nb):
            for m in range(params.dimension):
                value, randomness = self.adjusted_coin(
                    self._coin_openings[j][m], public_bits[j][m]
                )
                y[m] = (y[m] + value) % q
                z[m] = (z[m] + randomness) % q
        return self._emit_output(y, z)

    def _emit_output(self, y: list[int], z: list[int]) -> ProverOutputMessage:
        """Hook so :class:`OutputTamperingProver` can lie at the last step."""
        return ProverOutputMessage(prover_id=self.name, y=tuple(y), z=tuple(z))


# --------------------------------------------------------------------------
# Cheating provers — one per line of the soundness case analysis.
# --------------------------------------------------------------------------


class BiasedCoinProver(Prover):
    """Samples every private coin as 1 (maximal bias).

    *Not* an attack: the paper lets provers pick private coins with "any
    arbitrary bias" — v̂ = v ⊕ b is uniform because the Morra bit b is.
    Tests use this prover to show the output distribution is unchanged.
    """

    def choose_coin(self, j: int, m: int) -> int:
        return 1


class NonBitCoinProver(Prover):
    """Cheat at Line 4: commits to v = 2 ∉ {0, 1}.

    It cannot produce a real Σ-OR proof for a non-bit (the honest prover
    refuses), so it ships a *simulated-looking* proof built for a fake
    challenge; the Fiat–Shamir challenge bound to the transcript will not
    match and the verifier rejects with status BAD_COIN_PROOF.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, bad_value: int = 2) -> None:
        super().__init__(name, params, rng)
        self.bad_value = bad_value

    def choose_coin(self, j: int, m: int) -> int:
        return self.bad_value

    def _prove_coin(self, commitment: Commitment, opening: Opening, transcript: Transcript):
        from repro.crypto.sigma.or_bit import simulate_bit_transcript

        # Forge: simulate against a self-chosen challenge. The transcript
        # must still be advanced the same way an honest proof would, or
        # every later proof would also fail (hiding which coin cheated).
        from repro.crypto.sigma.or_bit import _bind  # same binding as honest path

        _bind(transcript, self.params.pedersen, commitment)
        fake_challenge = self.rng.field_element(self.params.q)
        proof = simulate_bit_transcript(self.params.pedersen, commitment, fake_challenge, self.rng)
        transcript.append_element("d0", proof.d0)
        transcript.append_element("d1", proof.d1)
        transcript.challenge_scalar("or-challenge", self.params.q)
        return proof


class SkipAdjustmentProver(Prover):
    """Cheat at Line 9: ignores the public Morra bits (keeps v̂ = v).

    Its (y, z) no longer matches the verifier's adjusted commitment
    product unless every Morra bit came up 0 (probability 2^-nb·M); the
    Line 13 check fails — status FAILED_FINAL_CHECK.
    """

    def adjusted_coin(self, opening: Opening, bit: int) -> tuple[int, int]:
        return opening.value % self.params.q, opening.randomness % self.params.q


class OutputTamperingProver(Prover):
    """Cheat at Line 10: shifts the released count by ``bias``.

    This is *the* attack motivating the paper — nudging the tally and
    blaming the discrepancy on DP noise.  To pass Line 13 it would need a
    second opening of the commitment product, i.e. break binding.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, bias: int = 10) -> None:
        super().__init__(name, params, rng)
        self.bias = bias

    def _emit_output(self, y: list[int], z: list[int]) -> ProverOutputMessage:
        tampered = [(value + self.bias) % self.params.q for value in y]
        return ProverOutputMessage(prover_id=self.name, y=tuple(tampered), z=tuple(z))


class InputDroppingProver(Prover):
    """Figure 1(a) as attempted inside ΠBin: silently exclude a client.

    Unlike in Poplar/PRIO, the victim's share commitment is public, so
    the verifier's product on Line 13 includes it and the prover's
    dropped aggregate cannot match — guaranteed inclusion of honest
    clients.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, victim: str = "") -> None:
        super().__init__(name, params, rng)
        self.victim = victim

    def select_client_ids(self, valid_ids: list[str]) -> list[str]:
        return [cid for cid in valid_ids if cid != self.victim]


class InputInjectingProver(Prover):
    """Figure 1(b) as attempted inside ΠBin: stuff extra ballots.

    Adds ``extra`` phantom votes to its aggregate; no public commitment
    backs them, so Line 13 fails.
    """

    def __init__(self, name: str, params: PublicParams, rng: RNG | None = None, *, extra: int = 5) -> None:
        super().__init__(name, params, rng)
        self.extra = extra

    def compute_output(self, valid_ids, public_bits) -> ProverOutputMessage:
        honest = super().compute_output(valid_ids, public_bits)
        y = [(value + self.extra) % self.params.q for value in honest.y]
        return ProverOutputMessage(prover_id=self.name, y=tuple(y), z=honest.z)
