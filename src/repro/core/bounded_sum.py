"""Extension: verifiable DP *bounded sums* (beyond {0,1} counting).

The paper's protocol handles counting queries (clients hold bits) and
one-hot histograms.  Its concluding remarks pose richer mechanisms as
open; the nearest natural extension — implemented here — is the sum query
over *k-bit bounded* client values:

    Q(X) = Σ x_i,   x_i ∈ [0, 2^k)

with sensitivity Δ = 2^k - 1.  Everything reuses the paper's machinery:

* a client commits to the **bit decomposition** of its value,
  c_{i,j} = Com(x_{i,j}, r_{i,j}), and proves each bit with the Σ-OR
  proof — a classic commit-and-prove range proof;
* the value commitment is derived *homomorphically* by anyone:
  c_i = Π_j c_{i,j}^{2^j} = Com(Σ_j 2^j·x_{i,j}, Σ_j 2^j·r_{i,j}),
  so a valid decomposition proof certifies x_i ∈ [0, 2^k);
* noise: Δ·Binomial(nb, 1/2) — by Lemma B.1, adding D-noise where D is
  (ε, δ, 1)-smooth to a Δ-incremental query gives (εΔ, δΔ)-DP, so we
  calibrate the coins at ε/Δ, δ/Δ to land at the target (ε, δ).  The
  noise coins are the standard ΠBin private/public-coin construction,
  scaled by the public constant Δ (still a linear, verifiable map).

This gives verifiable DP for e.g. "total minutes of screen time" instead
of just "how many users opted in".  Curator model (K = 1) here; the MPC
generalization follows the same pattern as ΠBin's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PublicParams, setup
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.or_bit import BitProof, prove_bit, verify_bit
from repro.errors import ParameterError, VerificationError
from repro.mpc.morra import MorraParticipant, run_morra_batch
from repro.utils.rng import RNG, default_rng

__all__ = ["RangeCommitment", "BoundedSumRelease", "VerifiableBoundedSum"]


@dataclass(frozen=True)
class RangeCommitment:
    """A client's k-bit range-proved submission.

    ``bit_commitments[j]`` commits to bit j (LSB first); the value
    commitment is the 2^j-weighted homomorphic product, derivable by any
    observer via :meth:`derived_value_commitment`.
    """

    client_id: str
    bit_commitments: tuple[Commitment, ...]
    bit_proofs: tuple[BitProof, ...]

    def derived_value_commitment(self, params: PublicParams) -> Commitment:
        acc = params.pedersen.commitment_to_constant(0)
        for j, c in enumerate(self.bit_commitments):
            acc = acc * (c ** (1 << j))
        return acc


@dataclass(frozen=True)
class BoundedSumRelease:
    """A verified DP bounded sum."""

    raw: int
    estimate: float
    accepted: bool
    rejected_clients: tuple[str, ...]
    epsilon: float
    delta: float


def _range_transcript(params: PublicParams, client_id: str) -> Transcript:
    transcript = Transcript("repro.bounded-sum.range")
    transcript.append_bytes("params", params.fingerprint())
    transcript.append_str("client", client_id)
    return transcript


class VerifiableBoundedSum:
    """Verifiable DP sum of k-bit client values, trusted-curator model."""

    def __init__(
        self,
        value_bits: int,
        epsilon: float,
        delta: float,
        *,
        group: str = "modp-2048",
        nb_override: int | None = None,
        rng: RNG | None = None,
    ) -> None:
        if not 1 <= value_bits <= 32:
            raise ParameterError("value_bits must be in [1, 32]")
        self.value_bits = value_bits
        self.sensitivity = (1 << value_bits) - 1
        # Calibrate the coin count at (ε/Δ, δ/Δ) so the Δ-scaled noise
        # delivers (ε, δ) for the Δ-incremental sum query (Lemma B.1).
        self.params = setup(
            epsilon / self.sensitivity,
            min(delta / self.sensitivity, 0.5),
            group=group,
            nb_override=nb_override,
        )
        self.epsilon = epsilon
        self.delta = delta
        self.rng = default_rng(rng)

    # Client side --------------------------------------------------------

    def submit(self, client_id: str, value: int, rng: RNG | None = None) -> tuple[RangeCommitment, list[Opening]]:
        """Commit to the bit decomposition of ``value`` and prove range.

        Returns the public :class:`RangeCommitment` and the private
        openings (sent to the curator only).
        """
        if not 0 <= value <= self.sensitivity:
            raise ParameterError(
                f"value {value} outside [0, {self.sensitivity}]"
            )
        rng = default_rng(rng)
        transcript = _range_transcript(self.params, client_id)
        commitments: list[Commitment] = []
        openings: list[Opening] = []
        proofs: list[BitProof] = []
        for j in range(self.value_bits):
            bit = (value >> j) & 1
            c, o = self.params.pedersen.commit_fresh(bit, rng)
            proofs.append(prove_bit(self.params.pedersen, c, o, transcript, rng))
            commitments.append(c)
            openings.append(o)
        return (
            RangeCommitment(client_id, tuple(commitments), tuple(proofs)),
            openings,
        )

    # Public validation -----------------------------------------------------

    def validate(self, submission: RangeCommitment) -> bool:
        """Anyone can check a submission's range proof."""
        if len(submission.bit_commitments) != self.value_bits:
            return False
        transcript = _range_transcript(self.params, submission.client_id)
        try:
            for c, proof in zip(submission.bit_commitments, submission.bit_proofs):
                verify_bit(self.params.pedersen, c, proof, transcript)
        except VerificationError:
            return False
        return True

    # Curator + verifier run ---------------------------------------------------

    def run(
        self,
        submissions: list[tuple[RangeCommitment, list[Opening]]],
        *,
        curator_rng: RNG | None = None,
        tamper_bias: int = 0,
    ) -> BoundedSumRelease:
        """Full protocol: validate clients, aggregate, add verifiable noise.

        ``tamper_bias`` simulates a cheating curator shifting the output;
        any non-zero value is caught by the final homomorphic check.
        """
        params = self.params
        pedersen = params.pedersen
        q = params.q
        curator_rng = default_rng(curator_rng if curator_rng is not None else self.rng)

        valid: list[tuple[RangeCommitment, list[Opening]]] = []
        rejected: list[str] = []
        for submission, openings in submissions:
            if self.validate(submission):
                valid.append((submission, openings))
            else:
                rejected.append(submission.client_id)

        # Curator's noise coins (standard ΠBin coin phase).
        transcript = Transcript("repro.bounded-sum.coins")
        transcript.append_bytes("params", params.fingerprint())
        coin_commitments: list[Commitment] = []
        coin_openings: list[Opening] = []
        coin_proofs: list[BitProof] = []
        for _ in range(params.nb):
            coin = curator_rng.coin()
            c, o = pedersen.commit_fresh(coin, curator_rng)
            coin_proofs.append(prove_bit(pedersen, c, o, transcript, curator_rng))
            coin_commitments.append(c)
            coin_openings.append(o)

        verify_transcript = Transcript("repro.bounded-sum.coins")
        verify_transcript.append_bytes("params", params.fingerprint())
        for c, proof in zip(coin_commitments, coin_proofs):
            verify_bit(pedersen, c, proof, verify_transcript)

        prover = MorraParticipant("curator", curator_rng)
        verifier = MorraParticipant("verifier", default_rng(None))
        bits = run_morra_batch([prover, verifier], q, params.nb).bits()

        # Curator computes (y, z); noise coins enter with weight Δ.
        delta_weight = self.sensitivity
        y = 0
        z = 0
        for submission, openings in valid:
            for j, opening in enumerate(openings):
                weight = 1 << j
                y = (y + weight * opening.value) % q
                z = (z + weight * opening.randomness) % q
        for opening, bit in zip(coin_openings, bits):
            if bit:
                y = (y + delta_weight * (1 - opening.value)) % q
                z = (z - delta_weight * opening.randomness) % q
            else:
                y = (y + delta_weight * opening.value) % q
                z = (z + delta_weight * opening.randomness) % q
        y = (y + tamper_bias) % q

        # Public verifier's homomorphic check (Line 13 analogue):
        # Π_i c_i  ·  Π_j ĉ'_j^Δ  ==  Com(y, z).
        product = pedersen.commitment_to_constant(0)
        for submission, _ in valid:
            product = product * submission.derived_value_commitment(params)
        for c, bit in zip(coin_commitments, bits):
            adjusted = pedersen.one_minus(c) if bit else c
            product = product * (adjusted ** delta_weight)
        accepted = product.element == pedersen.commit(y, z).element

        noise_mean = delta_weight * params.nb / 2.0
        return BoundedSumRelease(
            raw=y,
            estimate=y - noise_mean,
            accepted=accepted,
            rejected_clients=tuple(rejected),
            epsilon=self.epsilon,
            delta=self.delta,
        )
