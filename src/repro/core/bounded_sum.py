"""Extension: verifiable DP *bounded sums* (beyond {0,1} counting) — shim.

.. deprecated::
    Use ``repro.api.Session(BoundedSumQuery(value_bits, epsilon, delta))``
    — the same weighted-lane engine, plus the K >= 2 MPC model, chunked
    submission and streamed verification.  This class remains as a thin
    shim (curator model, K = 1) and warns once per calling module.

The paper's protocol handles counting queries (clients hold bits) and
one-hot histograms.  Its concluding remarks pose richer mechanisms as
open; the nearest natural extension is the sum query over *k-bit
bounded* client values:

    Q(X) = Σ x_i,   x_i ∈ [0, 2^k)

with sensitivity Δ = 2^k - 1.  Everything reuses the paper's machinery:

* a client commits to the **bit decomposition** of its value,
  c_{i,j} = Com(x_{i,j}, r_{i,j}), and proves each bit with the Σ-OR
  proof — a classic commit-and-prove range proof
  (:mod:`repro.crypto.sigma.bitvec`);
* the value commitment is derived *homomorphically* by anyone:
  c_i = Π_j c_{i,j}^{2^j} = Com(Σ_j 2^j·x_{i,j}, Σ_j 2^j·r_{i,j}),
  so a valid decomposition proof certifies x_i ∈ [0, 2^k);
* noise: Δ·Binomial(nb, 1/2) — by Lemma B.1, adding D-noise where D is
  (ε, δ, 1)-smooth to a Δ-incremental query gives (εΔ, δΔ)-DP, so we
  calibrate the coins at ε/Δ, δ/Δ to land at the target (ε, δ).

The run is one :class:`repro.api.ProtocolEngine` execution under the
weighted-sum :class:`~repro.core.plan.AggregationPlan` — exactly what
``Session(BoundedSumQuery(...))`` does, so releases are byte-identical
across the two surfaces under a seeded RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import ClientBroadcast, ClientShareMessage, ClientStatus
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.bitvec import BitVectorProof, verify_bit_vector
from repro.crypto.sigma.or_bit import BitProof
from repro.core.params import PublicParams
from repro.core.prover import OutputTamperingProver, Prover
from repro.errors import VerificationError
from repro.utils.deprecation import warn_once
from repro.utils.rng import RNG, default_rng

__all__ = ["RangeCommitment", "BoundedSumRelease", "VerifiableBoundedSum"]


@dataclass(frozen=True)
class RangeCommitment:
    """A client's k-bit range-proved submission.

    ``bit_commitments[j]`` commits to bit j (LSB first); the value
    commitment is the 2^j-weighted homomorphic product, derivable by any
    observer via :meth:`derived_value_commitment`.
    """

    client_id: str
    bit_commitments: tuple[Commitment, ...]
    bit_proofs: tuple[BitProof, ...]

    def derived_value_commitment(self, params: PublicParams) -> Commitment:
        acc = params.pedersen.commitment_to_constant(0)
        for j, c in enumerate(self.bit_commitments):
            acc = acc * (c ** (1 << j))
        return acc

    def to_broadcast(self) -> ClientBroadcast:
        """The equivalent engine message (curator model: one share row)."""
        return ClientBroadcast(
            client_id=self.client_id,
            share_commitments=(tuple(self.bit_commitments),),
            validity_proof=BitVectorProof(tuple(self.bit_proofs)),
        )


@dataclass(frozen=True)
class BoundedSumRelease:
    """A verified DP bounded sum."""

    raw: int
    estimate: float
    accepted: bool
    rejected_clients: tuple[str, ...]
    epsilon: float
    delta: float


class VerifiableBoundedSum:
    """Verifiable DP sum of k-bit client values, trusted-curator model.

    .. deprecated:: use ``repro.api.Session(BoundedSumQuery(...))``.
    """

    def __init__(
        self,
        value_bits: int,
        epsilon: float,
        delta: float,
        *,
        group: str = "modp-2048",
        nb_override: int | None = None,
        rng: RNG | None = None,
    ) -> None:
        from repro.api.queries import BoundedSumQuery

        warn_once(
            "VerifiableBoundedSum",
            "VerifiableBoundedSum is deprecated; use "
            "repro.api.Session(BoundedSumQuery(...)) instead",
        )
        self.query = BoundedSumQuery(value_bits, epsilon, delta)
        self.value_bits = value_bits
        self.sensitivity = self.query.sensitivity
        self.params = self.query.build_params(
            num_provers=1, group=group, nb_override=nb_override
        )
        self.epsilon = epsilon
        self.delta = delta
        self.rng = default_rng(rng)

    # Client side --------------------------------------------------------

    def submit(
        self, client_id: str, value: int, rng: RNG | None = None
    ) -> tuple[RangeCommitment, list[Opening]]:
        """Commit to the bit decomposition of ``value`` and prove range.

        Returns the public :class:`RangeCommitment` and the private
        openings (sent to the curator only).
        """
        client = self.query.make_client(client_id, value, default_rng(rng))
        broadcast, privates = client.submit(self.params)
        return (
            RangeCommitment(
                client_id,
                tuple(broadcast.share_commitments[0]),
                tuple(broadcast.validity_proof.bit_proofs),
            ),
            list(privates[0].openings),
        )

    # Public validation -----------------------------------------------------

    def validate(self, submission: RangeCommitment) -> bool:
        """Anyone can check a submission's range proof."""
        from repro.core.client import _client_transcript

        if len(submission.bit_commitments) != self.value_bits:
            return False
        transcript = _client_transcript(self.params, submission.client_id)
        try:
            verify_bit_vector(
                self.params.pedersen,
                list(submission.bit_commitments),
                BitVectorProof(tuple(submission.bit_proofs)),
                transcript,
            )
        except VerificationError:
            return False
        return True

    # Curator + verifier run ---------------------------------------------------

    def run(
        self,
        submissions: list[tuple[RangeCommitment, list[Opening]]],
        *,
        curator_rng: RNG | None = None,
        tamper_bias: int = 0,
    ) -> BoundedSumRelease:
        """Full protocol: validate clients, aggregate, add verifiable noise.

        ``tamper_bias`` simulates a cheating curator shifting the output;
        any non-zero value is caught by the final homomorphic check.
        """
        from repro.api.engine import ProtocolEngine, fork_rng

        params = self.params
        rng = curator_rng if curator_rng is not None else self.rng
        plan = self.query.build_plan()
        prover_rng = fork_rng(rng, "prover-0")
        if tamper_bias:
            curator = OutputTamperingProver(
                "prover-0", params, prover_rng, bias=tamper_bias, plan=plan
            )
        else:
            curator = Prover("prover-0", params, prover_rng, plan=plan)
        engine = ProtocolEngine(params, plan=plan, provers=[curator], rng=rng)
        engine.submit_prepared(
            (
                submission.to_broadcast(),
                [ClientShareMessage(submission.client_id, tuple(openings))],
            )
            for submission, openings in submissions
        )
        result = engine.run_release()
        release = result.release
        rejected = tuple(
            client_id
            for client_id, status in release.audit.clients.items()
            if status is not ClientStatus.VALID
        )
        return BoundedSumRelease(
            raw=release.raw[0],
            estimate=release.estimate[0],
            accepted=release.accepted,
            rejected_clients=rejected,
            epsilon=self.epsilon,
            delta=self.delta,
        )
