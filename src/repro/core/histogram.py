"""Verifiable DP histograms (M-bin counting, Section 4.2) — legacy shim.

.. deprecated::
    Use ``repro.api.Session(HistogramQuery(bins, epsilon, delta))`` — the
    same engine, plus chunked submission, streamed verification and
    accountant-tracked budgets.  This class remains as a thin shim and
    emits a :class:`DeprecationWarning` once per calling module.

The high-level API a deployment would use: clients hold a categorical
choice in [0, M); the release is a verifiable DP count per bin.  This is
the "plurality election" workload from the paper's introduction (which
pizza topping does the population prefer?) and the shape of PRIO/Poplar
telemetry.

Internally this is one phase-driven engine run with ``dimension = M``
and one-hot-encoded clients; each prover adds an independent
Binomial(nb, 1/2) per bin, so each bin's count is (ε, δ)-DP and the
whole release is (ε, δ)-DP for one-hot inputs (changing one client's
choice moves two bins by 1 each; the per-bin guarantee composes over the
two changed coordinates — use ε/2 per bin for a strict end-to-end ε, as
the ``privacy_note`` explains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.engine import fork_rng
from repro.core.client import Client, encode_choice
from repro.core.params import PublicParams, setup
from repro.core.protocol import ProtocolResult, VerifiableBinomialProtocol
from repro.core.prover import Prover
from repro.core.verifier import PublicVerifier
from repro.errors import ParameterError
from repro.utils.deprecation import warn_once
from repro.utils.rng import RNG, SystemRNG

__all__ = ["HistogramRelease", "VerifiableHistogram"]


@dataclass(frozen=True)
class HistogramRelease:
    """Per-bin verified DP counts."""

    counts: tuple[float, ...]
    accepted: bool
    epsilon: float
    delta: float

    def argmax(self) -> int:
        """The (noisy) plurality winner."""
        return max(range(len(self.counts)), key=lambda m: self.counts[m])


class VerifiableHistogram:
    """Verifiable DP histogram estimation over categorical client data.

    .. deprecated:: use ``repro.api.Session(HistogramQuery(...))``.
    """

    def __init__(
        self,
        bins: int,
        epsilon: float,
        delta: float,
        *,
        num_provers: int = 2,
        group: str = "modp-2048",
        rng: RNG | None = None,
        params: PublicParams | None = None,
        provers: list[Prover] | None = None,
        verifier: PublicVerifier | None = None,
    ) -> None:
        warn_once(
            "VerifiableHistogram",
            "VerifiableHistogram is deprecated; use "
            "repro.api.Session(HistogramQuery(...)) instead",
        )
        if bins < 2:
            raise ParameterError("a histogram needs at least 2 bins")
        self.bins = bins
        self.rng = rng if rng is not None else SystemRNG()
        self.params = params or setup(
            epsilon, delta, num_provers=num_provers, dimension=bins, group=group
        )
        if self.params.dimension != bins:
            raise ParameterError("params dimension does not match bins")
        self.protocol = VerifiableBinomialProtocol(
            self.params, provers=provers, verifier=verifier, rng=self.rng
        )

    @property
    def privacy_note(self) -> str:
        return (
            f"each bin is ({self.params.epsilon:.3g}, {self.params.delta:.3g})-DP; "
            "a one-hot input change touches two bins, so the end-to-end budget "
            f"is (2·{self.params.epsilon:.3g}, 2·{self.params.delta:.3g}) by "
            "composition — halve epsilon at setup for a strict target"
        )

    def run(self, choices: list[int]) -> tuple[HistogramRelease, ProtocolResult]:
        """Run the protocol over clients' categorical choices.

        Delegates to the same engine (and the same client construction —
        ``client-i`` forked from the session RNG) as
        ``Session(HistogramQuery(...))``, so seeded releases are
        byte-identical across the two surfaces.
        """
        clients = [
            Client(
                f"client-{i}",
                encode_choice(choice, self.bins),
                fork_rng(self.rng, f"client-{i}"),
            )
            for i, choice in enumerate(choices)
        ]
        result = self.protocol.run(clients)
        release = HistogramRelease(
            counts=result.release.estimate,
            accepted=result.release.accepted,
            epsilon=self.params.epsilon,
            delta=self.params.delta,
        )
        return release, result
