"""Orchestration of ΠBin (Figure 2) over the simulated network.

:class:`VerifiableBinomialProtocol` wires clients, K provers and the
public verifier through the five phases:

    clients submit → provers check shares → verifier validates clients
    → provers commit coins + Σ-OR proofs → verifier checks proofs
    → per-prover Morra → Line 12 commitment update → prover outputs
    → Line 13 homomorphic check → aggregate release.

The trusted-curator model is exactly ``num_provers=1``; the client-server
MPC model is K >= 2 (the paper's deployments use K = 2, like PRIO and
Poplar).

Per-stage wall-clock timings are accumulated in a
:class:`repro.utils.timing.StageTimer` under the same stage names as
Table 1 (sigma-proof, sigma-verification, morra, aggregation, check), so
the bench harness prints rows directly comparable to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import Client
from repro.core.messages import (
    ClientBroadcast,
    ProverStatus,
    Release,
)
from repro.core.params import PublicParams
from repro.core.prover import Prover, broadcast_context_digest
from repro.core.verifier import PublicVerifier
from repro.errors import ParameterError, ProtocolAbort
from repro.mpc.bus import SimulatedNetwork
from repro.mpc.morra import run_morra_batch
from repro.utils.rng import RNG, SystemRNG
from repro.utils.timing import StageTimer

__all__ = ["VerifiableBinomialProtocol", "ProtocolResult"]

# Stage names aligned with Table 1's columns.
STAGE_SIGMA_PROOF = "sigma-proof"
STAGE_SIGMA_VERIFY = "sigma-verification"
STAGE_MORRA = "morra"
STAGE_AGGREGATION = "aggregation"
STAGE_CHECK = "check"
STAGE_CLIENT_PROOF = "client-proof"
STAGE_CLIENT_VERIFY = "client-verification"


@dataclass
class ProtocolResult:
    """A release plus run metadata (timings, traffic, public messages).

    The message fields retain everything a bulletin board needs
    (:func:`repro.core.bulletin.publish_run`), enabling byte-level
    third-party audit replay.
    """

    release: Release
    timer: StageTimer
    network: SimulatedNetwork
    public_bits: dict[str, list[list[int]]] = field(default_factory=dict)
    broadcasts: list = field(default_factory=list)
    coin_messages: list = field(default_factory=list)
    outputs: list = field(default_factory=list)

    def to_bulletin(self, params: PublicParams):
        """Serialize this run's public messages onto a bulletin board."""
        from repro.core.bulletin import publish_run

        return publish_run(
            params, self.broadcasts, self.coin_messages, self.public_bits, self.outputs
        )


class VerifiableBinomialProtocol:
    """One verifiable DP counting/histogram query end to end."""

    def __init__(
        self,
        params: PublicParams,
        *,
        provers: list[Prover] | None = None,
        verifier: PublicVerifier | None = None,
        rng: RNG | None = None,
    ) -> None:
        self.params = params
        self.rng = rng if rng is not None else SystemRNG()
        if provers is None:
            provers = [
                Prover(f"prover-{k}", params, self._fork_rng(f"prover-{k}"))
                for k in range(params.num_provers)
            ]
        if len(provers) != params.num_provers:
            raise ParameterError(
                f"expected {params.num_provers} provers, got {len(provers)}"
            )
        names = [p.name for p in provers]
        if len(set(names)) != len(names) or "verifier" in names:
            raise ParameterError("prover names must be unique and not 'verifier'")
        self.provers = provers
        self.verifier = verifier or PublicVerifier(params, self._fork_rng("verifier"))

    def _fork_rng(self, label: str) -> RNG:
        forker = getattr(self.rng, "fork", None)
        return forker(label) if forker is not None else SystemRNG()

    # ----------------------------------------------------------------------

    def run(self, clients: list[Client]) -> ProtocolResult:
        """Execute the protocol for the given clients.

        Dishonest clients are excluded (and named); dishonest provers
        cause ``release.accepted == False`` with the culprit named in the
        audit record.  Only :class:`ProtocolAbort` (a party going silent
        mid-Morra, say) propagates as an exception, because then there is
        no output at all — matching the paper's early-exit semantics.
        """
        params = self.params
        timer = StageTimer()
        network = SimulatedNetwork()
        network.register(self.verifier.name)
        for prover in self.provers:
            network.register(prover.name)

        # Phase 1: clients submit (Line 2).
        broadcasts: list[ClientBroadcast] = []
        share_messages: list[list] = []  # [client][prover]
        with timer.stage(STAGE_CLIENT_PROOF):
            for client in clients:
                network.register(client.name)
                broadcast, privates = client.submit(params)
                broadcasts.append(broadcast)
                share_messages.append(privates)
                network.broadcast(client.name, broadcast)
                for k, prover in enumerate(self.provers):
                    network.send(client.name, prover.name, privates[k])

        # Phase 2: provers check their private openings; complaints go public.
        complaints: dict[str, list[str]] = {}
        for k, prover in enumerate(self.provers):
            bad: list[str] = []
            for broadcast, privates in zip(broadcasts, share_messages):
                if not prover.receive_client_share(broadcast, privates[k], k):
                    bad.append(broadcast.client_id)
            if bad:
                complaints[prover.name] = bad

        # Phase 3: public client validation (Line 3).
        with timer.stage(STAGE_CLIENT_VERIFY):
            valid_ids = self.verifier.validate_clients(broadcasts, complaints)

        context = broadcast_context_digest(broadcasts)

        # Phase 4: coin commitments + Σ-OR proofs (Lines 4-6).  All
        # provers commit first so the verifier can fold every coin proof
        # into one cross-prover batch (a single multi-exponentiation).
        coin_messages = []
        for prover in self.provers:
            with timer.stage(STAGE_SIGMA_PROOF):
                message = prover.commit_coins(context)
            coin_messages.append(message)
            network.broadcast(prover.name, message)
        with timer.stage(STAGE_SIGMA_VERIFY):
            coin_ok = self.verifier.verify_all_coin_commitments(coin_messages, context)

        # Phase 5: Morra public bits per prover (Lines 7-8), then Line 12.
        public_bits: dict[str, list[list[int]]] = {}
        for prover in self.provers:
            if not coin_ok[prover.name]:
                continue
            with timer.stage(STAGE_MORRA):
                outcome = run_morra_batch(
                    [prover, self.verifier],
                    params.q,
                    params.nb * params.dimension,
                    network=network,
                )
                flat = outcome.bits()
            bits = [
                flat[j * params.dimension : (j + 1) * params.dimension]
                for j in range(params.nb)
            ]
            public_bits[prover.name] = bits
            with timer.stage(STAGE_CHECK):
                self.verifier.apply_public_bits(prover.name, bits)

        # Phase 6: prover outputs (Lines 10-11) and the final check (Line 13).
        included = [b for b in broadcasts if b.client_id in set(valid_ids)]
        outputs = {}
        all_outputs = []
        for k, prover in enumerate(self.provers):
            if not coin_ok[prover.name]:
                continue
            with timer.stage(STAGE_AGGREGATION):
                try:
                    output = prover.compute_output(valid_ids, public_bits[prover.name])
                except ProtocolAbort as exc:
                    self.verifier.audit.provers[prover.name] = ProverStatus.ABORTED
                    self.verifier.audit.note(str(exc))
                    continue
            all_outputs.append(output)
            network.broadcast(prover.name, output)
            client_commitments = [
                [b.share_commitments[k][m] for b in included]
                for m in range(params.dimension)
            ]
            with timer.stage(STAGE_CHECK):
                if self.verifier.check_prover_output(output, client_commitments):
                    outputs[prover.name] = output

        # Phase 7: aggregate and release.
        audit = self.verifier.audit
        accepted = (
            len(audit.provers) == len(self.provers) and audit.all_provers_honest()
        )
        raw = tuple(
            sum(outputs[name].y[m] for name in outputs) % params.q
            if outputs
            else 0
            for m in range(params.dimension)
        )
        estimate = tuple(value - params.noise_mean for value in raw)
        release = Release(
            raw=raw,
            estimate=estimate,
            accepted=accepted,
            audit=audit,
            epsilon=params.epsilon,
            delta=params.delta,
        )
        return ProtocolResult(
            release=release,
            timer=timer,
            network=network,
            public_bits=public_bits,
            broadcasts=broadcasts,
            coin_messages=coin_messages,
            outputs=all_outputs,
        )

    # Convenience ------------------------------------------------------------

    def run_bits(self, bits: list[int]) -> ProtocolResult:
        """Run a single counting query over raw client bits (M must be 1)."""
        if self.params.dimension != 1:
            raise ParameterError("run_bits requires dimension 1; use run() with vectors")
        clients = [
            Client(f"client-{i}", [bit], self._fork_rng(f"client-{i}"))
            for i, bit in enumerate(bits)
        ]
        return self.run(clients)
