"""Legacy orchestration entry point for ΠBin (Figure 2).

.. deprecated::
    :class:`VerifiableBinomialProtocol` is now a thin shim over the
    phase-driven :class:`repro.api.ProtocolEngine` — the same engine that
    powers the :class:`repro.api.Session` query API, which is the
    advertised way to run queries (and the only way to stream them).
    ``run()`` remains supported for custom prover/verifier wiring;
    ``run_bits()`` emits a :class:`DeprecationWarning` (once) — use
    ``Session(CountQuery(...))`` instead.

The shim preserves the monolithic entry point's exact execution order —
per-party RNG draw sequences included — so seeded runs release
byte-identical results through either surface, and the returned
:class:`ProtocolResult` still carries every public message a bulletin
board needs for third-party audit replay.

Per-stage wall-clock timings are accumulated in a
:class:`repro.utils.timing.StageTimer` under the same stage names as
Table 1 (sigma-proof, sigma-verification, morra, aggregation, check), so
the bench harness prints rows directly comparable to the paper.
"""

from __future__ import annotations

from repro.api.engine import (
    STAGE_AGGREGATION,
    STAGE_CHECK,
    STAGE_CLIENT_PROOF,
    STAGE_CLIENT_VERIFY,
    STAGE_MORRA,
    STAGE_SIGMA_PROOF,
    STAGE_SIGMA_VERIFY,
    EngineResult,
    ProtocolEngine,
    fork_rng,
)
from repro.core.client import Client
from repro.core.params import PublicParams
from repro.core.prover import Prover
from repro.core.verifier import PublicVerifier
from repro.errors import ParameterError
from repro.utils.deprecation import warn_once
from repro.utils.rng import RNG, SystemRNG

__all__ = ["VerifiableBinomialProtocol", "ProtocolResult"]

# The legacy result type is the engine's result type under its old name.
ProtocolResult = EngineResult


class VerifiableBinomialProtocol:
    """One verifiable DP counting/histogram query end to end (legacy shim)."""

    def __init__(
        self,
        params: PublicParams,
        *,
        provers: list[Prover] | None = None,
        verifier: PublicVerifier | None = None,
        rng: RNG | None = None,
    ) -> None:
        self.params = params
        self.rng = rng if rng is not None else SystemRNG()
        if provers is None:
            provers = [
                Prover(f"prover-{k}", params, self._fork_rng(f"prover-{k}"))
                for k in range(params.num_provers)
            ]
        if len(provers) != params.num_provers:
            raise ParameterError(
                f"expected {params.num_provers} provers, got {len(provers)}"
            )
        names = [p.name for p in provers]
        if len(set(names)) != len(names) or "verifier" in names:
            raise ParameterError("prover names must be unique and not 'verifier'")
        self.provers = provers
        self.verifier = verifier or PublicVerifier(params, self._fork_rng("verifier"))

    def _fork_rng(self, label: str) -> RNG:
        return fork_rng(self.rng, label)

    # ----------------------------------------------------------------------

    def run(self, clients: list[Client]) -> ProtocolResult:
        """Execute the protocol for the given clients (buffered engine run).

        Dishonest clients are excluded (and named); dishonest provers
        cause ``release.accepted == False`` with the culprit named in the
        audit record.  Only :class:`ProtocolAbort` (a party going silent
        mid-Morra, say) propagates as an exception, because then there is
        no output at all — matching the paper's early-exit semantics.
        """
        engine = ProtocolEngine(
            self.params,
            provers=self.provers,
            verifier=self.verifier,
            rng=self.rng,
        )
        engine.submit_clients(clients)
        return engine.run_release()

    # Convenience ------------------------------------------------------------

    def run_bits(self, bits: list[int]) -> ProtocolResult:
        """Run a single counting query over raw client bits (M must be 1).

        .. deprecated:: use ``Session(CountQuery(...))`` from
           :mod:`repro.api` — same release, plus chunked submission and
           O(chunk) streamed verification.
        """
        warn_once(
            "VerifiableBinomialProtocol.run_bits",
            "VerifiableBinomialProtocol.run_bits is deprecated; use "
            "repro.api.Session(CountQuery(...)) instead",
        )
        if self.params.dimension != 1:
            raise ParameterError("run_bits requires dimension 1; use run() with vectors")
        clients = [
            Client(f"client-{i}", [bit], self._fork_rng(f"client-{i}"))
            for i, bit in enumerate(bits)
        ]
        return self.run(clients)
