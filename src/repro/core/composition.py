"""Composing ΠBin with existing (non-verifiable) DP-MPC systems.

.. deprecated::
    :class:`VerifiableNoiseWrapper` warns once per calling module; new code
    should run full queries through :class:`repro.api.Session`.  The
    wrapper remains for the PRIO/Poplar composition story and now rides
    the same coin-phase machinery as the session engine
    (:meth:`repro.core.prover.Prover.begin_coin_stream` and friends)
    instead of carrying its own copy.

The paper (contribution 3) notes that ΠBin "can be combined with existing
(non-verifiable) DP-MPC protocols, such as PRIO and Poplar, to enforce
verifiability".  The precise composition implemented here:

* the outer system (PRIO-style) aggregates client shares as usual and
  each server obtains a partial plaintext aggregate A_k;
* each server *additionally* runs the coin phase of ΠBin with the public
  verifier (commit to nb private bits, Σ-OR proofs, Morra, Line 12/13
  check restricted to the coin commitments), publishing
  y_k = A_k + Σ_j v̂_j and z_k = the signed coin randomness, together
  with a Pedersen commitment to A_k;
* the verifier checks  Com(A_k) · Π_j ĉ'_j == Com(y_k, z_k).

What this buys: the **DP noise becomes verifiable** — a malicious server
can no longer bias "random" noise, which is the attack the paper is
about.  What it does not buy: the correctness of A_k itself still rests
on the outer system's guarantees (PRIO's SNIPs + semi-honest servers),
because PRIO clients never publish per-share commitments.  Upgrading
aggregate correctness too requires the full ΠBin client flow
(:mod:`repro.api.session`).  The docstring-level contract matters:
``VerifiableNoiseWrapper`` verifies noise, not history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PublicParams
from repro.core.prover import Prover, coin_transcript
from repro.crypto.pedersen import Commitment
from repro.crypto.sigma.or_bit import BitProof, verify_bit
from repro.errors import VerificationError
from repro.mpc.morra import MorraParticipant, run_morra_batch
from repro.utils.deprecation import warn_once
from repro.utils.rng import RNG, default_rng

__all__ = ["NoiseAttestation", "VerifiableNoiseWrapper"]


@dataclass(frozen=True)
class NoiseAttestation:
    """One server's proof that its published value is aggregate + honest noise."""

    server_id: str
    aggregate_commitment: Commitment
    coin_commitments: tuple[Commitment, ...]
    coin_proofs: tuple[BitProof, ...]
    public_bits: tuple[int, ...]
    y: int
    z: int


class VerifiableNoiseWrapper:
    """Attach verifiable Binomial noise to an outer aggregate.

    .. deprecated:: prefer full ``repro.api.Session`` queries; the
       wrapper verifies noise only.
    """

    def __init__(self, params: PublicParams, rng: RNG | None = None) -> None:
        warn_once(
            "VerifiableNoiseWrapper",
            "VerifiableNoiseWrapper is deprecated; prefer running full "
            "queries through repro.api.Session (it verifies the aggregate "
            "too, not just the noise)",
        )
        if params.dimension != 1:
            raise VerificationError("wrapper operates per scalar aggregate; wrap each bin")
        self.params = params
        self.rng = default_rng(rng)

    def attest(
        self,
        server: MorraParticipant,
        verifier: MorraParticipant,
        aggregate: int,
        context: bytes,
    ) -> NoiseAttestation:
        """Run the coin phase for one server holding plaintext ``aggregate``.

        The coin commitment/proof/adjustment flow is the session engine's
        streamed prover machinery run as a single chunk, so the published
        transcript shape is identical to a ΠBin prover's.
        """
        params = self.params
        pedersen = params.pedersen
        q = params.q

        agg_commitment, agg_opening = pedersen.commit_fresh(aggregate % q, server.rng)

        prover = Prover(server.name, params, server.rng)
        prover.begin_coin_stream(context)
        message = prover.commit_coin_chunk(params.nb)

        bits = run_morra_batch([server, verifier], q, params.nb).bits()
        prover.absorb_public_bits([[bit] for bit in bits])
        noise = prover.finish_output()

        return NoiseAttestation(
            server_id=server.name,
            aggregate_commitment=agg_commitment,
            coin_commitments=tuple(row[0] for row in message.commitments),
            coin_proofs=tuple(row[0] for row in message.proofs),
            public_bits=tuple(bits),
            y=(aggregate + noise.y[0]) % q,
            z=(agg_opening.randomness + noise.z[0]) % q,
        )

    def verify(self, attestation: NoiseAttestation, context: bytes) -> None:
        """Public verification of one attestation; raises on failure."""
        params = self.params
        pedersen = params.pedersen
        transcript = coin_transcript(params, attestation.server_id, context)
        for commitment, proof in zip(attestation.coin_commitments, attestation.coin_proofs):
            verify_bit(pedersen, commitment, proof, transcript)
        product = attestation.aggregate_commitment
        for commitment, bit in zip(attestation.coin_commitments, attestation.public_bits):
            adjusted = pedersen.one_minus(commitment) if bit else commitment
            product = product * adjusted
        if product.element != pedersen.commit(attestation.y, attestation.z).element:
            raise VerificationError(
                "noise attestation failed the homomorphic check",
                culprit=attestation.server_id,
            )
