"""Terminal plots for the figure experiments (no plotting dependency).

The paper's Figures 3 and 4 are line charts; in a terminal-only
environment we render log-scaled ASCII charts so `python -m repro fig3`
and `fig4` show the *shape* directly, not just the table.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ParameterError

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    log_y: bool = True,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    ``log_y`` plots log10(y) — the natural scale for latency-vs-ε curves
    spanning orders of magnitude.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ParameterError("nothing to plot")
    if log_y and any(y <= 0 for _, y in points):
        raise ParameterError("log_y requires positive y values")

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [x for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_top = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    y_bot = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    label_width = max(len(y_top), len(y_bot), len(y_label)) + 1
    lines.append(f"{y_label.rjust(label_width)} |")
    for i, row in enumerate(grid):
        prefix = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{prefix.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_axis = f"{x_lo:.3g}".ljust(width - len(f"{x_hi:.3g}")) + f"{x_hi:.3g}"
    lines.append(f"{' ' * label_width}  {x_axis}  ({x_label})")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
