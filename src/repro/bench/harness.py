"""The declarative experiment harness: ``repro bench run table.json``.

Every serving benchmark in this repo used to be its own ad-hoc script
with its own timing loop, its own JSON shape and its own idea of what a
"run" is.  This module replaces that with the muBench-style replication
structure: an experiment is a **run table** — factors × levels ×
repetitions — and the harness owns everything the scripts duplicated:

* **Factors**: ``topology`` (in-process / multiprocess / socket / async
  / sharded / fleet), ``group`` (backend), ``nb``, ``sessions``,
  ``shards``, ``frontends``, ``reply_delay``.  A table lists levels per
  factor (full cross) or explicit ``cells`` (a curated list); factors a
  topology cannot express are *canonicalized* (an in-process run has no
  front-ends) and duplicate canonical cells are deduplicated, so a full
  cross never runs a meaningless combination twice.
* **Invariant enforcement**: every cell asserts byte-identity against
  the solo seeded :class:`repro.api.Session` (the repo's cross-cutting
  invariant); a cell that loses it fails the whole run loudly.
* **Raw artifacts**: one JSON per repetition through
  :func:`repro.bench.runner.write_bench_json` — host metadata stamped,
  so a number can never be read without knowing how many cores measured
  it — plus a combined ``BENCH_<table>.json``, with an explicit
  ``caveat`` row whenever ``cpu_count < 2`` (scaling claims withheld,
  ROADMAP's measurement-caveat rule).
* **Analysis**: :func:`summarize` folds rows into per-cell mean/stdev;
  :func:`check_baseline` compares two summaries and names every cell
  that regressed beyond a slowdown factor — the machine-checkable gate
  CI runs against the checked-in baseline.

The checked-in ``experiments/serving_sweep.json`` reproduces the
fleet/async/sharded measurements end-to-end; ``experiments/ci_gate.json``
is the tiny table the CI perf gate runs on every push.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.queries import CountQuery, HistogramQuery, Query
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ParameterError, ReproError
from repro.net.fleet import run_fleet, session_seed, session_values
from repro.net.serve import run_async_sessions, run_distributed_session
from repro.bench.runner import write_bench_json

__all__ = [
    "TOPOLOGIES",
    "FACTORS",
    "RunTable",
    "expand",
    "cell_id",
    "run_cell",
    "run_table",
    "summarize",
    "check_baseline",
    "load_rows",
    "main",
    "CAVEAT_NOTE",
]

TOPOLOGIES = (
    "in-process",
    "multiprocess",
    "socket",
    "async",
    "sharded",
    "fleet",
)

# Factor name -> default level (a table only names the factors it sweeps).
FACTORS = {
    "topology": "in-process",
    "group": "p64-sim",
    "nb": 64,
    "sessions": 1,
    "shards": 0,
    "frontends": 2,
    "reply_delay": 0.0,
}

# Fixed (non-swept) knobs and their defaults.
FIXED = {
    "clients": 6,
    "num_servers": 2,
    "capacity": 2,
    "chunk": None,
    "seed": "bench",
    "timeout": 120.0,
    "epsilon": 1.0,
    "delta": 2**-10,
    "bins": 1,
    "host": "127.0.0.1",
}

CAVEAT_NOTE = (
    "Measurement caveat: produced on a 1-core container (cpu_count "
    "recorded per row), so multi-process rows show dispatch overhead, "
    "not parallel speedup — real multi-core scaling is still unmeasured "
    "(see ROADMAP 'Measurement caveat')."
)


class HarnessError(ReproError):
    """A run-table cell violated an invariant (e.g. lost byte-identity)."""


@dataclass
class RunTable:
    """A declarative experiment: factors × levels × repetitions.

    ``factors`` maps factor names to level lists (the full cross is
    run); ``cells`` instead lists explicit factor dicts (a curated run
    list — what a shape table like ``bench_fleet``'s (F, C, S) triples
    needs).  A table may use either or both; ``fixed`` overrides the
    non-swept defaults.  Unknown keys anywhere are errors — a typo'd
    factor silently ignored is an experiment silently not run.
    """

    name: str
    repetitions: int = 1
    description: str = ""
    factors: dict = field(default_factory=dict)
    cells: list = field(default_factory=list)
    fixed: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not all(
            c.isalnum() or c in "._-" for c in self.name
        ):
            raise ParameterError(
                "table name must be non-empty [A-Za-z0-9._-] "
                "(it names the BENCH artifact files)"
            )
        if self.repetitions < 1:
            raise ParameterError("repetitions must be >= 1")
        unknown = sorted(set(self.factors) - set(FACTORS))
        if unknown:
            raise ParameterError(f"unknown factors: {unknown}")
        for cell in self.cells:
            if not isinstance(cell, dict):
                raise ParameterError("cells must be factor dicts")
            unknown = sorted(set(cell) - set(FACTORS))
            if unknown:
                raise ParameterError(f"unknown factors in cell: {unknown}")
        unknown = sorted(set(self.fixed) - set(FIXED))
        if unknown:
            raise ParameterError(f"unknown fixed keys: {unknown}")
        for factor, levels in self.factors.items():
            if not isinstance(levels, list) or not levels:
                raise ParameterError(
                    f"factor {factor!r} needs a non-empty level list"
                )
        if not self.factors and not self.cells:
            raise ParameterError("a run table needs factors or cells")

    @classmethod
    def from_dict(cls, data: dict) -> "RunTable":
        if not isinstance(data, dict):
            raise ParameterError("run table must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ParameterError(f"unknown run-table keys: {unknown}")
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "RunTable":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# Cell expansion ---------------------------------------------------------------


def _canonicalize(cell: dict) -> dict:
    """Pin the factors a topology cannot express to canonical values, so
    a full factor cross never runs a meaningless combination (and the
    duplicates it would create collapse in :func:`expand`)."""
    topology = cell["topology"]
    if topology not in TOPOLOGIES:
        raise ParameterError(
            f"unknown topology {topology!r} (choose from {TOPOLOGIES})"
        )
    cell = dict(cell)
    if topology == "in-process":
        # Sequential solo sessions: no processes, no shards, no delay.
        cell.update(shards=0, frontends=0, reply_delay=0.0)
    elif topology in ("multiprocess", "socket"):
        # One distributed session; 'sharded' owns the shards axis.
        cell.update(sessions=1, shards=0, frontends=0, reply_delay=0.0)
    elif topology == "sharded":
        # Multiprocess transport sweeping shards (0 = unsharded baseline).
        cell.update(sessions=1, frontends=0, reply_delay=0.0)
    elif topology == "async":
        # One mux front-end; the fleet owns the frontends axis.
        cell.update(frontends=0)
    return cell


def expand(table: RunTable) -> list[dict]:
    """Expand factors×levels (plus explicit cells) into the canonical,
    deduplicated, ordered cell list."""
    raw: list[dict] = []
    if table.factors:
        combos: list[dict] = [{}]
        for factor in FACTORS:  # stable factor order
            levels = table.factors.get(factor)
            if levels is None:
                continue
            combos = [
                {**combo, factor: level} for combo in combos for level in levels
            ]
        raw.extend(combos)
    raw.extend(dict(cell) for cell in table.cells)

    cells: list[dict] = []
    seen: set[tuple] = set()
    for combo in raw:
        cell = _canonicalize({**FACTORS, **combo})
        key = tuple(cell[name] for name in FACTORS)
        if key in seen:
            continue
        seen.add(key)
        cells.append(cell)
    return cells


def cell_id(cell: dict) -> str:
    """A filesystem-safe canonical cell name (stable across runs —
    baselines key on it)."""
    delay_ms = int(round(cell["reply_delay"] * 1000.0))
    return (
        f"{cell['topology']}_g-{cell['group']}_nb{cell['nb']}"
        f"_n{cell['sessions']}_sh{cell['shards']}_f{cell['frontends']}"
        f"_d{delay_ms}"
    )


# Cell execution ---------------------------------------------------------------


def _build_query(fixed: dict) -> tuple[Query, list]:
    bins = fixed["bins"]
    if bins > 1:
        query: Query = HistogramQuery(
            bins=bins, epsilon=fixed["epsilon"], delta=fixed["delta"]
        )
        values = [i % bins for i in range(fixed["clients"])]
    else:
        query = CountQuery(epsilon=fixed["epsilon"], delta=fixed["delta"])
        values = [i % 2 for i in range(fixed["clients"])]
    return query, values


def _seed_root(fixed: dict, cell: dict) -> str:
    return f"{fixed['seed']}/{cell_id(cell)}"


def _run_in_process(cell: dict, fixed: dict) -> dict:
    from repro.utils.rng import SeededRNG

    query, values = _build_query(fixed)
    seed = _seed_root(fixed, cell)
    frames: list[bytes] = []
    accepted = True
    start = time.perf_counter()
    for s in range(cell["sessions"]):
        session = Session(
            query,
            num_provers=fixed["num_servers"],
            group=cell["group"],
            nb_override=cell["nb"],
            chunk_size=fixed["chunk"],
            rng=SeededRNG(session_seed(seed, s)),
        )
        session.submit(session_values(values, s))
        result = session.release()
        accepted = accepted and result.release.accepted
        frames.append(encode_message(result.release))
    wall = time.perf_counter() - start
    # The reference topology has nothing distributed to compare against,
    # so byte-identity here is the determinism half of the invariant: an
    # identically seeded replay must reproduce the release exactly.
    replay = Session(
        query,
        num_provers=fixed["num_servers"],
        group=cell["group"],
        nb_override=cell["nb"],
        chunk_size=fixed["chunk"],
        rng=SeededRNG(session_seed(seed, 0)),
    )
    replay.submit(session_values(values, 0))
    byte_identical = encode_message(replay.release().release) == frames[0]
    return {
        "wall_s": wall,
        "sessions_per_sec": cell["sessions"] / wall if wall else float("inf"),
        "released": cell["sessions"],
        "accepted": accepted,
        "byte_identical": byte_identical,
    }


def _run_distributed(cell: dict, fixed: dict, transport: str) -> dict:
    query, values = _build_query(fixed)
    outcome = run_distributed_session(
        query,
        values,
        transport=transport,
        num_servers=fixed["num_servers"],
        shards=cell["shards"],
        group=cell["group"],
        nb_override=cell["nb"],
        chunk_size=fixed["chunk"],
        seed=session_seed(_seed_root(fixed, cell), 0),
        host=fixed["host"],
        timeout=fixed["timeout"],
    )
    return {
        "wall_s": outcome["elapsed_s"],
        "sessions_per_sec": 1.0 / outcome["elapsed_s"]
        if outcome["elapsed_s"]
        else float("inf"),
        "released": 1,
        "accepted": outcome["accepted"],
        "byte_identical": outcome["byte_identical"],
        "chunk": outcome["chunk_size"],
        "frontend_bytes_sent": outcome["frontend_bytes_sent"],
        "frontend_bytes_received": outcome["frontend_bytes_received"],
    }


def _run_async(cell: dict, fixed: dict) -> dict:
    query, values = _build_query(fixed)
    outcome = run_async_sessions(
        query,
        values,
        sessions=cell["sessions"],
        num_servers=fixed["num_servers"],
        shards=cell["shards"],
        group=cell["group"],
        nb_override=cell["nb"],
        chunk_size=fixed["chunk"],
        seed=_seed_root(fixed, cell),
        host=fixed["host"],
        timeout=fixed["timeout"],
        reply_delay=cell["reply_delay"],
    )
    return {
        "wall_s": outcome["elapsed_s"],
        "sessions_per_sec": outcome["sessions_per_sec"],
        "p50_session_s": outcome["p50_session_s"],
        "released": len(outcome["session_rows"]),
        "accepted": outcome["accepted"],
        "byte_identical": outcome["byte_identical"],
        "frontend_bytes_sent": outcome["frontend_bytes_sent"],
        "frontend_bytes_received": outcome["frontend_bytes_received"],
    }


def _run_fleet_cell(cell: dict, fixed: dict) -> dict:
    query, values = _build_query(fixed)
    outcome = run_fleet(
        query,
        values,
        sessions=cell["sessions"],
        frontends=cell["frontends"],
        capacity=fixed["capacity"],
        shards=cell["shards"],
        num_servers=fixed["num_servers"],
        group=cell["group"],
        nb_override=cell["nb"],
        chunk_size=fixed["chunk"],
        seed=_seed_root(fixed, cell),
        host=fixed["host"],
        timeout=fixed["timeout"],
        reply_delay=cell["reply_delay"],
    )
    return {
        "wall_s": outcome["elapsed_s"],
        "sessions_per_sec": outcome["sessions_per_sec"],
        "released": outcome["released"],
        "aborted": outcome["aborted"],
        "crashed": outcome["crashed"],
        "restarts": sum(outcome["restarts"].values()),
        "stolen": outcome["stolen"],
        "frontends_used": len(outcome["frontends_used"]),
        "accepted": outcome["accepted"],
        "byte_identical": outcome["byte_identical"],
    }


_RUNNERS = {
    "in-process": lambda cell, fixed: _run_in_process(cell, fixed),
    "multiprocess": lambda cell, fixed: _run_distributed(cell, fixed, "multiprocess"),
    "socket": lambda cell, fixed: _run_distributed(cell, fixed, "socket"),
    "sharded": lambda cell, fixed: _run_distributed(cell, fixed, "multiprocess"),
    "async": lambda cell, fixed: _run_async(cell, fixed),
    "fleet": lambda cell, fixed: _run_fleet_cell(cell, fixed),
}


def run_cell(
    cell: dict, fixed: dict | None = None, *, strict: bool = True
) -> dict:
    """Run one canonical cell once; returns the measurement row.

    ``strict`` (the default) turns a lost invariant — byte-identity
    against the solo seeded Session, or sessions not released — into a
    :class:`HarnessError` instead of a quietly-false row field.
    """
    cell = _canonicalize({**FACTORS, **cell})
    fixed = {**FIXED, **(fixed or {})}
    unknown = sorted(set(fixed) - set(FIXED))
    if unknown:
        raise ParameterError(f"unknown fixed keys: {unknown}")
    measured = _RUNNERS[cell["topology"]](cell, fixed)
    row = {
        "cell": cell_id(cell),
        **{name: cell[name] for name in FACTORS},
        "reply_delay_ms": cell["reply_delay"] * 1000.0,
        "clients": fixed["clients"],
        "num_servers": fixed["num_servers"],
        **measured,
    }
    del row["reply_delay"]
    if strict:
        if not row.get("byte_identical", False):
            raise HarnessError(
                f"cell {row['cell']} lost byte-identity against the solo "
                "seeded Session"
            )
        if row.get("released", 0) < cell["sessions"]:
            raise HarnessError(
                f"cell {row['cell']} released {row.get('released', 0)} of "
                f"{cell['sessions']} sessions"
            )
    return row


def run_table(
    table: RunTable,
    *,
    out_dir: str | Path | None = None,
    emit_raw: bool = True,
    strict: bool = True,
    progress=None,
) -> list[dict]:
    """Run every cell × repetition; returns all rows (plus the caveat row
    on single-core hosts).  ``emit_raw`` writes one
    ``BENCH_<table>.<cell>.r<rep>.json`` artifact per run as it lands —
    a crashed sweep keeps everything measured so far."""
    cells = expand(table)
    rows: list[dict] = []
    total = len(cells) * table.repetitions
    done = 0
    for cell in cells:
        for rep in range(table.repetitions):
            row = {"table": table.name, "rep": rep, **run_cell(
                cell, table.fixed, strict=strict
            )}
            rows.append(row)
            done += 1
            if emit_raw:
                write_bench_json(
                    f"{table.name}.{row['cell']}.r{rep}", [row], directory=out_dir
                )
            if progress is not None:
                progress(
                    f"[{done}/{total}] {row['cell']} rep {rep}: "
                    f"{row['wall_s']:.2f}s wall, "
                    f"{row['sessions_per_sec']:.2f} sessions/s"
                )
    if (os.cpu_count() or 1) < 2:
        rows.append(
            {
                "table": table.name,
                "kind": "caveat",
                "scaling_claim": "withheld",
                "note": CAVEAT_NOTE,
            }
        )
    return rows


# Analysis ---------------------------------------------------------------------


def summarize(rows: list[dict], *, metric: str = "wall_s") -> dict:
    """Fold measurement rows into per-cell mean/stdev of ``metric``.

    Caveat rows (and any row without the metric) are skipped for the
    statistics but a caveat's presence is recorded — a summary made on a
    1-core host says so."""
    cells: dict[str, list[float]] = {}
    caveats = []
    for row in rows:
        if row.get("kind") == "caveat":
            caveats.append(row.get("note", "scaling claim withheld"))
            continue
        value = row.get(metric)
        if value is None or "cell" not in row:
            continue
        cells.setdefault(row["cell"], []).append(float(value))
    summary_cells = {
        cid: {
            "mean": statistics.mean(values),
            "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
            "n": len(values),
        }
        for cid, values in sorted(cells.items())
    }
    return {"metric": metric, "cells": summary_cells, "caveats": caveats}


def check_baseline(
    summary: dict, baseline: dict, *, max_slowdown: float = 2.0
) -> list[str]:
    """Compare a summary against a baseline; returns violation strings
    (empty = gate passes).  Only cells present in the baseline gate —
    new cells are new coverage, not regressions — but a baseline cell
    missing from the summary is a violation (coverage was lost)."""
    if max_slowdown <= 0 or math.isnan(max_slowdown):
        raise ParameterError("max_slowdown must be a positive number")
    if summary.get("metric") != baseline.get("metric"):
        raise ParameterError(
            f"summary metric {summary.get('metric')!r} != baseline "
            f"metric {baseline.get('metric')!r}"
        )
    violations = []
    for cid, base in sorted(baseline.get("cells", {}).items()):
        current = summary.get("cells", {}).get(cid)
        if current is None:
            violations.append(f"{cid}: present in baseline, missing from summary")
            continue
        if base["mean"] <= 0:
            continue
        slowdown = current["mean"] / base["mean"]
        if slowdown > max_slowdown:
            violations.append(
                f"{cid}: {current['mean']:.3f}s vs baseline "
                f"{base['mean']:.3f}s = {slowdown:.2f}x slowdown "
                f"(limit {max_slowdown:.2f}x)"
            )
    return violations


def load_rows(paths) -> list[dict]:
    """Concatenate the rows of BENCH_*.json files (combined or raw)."""
    rows: list[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "rows" not in data:
            raise ParameterError(f"{path}: not a BENCH rows file")
        rows.extend(data["rows"])
    return rows


# CLI --------------------------------------------------------------------------


def _write_json(path: str, data: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(args) -> int:
    """``repro bench`` entry point (parsed args from ``repro.cli``)."""
    from repro.bench.format import print_table

    try:
        if args.command == "run":
            table = RunTable.from_file(args.table)
            rows = run_table(
                table,
                out_dir=args.out,
                emit_raw=not args.no_raw,
                progress=lambda line: print(line, flush=True),
            )
            path = write_bench_json(table.name, rows, directory=args.out)
            print(f"rows written to {path}")
            summary = summarize(rows)
            display = [
                {"cell": cid, **stats}
                for cid, stats in summary["cells"].items()
            ]
            print_table(
                display, title=f"== {table.name}: wall_s mean/stdev per cell =="
            )
            for note in summary["caveats"]:
                print(note)
            if args.summary:
                _write_json(args.summary, summary)
                print(f"summary written to {args.summary}")
            if args.baseline:
                with open(args.baseline, "r", encoding="utf-8") as handle:
                    baseline = json.load(handle)
                violations = check_baseline(
                    summary, baseline, max_slowdown=args.max_slowdown
                )
                return _report_gate(violations, args.baseline)
            return 0
        if args.command == "summarize":
            summary = summarize(load_rows(args.files), metric=args.metric)
            display = [
                {"cell": cid, **stats} for cid, stats in summary["cells"].items()
            ]
            print_table(display, title=f"== {args.metric} mean/stdev per cell ==")
            if args.out:
                _write_json(args.out, summary)
                print(f"summary written to {args.out}")
            return 0
        if args.command == "check":
            with open(args.summary, "r", encoding="utf-8") as handle:
                summary = json.load(handle)
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            violations = check_baseline(
                summary, baseline, max_slowdown=args.max_slowdown
            )
            return _report_gate(violations, args.baseline)
        raise ParameterError(f"unknown bench command {args.command!r}")
    except ParameterError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except HarnessError as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1


def _report_gate(violations: list[str], baseline_path: str) -> int:
    if violations:
        print(f"PERF GATE FAILED vs {baseline_path}:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"perf gate passed vs {baseline_path}")
    return 0
