"""Minimal fixed-width table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render a list of homogeneous dicts as a fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict], *, title: str | None = None) -> None:
    print(format_table(rows, title=title))
    print()
