"""Timed building blocks for the Table 1 / Figure 3 / Figure 4 benches.

These time exactly the operations the paper's stage columns describe:

* Σ-proof      — creating nb non-interactive OR proofs for private coins,
* Σ-verification — verifying them,
* Morra        — nb commit-reveal public coins between prover and verifier,
* Aggregation  — summing n field elements of κ bits,
* Check        — the verifier's Line 12 commitment updates + Line 13 product.

Each function returns (seconds, per_item_seconds) so the harness can
extrapolate scaled runs to the paper's workload sizes (the work is
perfectly linear in nb / n — there is no cross-item interaction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.params import PublicParams
from repro.crypto.fiat_shamir import Transcript
from repro.crypto.pedersen import Commitment, Opening
from repro.crypto.sigma.or_bit import BitProof, prove_bits, verify_bits
from repro.crypto.sigma.onehot import prove_one_hot, verify_one_hot
from repro.mpc.morra import MorraParticipant, run_morra_batch
from repro.utils.rng import RNG, SeededRNG

__all__ = [
    "StageSample",
    "time_sigma_prove",
    "time_sigma_verify",
    "time_morra",
    "time_aggregation",
    "time_check",
    "time_onehot_prove",
    "time_onehot_verify",
    "time_sketch_validate",
]


@dataclass(frozen=True)
class StageSample:
    """A timed stage: total seconds and units processed."""

    seconds: float
    items: int

    @property
    def per_item(self) -> float:
        return self.seconds / max(self.items, 1)

    def extrapolate_ms(self, target_items: int) -> float:
        return self.per_item * target_items * 1e3


def _coins(params: PublicParams, count: int, rng: RNG) -> tuple[list[Commitment], list[Opening]]:
    commitments, openings = [], []
    for _ in range(count):
        c, o = params.pedersen.commit_fresh(rng.coin(), rng)
        commitments.append(c)
        openings.append(o)
    return commitments, openings


def time_sigma_prove(params: PublicParams, count: int, rng: RNG) -> tuple[StageSample, list[Commitment], list[BitProof]]:
    commitments, openings = _coins(params, count, rng)
    transcript = Transcript("bench.sigma")
    start = time.perf_counter()
    proofs = prove_bits(params.pedersen, commitments, openings, transcript, rng)
    elapsed = time.perf_counter() - start
    return StageSample(elapsed, count), commitments, proofs


def time_sigma_verify(
    params: PublicParams, commitments: list[Commitment], proofs: list[BitProof]
) -> StageSample:
    transcript = Transcript("bench.sigma")
    start = time.perf_counter()
    verify_bits(params.pedersen, commitments, proofs, transcript)
    return StageSample(time.perf_counter() - start, len(proofs))


def time_morra(params: PublicParams, count: int, rng: RNG) -> tuple[StageSample, list[int]]:
    prover = MorraParticipant("bench-prover", rng)
    verifier = MorraParticipant("bench-verifier", SeededRNG("bench-vfr"))
    start = time.perf_counter()
    bits = run_morra_batch([prover, verifier], params.q, count).bits()
    return StageSample(time.perf_counter() - start, count), bits


def time_aggregation(params: PublicParams, n: int, rng: RNG) -> StageSample:
    """Summing n shares of κ bits each (the prover's Line 10 sum)."""
    q = params.q
    values = [rng.field_element(q) for _ in range(n)]
    start = time.perf_counter()
    acc = 0
    for value in values:
        acc = (acc + value) % q
    return StageSample(time.perf_counter() - start, n)


def time_check(
    params: PublicParams,
    commitments: list[Commitment],
    bits: list[int],
    rng: RNG,
) -> StageSample:
    """Line 12 updates + Line 13 product + one Com(y, z)."""
    pedersen = params.pedersen
    start = time.perf_counter()
    product = pedersen.commitment_to_constant(0)
    for commitment, bit in zip(commitments, bits):
        adjusted = pedersen.one_minus(commitment) if bit else commitment
        product = product * adjusted
    pedersen.commit(rng.field_element(params.q), rng.field_element(params.q))
    return StageSample(time.perf_counter() - start, len(commitments))


# Figure 4 building blocks ----------------------------------------------------


def time_onehot_prove(params: PublicParams, dimension: int, rng: RNG) -> tuple[StageSample, list[Commitment], object]:
    vector = [1 if m == 0 else 0 for m in range(dimension)]
    commitments, openings = params.pedersen.commit_vector(vector, rng)
    transcript = Transcript("bench.onehot")
    start = time.perf_counter()
    proof = prove_one_hot(params.pedersen, commitments, openings, transcript, rng)
    return StageSample(time.perf_counter() - start, dimension), commitments, proof


def time_onehot_verify(params: PublicParams, commitments: list[Commitment], proof) -> StageSample:
    transcript = Transcript("bench.onehot")
    start = time.perf_counter()
    verify_one_hot(params.pedersen, commitments, proof, transcript)
    return StageSample(time.perf_counter() - start, len(commitments))


def time_sketch_validate(dimension: int, q: int, rng: RNG) -> StageSample:
    """The PRIO/Poplar-style sketch validation of one client (Figure 4)."""
    from repro.baselines.sketch import OneHotSketch

    sketch = OneHotSketch(dimension, q)
    vector = [1 if m == 0 else 0 for m in range(dimension)]
    packages = sketch.client_prepare(vector, rng)
    start = time.perf_counter()
    assert sketch.validate(packages, b"bench-seed")
    return StageSample(time.perf_counter() - start, dimension)
