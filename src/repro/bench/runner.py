"""Experiment drivers, one per paper artifact (see DESIGN.md's index).

All drivers accept a ``scale`` knob: benchmarks run at reduced workload
sizes by default (this is pure Python) and report both measured numbers
and the linear extrapolation to the paper's stated sizes.  Set
``REPRO_PAPER_SCALE=1`` to run the real thing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.error import empirical_error
from repro.attacks import (
    collusion_attack_on_pibin,
    collusion_attack_on_prio,
    exclusion_attack_on_pibin,
    exclusion_attack_on_prio,
    noise_biasing_on_curator,
    noise_biasing_on_pibin,
)
from repro.analysis.separation import demonstrate_separation
from repro.bench.stages import (
    time_aggregation,
    time_check,
    time_morra,
    time_onehot_prove,
    time_onehot_verify,
    time_sigma_prove,
    time_sigma_verify,
    time_sketch_validate,
)
from repro.core.params import setup
from repro.crypto.ristretto import RistrettoGroup
from repro.crypto.schnorr_group import SchnorrGroup
from repro.dp.binomial import BinomialMechanism, coins_for_privacy
from repro.dp.laplace import LaplaceMechanism
from repro.dp.randomized_response import RandomizedResponse
from repro.utils.rng import SeededRNG

__all__ = [
    "run_table1",
    "run_fig3",
    "run_fig4",
    "run_table2",
    "run_micro",
    "run_err",
    "run_comm",
    "run_attacks",
    "run_separation",
    "run_multiexp",
    "run_streaming",
    "write_bench_json",
    "host_metadata",
    "EXPERIMENTS",
]

# Paper workload constants (Table 1 caption).
PAPER_N = 10**6
PAPER_NB = 262_144
PAPER_DELTA = 2**-10


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


def run_table1(
    *,
    group: str = "modp-2048",
    nb: int | None = None,
    n: int | None = None,
    seed: str = "table1",
) -> list[dict]:
    """Table 1: per-stage latency of ΠBin (single counting query).

    Stages defined exactly as in the paper: Σ-proof / Σ-verification over
    the nb private-coin commitments, Morra for nb public coins,
    aggregation of n field elements, and the verifier's check.
    """
    if nb is None:
        nb = PAPER_NB if paper_scale() else 256
    if n is None:
        n = PAPER_N if paper_scale() else 20_000
    params = setup(1.0, PAPER_DELTA, group=group, nb_override=nb)
    rng = SeededRNG(seed)

    prove, commitments, proofs = time_sigma_prove(params, nb, rng)
    verify = time_sigma_verify(params, commitments, proofs)
    morra, bits = time_morra(params, nb, rng)
    aggregation = time_aggregation(params, n, rng)
    check = time_check(params, commitments, bits, rng)

    paper_row = {
        "stage": "paper (M1, Rust)",
        "sigma_proof_ms": 6609.0,
        "sigma_verify_ms": 6708.0,
        "morra_ms": 4987.0,
        "aggregation_ms": 198.0,
        "check_ms": 263.0,
    }
    measured_row = {
        "stage": f"measured (nb={nb}, n={n}, {group})",
        "sigma_proof_ms": prove.seconds * 1e3,
        "sigma_verify_ms": verify.seconds * 1e3,
        "morra_ms": morra.seconds * 1e3,
        "aggregation_ms": aggregation.seconds * 1e3,
        "check_ms": check.seconds * 1e3,
    }
    extrapolated_row = {
        "stage": f"extrapolated (nb={PAPER_NB}, n={PAPER_N})",
        "sigma_proof_ms": prove.extrapolate_ms(PAPER_NB),
        "sigma_verify_ms": verify.extrapolate_ms(PAPER_NB),
        "morra_ms": morra.extrapolate_ms(PAPER_NB),
        "aggregation_ms": aggregation.extrapolate_ms(PAPER_N),
        "check_ms": check.extrapolate_ms(PAPER_NB),
    }
    return [paper_row, measured_row, extrapolated_row]


def run_fig3(
    *,
    epsilons: tuple[float, ...] = (0.5, 0.88, 1.25, 2.0, 3.0, 4.0),
    backends: tuple[str, ...] = ("modp-2048", "ristretto255"),
    sample: int | None = None,
    seed: str = "fig3",
) -> list[dict]:
    """Figure 3: Σ-proof create/verify latency vs ε, per group backend.

    nb(ε) comes from Lemma 2.1 (∝ 1/ε²); we time ``sample`` proofs and
    report the projected total for the full nb(ε), which is exact because
    proofs are independent.
    """
    if sample is None:
        sample = 2048 if paper_scale() else 48
    rows = []
    for backend in backends:
        params = setup(1.0, PAPER_DELTA, group=backend, nb_override=max(sample, 31))
        rng = SeededRNG(f"{seed}-{backend}")
        prove, commitments, proofs = time_sigma_prove(params, sample, rng)
        verify = time_sigma_verify(params, commitments, proofs)
        for eps in epsilons:
            nb = coins_for_privacy(eps, PAPER_DELTA)
            rows.append(
                {
                    "backend": backend,
                    "epsilon": eps,
                    "nb": nb,
                    "prove_total_s": prove.per_item * nb,
                    "verify_total_s": verify.per_item * nb,
                    "prove_per_coin_ms": prove.per_item * 1e3,
                    "verify_per_coin_ms": verify.per_item * 1e3,
                }
            )
    return rows


def run_fig4(
    *,
    dimensions: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    group: str = "modp-2048",
    seed: str = "fig4",
) -> list[dict]:
    """Figure 4: validating one client's M-dimensional input.

    Σ-OR one-hot proofs (ours, malicious-server robust) vs the
    PRIO/Poplar linear sketch (fast, but vulnerable to Figure 1).
    """
    rows = []
    sketch_q = SchnorrGroup.named(group).order
    for dimension in dimensions:
        params = setup(
            1.0, PAPER_DELTA, group=group, dimension=dimension, nb_override=31
        )
        rng = SeededRNG(f"{seed}-{dimension}")
        prove, commitments, proof = time_onehot_prove(params, dimension, rng)
        verify = time_onehot_verify(params, commitments, proof)
        sketch = time_sketch_validate(dimension, sketch_q, rng)
        sigma_total = prove.seconds + verify.seconds
        rows.append(
            {
                "M": dimension,
                "sigma_prove_ms": prove.seconds * 1e3,
                "sigma_verify_ms": verify.seconds * 1e3,
                "sketch_ms": sketch.seconds * 1e3,
                "overhead_x": sigma_total / max(sketch.seconds, 1e-9),
            }
        )
    return rows


def run_table2(*, validate: bool = True, seed: str = "table2") -> list[dict]:
    """Table 2: qualitative properties of MPC-DP systems.

    Static rows transcribe the paper's table; the systems implemented in
    this repository (PRIO, Poplar-style, trusted curator, ours) carry a
    ``validated`` flag derived by actually running the attack probes.
    """
    rows = [
        {"protocol": "Cryptographic RR [AJL04]", "active": True, "central_dp": False, "auditable": False, "zero_leakage": True, "validated": ""},
        {"protocol": "Verifiable Randomization [KCY21]", "active": True, "central_dp": False, "auditable": True, "zero_leakage": True, "validated": ""},
        {"protocol": "Biased Coins [CSU19]", "active": True, "central_dp": True, "auditable": False, "zero_leakage": False, "validated": ""},
        {"protocol": "MPC-DP heavy hitters [BK21]", "active": False, "central_dp": True, "auditable": False, "zero_leakage": True, "validated": ""},
        {"protocol": "PRIO [CGB17]", "active": False, "central_dp": True, "auditable": False, "zero_leakage": True, "validated": ""},
        {"protocol": "Brave STAR [DSQ+21]", "active": False, "central_dp": False, "auditable": False, "zero_leakage": False, "validated": ""},
        {"protocol": "Sparse Histograms [BBG+20]", "active": False, "central_dp": True, "auditable": False, "zero_leakage": False, "validated": ""},
        {"protocol": "Crypt-eps [RCWH+20]", "active": False, "central_dp": True, "auditable": False, "zero_leakage": False, "validated": ""},
        {"protocol": "Poplar [BBCG+22]", "active": True, "central_dp": False, "auditable": False, "zero_leakage": False, "validated": ""},
        {"protocol": "Our work (PiBin)", "active": True, "central_dp": True, "auditable": True, "zero_leakage": True, "validated": ""},
    ]
    if validate:
        # Dynamically confirm the rows we implement.
        prio_attack = exclusion_attack_on_prio(rng=SeededRNG(f"{seed}-prio"))
        ours_attack = exclusion_attack_on_pibin(rng=SeededRNG(f"{seed}-ours"))
        ours_bias = noise_biasing_on_pibin(rng=SeededRNG(f"{seed}-bias"))
        for row in rows:
            if row["protocol"].startswith("PRIO"):
                row["validated"] = (
                    "attack succeeded silently" if prio_attack.succeeded and not prio_attack.detected else "UNEXPECTED"
                )
            if row["protocol"].startswith("Our work"):
                ok = ours_attack.detected and ours_bias.detected
                row["validated"] = "cheaters detected+named" if ok else "UNEXPECTED"
    return rows


def run_micro(*, exponent_bits: int = 256, trials: int | None = None, seed: str = "micro") -> list[dict]:
    """Section 6 inline numbers: single-exponentiation latency per backend.

    Paper (Apple M1, native code): 35 µs for Gq ⊂ Z*p, 328 µs for
    Ristretto — EC slower by ~9×.  In this pure-Python substrate the
    ordering *inverts*: a 255-bit Edwards scalar multiplication in Python
    beats CPython's 2048-bit modular exponentiation, because the paper's
    comparison pits a tiny field (with vectorized native code) against a
    2048-bit one (with the same); strip the native advantage and the
    bignum width dominates.  Reported honestly.
    """
    if trials is None:
        trials = 200 if paper_scale() else 50
    rng = SeededRNG(seed)
    rows = []
    for name, group in (
        ("modp-2048", SchnorrGroup.named("modp-2048")),
        ("ristretto255", RistrettoGroup.instance()),
    ):
        base = group.generator()
        exponents = [rng.randbits(exponent_bits) for _ in range(trials)]
        start = time.perf_counter()
        for e in exponents:
            base ** e
        per_op = (time.perf_counter() - start) / trials
        rows.append(
            {
                "backend": name,
                "measured_us": per_op * 1e6,
                "paper_us": 35.0 if name == "modp-2048" else 328.0,
            }
        )
    rows.append(
        {
            "backend": "ratio ec/modp",
            "measured_us": rows[1]["measured_us"] / rows[0]["measured_us"],
            "paper_us": 328.0 / 35.0,
        }
    )
    return rows


def run_err(
    *,
    epsilons: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    ns: tuple[int, ...] = (100, 1_000, 10_000),
    trials: int | None = None,
    seed: str = "err",
) -> list[dict]:
    """Central vs local DP-Error (Definition 6): O(1/ε) vs O(√n/ε)."""
    if trials is None:
        trials = 200 if paper_scale() else 60
    rng = SeededRNG(seed)
    rows = []
    for n in ns:
        dataset = [1 if i % 3 == 0 else 0 for i in range(n)]
        for eps in epsilons:
            mechanisms = {
                "binomial (central)": BinomialMechanism(eps, PAPER_DELTA),
                "laplace (central)": LaplaceMechanism(eps),
                "randomized response (local)": RandomizedResponse(eps),
            }
            for name, mechanism in mechanisms.items():
                rows.append(
                    {
                        "mechanism": name,
                        "n": n,
                        "epsilon": eps,
                        "err": empirical_error(mechanism, dataset, trials, rng),
                    }
                )
    return rows


def run_comm(
    *,
    group: str = "modp-2048",
    dimensions: tuple[int, ...] = (1, 8, 64),
    seed: str = "comm",
) -> list[dict]:
    """Communication cost: serialized proof sizes vs the sketch.

    The paper notes the Σ approach "increases the communication bandwidth
    of the protocol"; this quantifies it: bytes per client validation
    (Σ-OR one-hot proof + commitments vs the sketch's shares +
    correlation), and bytes per noise coin (commitment + proof).

    The trailing rows report a full K = 2 session's per-role traffic from
    the message bus, whose accounting is now *exact* encoded wire bytes
    for every protocol message (see :func:`repro.crypto.serialization.wire_size`)
    rather than a best-effort estimate.
    """
    from repro.crypto.fiat_shamir import Transcript
    from repro.crypto.serialization import (
        encode_bit_proof,
        encode_commitment,
        encode_one_hot_proof,
    )
    from repro.crypto.sigma.onehot import prove_one_hot
    from repro.crypto.sigma.or_bit import prove_bit
    from repro.baselines.sketch import OneHotSketch

    rows = []
    params = setup(1.0, PAPER_DELTA, group=group, nb_override=31)
    rng = SeededRNG(seed)
    scalar_bytes = params.group.scalar_bytes

    # Per-coin cost (prover side of ΠBin).
    c, o = params.pedersen.commit_fresh(1, rng)
    proof = prove_bit(params.pedersen, c, o, Transcript("comm"), rng)
    rows.append(
        {
            "item": "noise coin (commitment + sigma-OR proof)",
            "M": 1,
            "bytes": len(encode_commitment(c)) + len(encode_bit_proof(proof)),
        }
    )

    for m in dimensions:
        vector = [1] + [0] * (m - 1)
        cs, os_ = params.pedersen.commit_vector(vector, rng)
        oh = (
            prove_one_hot(params.pedersen, cs, os_, Transcript("comm"), rng)
            if m > 1
            else None
        )
        sigma_bytes = sum(len(encode_commitment(x)) for x in cs)
        if oh is not None:
            sigma_bytes += len(encode_one_hot_proof(oh))
        else:
            bp = prove_bit(params.pedersen, cs[0], os_[0], Transcript("c2"), rng)
            sigma_bytes += len(encode_bit_proof(bp))
        rows.append(
            {"item": "client validation, sigma-OR", "M": m, "bytes": sigma_bytes}
        )

        sketch = OneHotSketch(m, params.q)
        packages = sketch.client_prepare(vector, rng)
        sketch_bytes = sum(
            (len(p.x_share) + 2) * scalar_bytes for p in packages
        )
        rows.append(
            {"item": "client validation, sketch (2 servers)", "M": m, "bytes": sketch_bytes}
        )

    # End-to-end session traffic, exact wire bytes per role (K = 2).
    from repro.api import CountQuery, Session

    session = Session(
        CountQuery(1.0, PAPER_DELTA),
        num_provers=2,
        group=group,
        nb_override=31,
        rng=SeededRNG(f"{seed}-session"),
    )
    session.submit([1, 0, 1, 1])
    result = session.release()
    network = result.results[0].engine_result.network
    by_role = {"clients": 0, "provers": 0, "verifier": 0}
    for sender, sent in sorted(network.bytes_sent.items()):
        if sender.startswith("client"):
            by_role["clients"] += sent
        elif sender.startswith("prover"):
            by_role["provers"] += sent
        else:
            by_role["verifier"] += sent
    for role, sent in by_role.items():
        rows.append(
            {"item": f"session wire bytes (n=4, nb=31, K=2), {role}", "M": 1, "bytes": sent}
        )
    return rows


def run_attacks(*, seed: str = "attacks") -> list[dict]:
    """Figure 1 + noise biasing, side by side (baseline vs ΠBin)."""
    outcomes = [
        exclusion_attack_on_prio(rng=SeededRNG(f"{seed}-1")),
        exclusion_attack_on_pibin(rng=SeededRNG(f"{seed}-2")),
        collusion_attack_on_prio(rng=SeededRNG(f"{seed}-3")),
        collusion_attack_on_pibin(rng=SeededRNG(f"{seed}-4")),
        noise_biasing_on_curator(rng=SeededRNG(f"{seed}-5")),
        noise_biasing_on_pibin(rng=SeededRNG(f"{seed}-6")),
    ]
    return [
        {
            "attack": o.attack,
            "system": o.system,
            "adversary_wins": o.succeeded,
            "detected": o.detected,
            "culprit": o.culprit or "-",
        }
        for o in outcomes
    ]


def run_separation(*, seed: str = "separation") -> list[dict]:
    """Theorem 5.2 demonstration on the toy group."""
    report = demonstrate_separation(rng=SeededRNG(seed))
    return [
        {
            "horn": "Pedersen (stat. hiding)",
            "unbounded_break": "soundness: equivocated tally accepted",
            "succeeded": report.pedersen_equivocation_succeeded,
        },
        {
            "horn": "ElGamal (perf. binding)",
            "unbounded_break": "privacy: committed value extracted",
            "succeeded": report.elgamal_extraction_succeeded,
        },
    ]


def host_metadata() -> dict:
    """The measurement context a BENCH row is meaningless without.

    ``cpu_count`` is the load-bearing field: scaling claims (sharded,
    distributed, fleet) measured on a 1-core container show
    *coordination overhead*, not parallel speedup, and earlier BENCH
    files repeated exactly that mistake because the rows carried no
    record of where they were measured (see ROADMAP "Measurement
    caveats").
    """
    import platform

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def write_bench_json(
    name: str, rows: list[dict], directory: str | Path | None = None
) -> Path:
    """Persist experiment rows as ``BENCH_<name>.json``.

    The file lands in ``directory`` when given, else ``REPRO_BENCH_DIR``
    (default: the current working directory, i.e. the repo root when run
    via ``python -m repro``), and is the checked-in evidence format for
    perf-sensitive changes.  Every row is stamped with
    :func:`host_metadata` (the row's own keys win) so a scaling number
    can never again be read without knowing how many cores measured it.
    """
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_DIR", ".")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    metadata = host_metadata()
    stamped = [{**metadata, **row} for row in rows]
    path.write_text(json.dumps({"bench": name, "rows": stamped}, indent=2) + "\n")
    return path


def run_multiexp(
    *,
    sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096),
    wide_sizes: tuple[int, ...] = (2, 8, 32),
    signed_sizes: tuple[int, ...] = (1024, 4096),
    seed: str = "multiexp",
    emit_json: bool = True,
) -> list[dict]:
    """Multiexp tier crossover: naive vs Straus-wNAF vs Pippenger.

    Times all three tiers per batch size on the 128-bit Schnorr
    simulation group (plus a few sizes on production modp-2048), reports
    the automatic selection, and emits ``BENCH_multiexp.json`` — the
    regression evidence behind the verifier's batched hot path *and* the
    measured calibration :mod:`repro.crypto.multiexp` auto-tunes its
    crossovers and Straus windows from (rows carry the exponent width;
    extra row kinds: ``straus-window`` sweeps the wNAF width,
    ``pippenger-variants`` compares signed-digit vs unsigned buckets —
    signed wins where negation is free, i.e. on the curve backends, while
    unsigned holds on the integer backends where negation is a batched
    modular inversion worth ~3 multiplications per base).

    Calibration is *disabled for the duration of the sweep*: the rows
    must measure the uncalibrated defaults, or a stale checked-in file's
    tuning (a noisy window width, another machine's crossovers) would
    contaminate its own replacement and self-perpetuate.
    """
    from repro.crypto import multiexp as multiexp_mod
    from repro.crypto.multiexp import (
        _straus,
        kernel_for,
        multi_exponentiation,
        select_algorithm,
    )
    from repro.crypto.ristretto import RistrettoGroup

    held_env = os.environ.get("REPRO_MULTIEXP_CALIBRATION")
    os.environ["REPRO_MULTIEXP_CALIBRATION"] = "0"
    multiexp_mod._reset_calibration()
    try:
        rows = _run_multiexp_sweep(
            sizes, wide_sizes, signed_sizes, seed,
            _straus, kernel_for, multi_exponentiation, select_algorithm,
            RistrettoGroup,
        )
    finally:
        if held_env is None:
            os.environ.pop("REPRO_MULTIEXP_CALIBRATION", None)
        else:
            os.environ["REPRO_MULTIEXP_CALIBRATION"] = held_env
        multiexp_mod._reset_calibration()
    if emit_json:
        write_bench_json("multiexp", rows)
    return rows


def _run_multiexp_sweep(
    sizes, wide_sizes, signed_sizes, seed,
    _straus, kernel_for, multi_exponentiation, select_algorithm,
    RistrettoGroup,
) -> list[dict]:
    rows: list[dict] = []
    for group_name, group_sizes, budget in (
        ("p128-sim", sizes, 256),
        ("modp-2048", wide_sizes, 2),
    ):
        group = SchnorrGroup.named(group_name)
        kernel = group.multiexp_kernel()
        rng = SeededRNG(f"{seed}-{group_name}")
        for n in group_sizes:
            bases = [group.random_element(rng) for _ in range(n)]
            exps = [rng.field_element(group.order) for _ in range(n)]
            bits = max((e.bit_length() for e in exps), default=1)
            row: dict = {
                "group": group_name,
                "n": n,
                "bits": bits,
                "selected": select_algorithm(
                    n,
                    bits,
                    native_pow=kernel.native_pow,
                    op_overhead=kernel.op_overhead,
                    neg_muls=kernel.neg_muls,
                ),
            }
            for algorithm in ("naive", "straus", "pippenger"):
                reps = max(1, budget // n)
                start = time.perf_counter()
                for _ in range(reps):
                    multi_exponentiation(group, bases, exps, algorithm=algorithm)
                row[f"{algorithm}_ms"] = (time.perf_counter() - start) / reps * 1e3
            row["speedup_vs_naive"] = row["naive_ms"] / max(
                min(row["straus_ms"], row["pippenger_ms"]), 1e-9
            )
            rows.append(row)

        # Straus wNAF width sweep: feeds the window auto-tuner.
        window_n = 16
        bases = [group.random_element(rng) for _ in range(window_n)]
        exps = [rng.field_element(group.order) for _ in range(window_n)]
        bits = max(e.bit_length() for e in exps)
        raw_bases = [kernel.to_raw(base) for base in bases]
        for window in (3, 4, 5, 6):
            reps = max(1, budget // window_n)
            start = time.perf_counter()
            for _ in range(reps):
                _straus(kernel, raw_bases, exps, window)
            rows.append(
                {
                    "group": group_name,
                    "kind": "straus-window",
                    "n": window_n,
                    "bits": bits,
                    "window": window,
                    "ms": (time.perf_counter() - start) / reps * 1e3,
                }
            )

    # Signed-digit vs unsigned Pippenger buckets, per backend class.
    for group, group_sizes, reps in (
        (SchnorrGroup.named("p128-sim"), signed_sizes, 3),
        (RistrettoGroup.instance(), signed_sizes[:1], 1),
    ):
        kernel = kernel_for(group)
        rng = SeededRNG(f"{seed}-signed-{group.name}")
        for n in group_sizes:
            bases = [group.random_element(rng) for _ in range(n)]
            exps = [rng.field_element(group.order) for _ in range(n)]
            bits = max(e.bit_length() for e in exps)
            timings = {}
            for variant in ("pippenger-unsigned", "pippenger-signed"):
                start = time.perf_counter()
                for _ in range(reps):
                    multi_exponentiation(group, bases, exps, algorithm=variant)
                timings[variant] = (time.perf_counter() - start) / reps * 1e3
            rows.append(
                {
                    "group": group.name,
                    "kind": "pippenger-variants",
                    "n": n,
                    "bits": bits,
                    "neg_muls": kernel.neg_muls,
                    "unsigned_ms": timings["pippenger-unsigned"],
                    "signed_ms": timings["pippenger-signed"],
                    "signed_speedup": timings["pippenger-unsigned"]
                    / max(timings["pippenger-signed"], 1e-9),
                }
            )
    return rows


def run_streaming(
    *,
    nb: int | None = None,
    chunk: int | None = None,
    n_clients: int = 48,
    group: str = "p64-sim",
    seed: str = "streaming",
    emit_json: bool = True,
) -> list[dict]:
    """Streamed vs buffered session verification: throughput and memory.

    Runs the same CountQuery twice through ``repro.api.Session`` — once
    buffered (the legacy execution shape: all nb proofs and messages held
    at once) and once streamed in chunks — and reports proofs
    verified/sec plus the tracemalloc peak, the in-process stand-in for
    peak verifier RSS.  Emits ``BENCH_streaming.json``: the evidence that
    a paper-scale nb fits in O(chunk) memory.  Set ``REPRO_PAPER_SCALE=1``
    (or REPRO_STREAM_NB) for the nb = 65,536+ run.
    """
    import gc
    import tracemalloc

    from repro.api import CountQuery, Session

    if nb is None:
        env = os.environ.get("REPRO_STREAM_NB")
        nb = int(env) if env else (65_536 if paper_scale() else 1024)
    if chunk is None:
        chunk = max(64, nb // 64)
    bits = [1 if i % 3 == 0 else 0 for i in range(n_clients)]
    query = CountQuery(1.0, PAPER_DELTA)

    rows: list[dict] = []
    peaks: dict[str, int] = {}
    for mode, chunk_size in (("streamed", chunk), ("buffered", None)):
        gc.collect()
        tracemalloc.start()
        start = time.perf_counter()
        session = Session(
            query,
            group=group,
            nb_override=nb,
            chunk_size=chunk_size,
            rng=SeededRNG(f"{seed}-{mode}"),
        )
        session.submit(bits)
        result = session.release()
        total = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.accepted
        stages = result.results[0].timer.stages
        verify_s = stages.get("sigma-verification", 0.0)
        peaks[mode] = peak
        rows.append(
            {
                "mode": mode,
                "nb": nb,
                "chunk": chunk_size or nb,
                "n_clients": n_clients,
                "group": group,
                "total_s": total,
                "sigma_verify_s": verify_s,
                "proofs_per_s": nb / verify_s if verify_s else float("inf"),
                "peak_mem_mb": peak / 1e6,
            }
        )
    # Summary row: dimensionless ratios under their own keys — never mixed
    # into the seconds/MB columns above.
    rows.append(
        {
            "mode": "ratio (streamed/buffered)",
            "nb": nb,
            "chunk": chunk,
            "n_clients": n_clients,
            "group": group,
            "total_ratio": rows[0]["total_s"] / max(rows[1]["total_s"], 1e-9),
            "peak_mem_ratio": peaks["streamed"] / max(peaks["buffered"], 1),
        }
    )
    if emit_json:
        write_bench_json("streaming", rows)
    return rows


EXPERIMENTS = {
    "table1": run_table1,
    "multiexp": run_multiexp,
    "streaming": run_streaming,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "table2": run_table2,
    "micro": run_micro,
    "err": run_err,
    "comm": run_comm,
    "attacks": run_attacks,
    "separation": run_separation,
}
