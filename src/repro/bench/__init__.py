"""Experiment harness regenerating every table and figure of the paper.

Each ``run_*`` function returns structured rows (plain dicts) and the
formatting layer prints them paper-style.  The pytest-benchmark suite in
``benchmarks/`` wraps the same primitives; the CLI (``python -m repro``)
is the human entry point.  See DESIGN.md for the experiment index and
the checked-in BENCH_*.json files for measured-vs-paper numbers.
"""

from repro.bench.format import format_table, print_table
from repro.bench.harness import (
    RunTable,
    cell_id,
    check_baseline,
    expand,
    run_cell,
    run_table,
    summarize,
)
from repro.bench.runner import (
    run_table1,
    run_fig3,
    run_fig4,
    run_table2,
    run_micro,
    run_err,
    run_comm,
    run_attacks,
    run_separation,
    run_multiexp,
    write_bench_json,
    EXPERIMENTS,
)

__all__ = [
    "format_table",
    "print_table",
    "RunTable",
    "cell_id",
    "check_baseline",
    "expand",
    "run_cell",
    "run_table",
    "summarize",
    "run_table1",
    "run_fig3",
    "run_fig4",
    "run_table2",
    "run_micro",
    "run_err",
    "run_comm",
    "run_attacks",
    "run_separation",
    "run_multiexp",
    "write_bench_json",
    "EXPERIMENTS",
]
