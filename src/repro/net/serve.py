"""The multi-process serving demo behind ``python -m repro serve``.

Runs one full verifiable-DP session as real communicating nodes — the
analyst front-end in the calling process/thread, one
:class:`~repro.net.nodes.ServerNode` per prover and one
:class:`~repro.net.nodes.ClientRunner` for the population — over any of
the three transports:

* ``memory``      — node threads over :class:`InMemoryTransport`,
* ``multiprocess``— separate OS processes over ``multiprocessing`` pipes,
* ``socket``      — separate OS processes over localhost TCP.

With a seed, the distributed release is compared byte-for-byte against
the in-process :class:`repro.api.Session` release — the equivalence the
redesign promises (same engine, same RNG streams, different substrate).
"""

from __future__ import annotations

import asyncio
import socket
import statistics
import sys
import threading
import time
from multiprocessing import get_context

from repro.api.queries import CountQuery, HistogramQuery, Query
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ParameterError, ProtocolAbort
from repro.net.aio import (
    AsyncClientRunner,
    AsyncServerNode,
    AsyncSocketTransport,
    SessionMux,
    SessionSpec,
)
from repro.net.fleet import (
    FleetConfig,
    FleetDispatcher,
    run_fleet,
    session_seed,
    session_values,
)
from repro.net.gateway import FleetGateway
from repro.net.metrics import MetricsServer, ServingMetrics
from repro.net.nodes import AnalystNode, ClientRunner, ServerNode
from repro.net.shard import ShardWorker, ShardedAnalyst
from repro.net.transport import (
    SESSION_ANY,
    InMemoryHub,
    SocketTransport,
    multiprocess_star,
)
from repro.utils.rng import RNG, SeededRNG, SystemRNG

__all__ = [
    "run_distributed_session",
    "run_async_sessions",
    "main",
    "EXIT_PROTOCOL_ABORT",
    "EXIT_INFRA_CRASH",
]

_TRANSPORTS = ("memory", "multiprocess", "socket")

# Distinct exit codes so a supervisor (the fleet dispatcher's restart
# logic, a CI job, an init system) can tell a protocol-level rejection
# from dead infrastructure without parsing stderr.  0 = released and
# verified, 1 = released but rejected/mismatched, 2 = usage error
# (argparse's convention, shared by ParameterError), then:
EXIT_PROTOCOL_ABORT = 3  # a party broke the protocol; stderr names it
EXIT_INFRA_CRASH = 4  # sockets/processes/unexpected exceptions died


def _root_rng(seed: str | None) -> RNG:
    return SeededRNG(seed) if seed is not None else SystemRNG()


def _server_rng(seed: str | None, name: str) -> RNG:
    # Matches the in-process engine: prover k draws from root.fork(name).
    return SeededRNG(seed).fork(name) if seed is not None else SystemRNG()


# Every multiplexed session gets its own root seed (f"{seed}/s{s}") and
# a rotated population; the canonical definitions live in repro.net.fleet
# so the async and fleet drivers can never drift apart on them.
_session_seed = session_seed
_session_values = session_values


def _terminate_processes(processes) -> None:
    """Best-effort teardown of started children on a failure path."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)


def _server_main_pipes(
    transport, seed: str | None, name: str, timeout: float = 60.0
) -> None:
    ServerNode(transport, _server_rng(seed, name), timeout=timeout).run()


def _clients_main_pipes(
    transport, query: Query, values, seed: str | None, timeout: float = 60.0
) -> None:
    ClientRunner(transport, query, values, rng=_root_rng(seed), timeout=timeout).run()


def _server_main_socket(
    name: str, host: str, port: int, seed: str | None, timeout: float = 60.0
) -> None:
    transport = SocketTransport.connect(name, "analyst", host, port)
    ServerNode(transport, _server_rng(seed, name), timeout=timeout).run()


def _shard_main_pipes(transport, timeout: float = 60.0) -> None:
    ShardWorker(transport, timeout=timeout).run()


def _shard_main_socket(name: str, host: str, port: int, timeout: float = 60.0) -> None:
    transport = SocketTransport.connect(name, "analyst", host, port)
    ShardWorker(transport, timeout=timeout).run()


def _clients_main_socket(
    host: str, port: int, query: Query, values, seed: str | None, timeout: float = 60.0
) -> None:
    transport = SocketTransport.connect("clients", "analyst", host, port)
    ClientRunner(transport, query, values, rng=_root_rng(seed), timeout=timeout).run()


def run_distributed_session(
    query: Query,
    values,
    *,
    transport: str = "multiprocess",
    num_servers: int = 2,
    shards: int = 0,
    group: str = "p64-sim",
    nb_override: int | None = 64,
    chunk_size: int | None = None,
    seed: str | None = "serve",
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 120.0,
    verify_equivalence: bool | None = None,
) -> dict:
    """Run one session as separate nodes; returns a result/metrics dict.

    ``shards > 0`` serves through a :class:`ShardedAnalyst` with that
    many :class:`ShardWorker` peers (threads on the memory transport,
    processes otherwise) — verification fans out, Morra and the release
    stay single.  ``verify_equivalence`` (default: on whenever seeded)
    replays the same query through the in-process :class:`Session` with
    the same seed *and the same effective chunk size* and compares the
    wire-encoded releases byte for byte.
    """
    if transport not in _TRANSPORTS:
        raise ParameterError(f"transport must be one of {_TRANSPORTS}")
    if shards < 0:
        raise ParameterError("shards must be >= 0 (0 = unsharded front-end)")
    values = list(values)
    server_names = [f"prover-{k}" for k in range(num_servers)]
    shard_names = [f"shard-{s}" for s in range(shards)]
    if verify_equivalence is None:
        verify_equivalence = seed is not None

    start = time.perf_counter()
    if transport == "memory":
        analyst_transport, cleanup = _start_memory(
            query, values, server_names, shard_names, seed, timeout
        )
    elif transport == "multiprocess":
        analyst_transport, cleanup = _start_multiprocess(
            query, values, server_names, shard_names, seed, timeout
        )
    else:
        analyst_transport, cleanup = _start_socket(
            query, values, server_names, shard_names, seed, host, port, timeout
        )

    try:
        if shards:
            analyst = ShardedAnalyst(
                query,
                analyst_transport,
                server_names,
                shard_names,
                group=group,
                nb_override=nb_override,
                chunk_size=chunk_size,
                rng=_root_rng(seed),
                timeout=timeout,
            )
        else:
            analyst = AnalystNode(
                query,
                analyst_transport,
                server_names,
                group=group,
                nb_override=nb_override,
                chunk_size=chunk_size,
                rng=_root_rng(seed),
                timeout=timeout,
            )
        result = analyst.run()
    finally:
        # Close the analyst transport *before* joining children: after an
        # analyst-side abort the children sit blocked in recv, and with
        # the sockets/pipes still open they would hold them for the full
        # join timeout.  Closing first turns their recv into an immediate
        # ProtocolAbort, so cleanup reaps them promptly.
        analyst_transport.close()
        cleanup()
    elapsed = time.perf_counter() - start
    effective_chunk = getattr(analyst, "chunk_size", chunk_size)

    release_bytes = encode_message(result.release)
    outcome = {
        "transport": transport,
        "num_servers": num_servers,
        "shards": shards,
        "n_clients": len(values),
        "nb": analyst.params.nb,
        "group": group,
        "chunk_size": effective_chunk,
        "accepted": result.release.accepted,
        "estimate": result.release.estimate,
        "elapsed_s": elapsed,
        "frontend_bytes_sent": analyst_transport.bytes_sent,
        "frontend_bytes_received": analyst_transport.bytes_received,
        "frontend_frames": analyst_transport.frames_sent
        + analyst_transport.frames_received,
        "release_bytes": len(release_bytes),
        "release": result.release,
    }

    if verify_equivalence:
        session = Session(
            query,
            num_provers=num_servers,
            group=group,
            nb_override=nb_override,
            chunk_size=effective_chunk,
            rng=_root_rng(seed),
        )
        session.submit(values)
        in_process = session.release().release
        outcome["byte_identical"] = encode_message(in_process) == release_bytes
    return outcome


# Per-transport node launchers -------------------------------------------------


def _start_memory(query, values, server_names, shard_names, seed, timeout):
    hub = InMemoryHub()
    analyst_transport = hub.endpoint("analyst")
    threads = []
    for name in server_names:
        node = ServerNode(hub.endpoint(name), _server_rng(seed, name), timeout=timeout)
        threads.append(threading.Thread(target=node.run, name=name, daemon=True))
    for name in shard_names:
        worker = ShardWorker(hub.endpoint(name), timeout=timeout)
        threads.append(threading.Thread(target=worker.run, name=name, daemon=True))
    runner = ClientRunner(
        hub.endpoint("clients"), query, values, rng=_root_rng(seed), timeout=timeout
    )
    threads.append(threading.Thread(target=runner.run, name="clients", daemon=True))
    for thread in threads:
        thread.start()

    def cleanup():
        for thread in threads:
            thread.join(timeout=10.0)

    return analyst_transport, cleanup


def _start_multiprocess(query, values, server_names, shard_names, seed, timeout):
    context = get_context("fork")
    analyst_transport, peer_transports = multiprocess_star(
        "analyst", server_names + shard_names + ["clients"]
    )
    processes = [
        context.Process(
            target=_server_main_pipes,
            args=(peer_transports[name], seed, name, timeout),
            daemon=True,
        )
        for name in server_names
    ]
    processes += [
        context.Process(
            target=_shard_main_pipes,
            args=(peer_transports[name], timeout),
            daemon=True,
        )
        for name in shard_names
    ]
    processes.append(
        context.Process(
            target=_clients_main_pipes,
            args=(peer_transports["clients"], query, values, seed, timeout),
            daemon=True,
        )
    )
    started: list = []
    try:
        for process in processes:
            process.start()
            started.append(process)
        # The child ends of the pipes belong to the children now.
        for peer_transport in peer_transports.values():
            peer_transport.close()
    except BaseException:
        # A failed start must not leak the children already running (or
        # the analyst's pipe ends): this cleanup used to exist only in
        # the returned closure, which a raising startup never reached.
        _terminate_processes(started)
        analyst_transport.close()
        raise

    def cleanup():
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung child
                process.terminate()

    return analyst_transport, cleanup


def _start_socket(query, values, server_names, shard_names, seed, host, port, timeout):
    context = get_context("fork")
    analyst_transport = SocketTransport.listen("analyst", host, port)
    bound_port = analyst_transport.port
    processes = [
        context.Process(
            target=_server_main_socket,
            args=(name, host, bound_port, seed, timeout),
            daemon=True,
        )
        for name in server_names
    ]
    processes += [
        context.Process(
            target=_shard_main_socket,
            args=(name, host, bound_port, timeout),
            daemon=True,
        )
        for name in shard_names
    ]
    processes.append(
        context.Process(
            target=_clients_main_socket,
            args=(host, bound_port, query, values, seed, timeout),
            daemon=True,
        )
    )
    started: list = []
    try:
        for process in processes:
            process.start()
            started.append(process)
        analyst_transport.accept(
            len(processes), timeout, expected=server_names + shard_names + ["clients"]
        )
    except BaseException:
        # accept() raising (timeout, hostile handshakes, listener error)
        # used to leak every started child *and* the listening socket —
        # the cleanup closure was only returned on success.
        _terminate_processes(started)
        analyst_transport.close()
        raise

    def cleanup():
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung child
                process.terminate()

    return analyst_transport, cleanup


# Async multiplexed serving ----------------------------------------------------


def _async_server_main(
    name: str,
    host: str,
    port: int,
    seed: str | None,
    sessions: int,
    timeout: float = 60.0,
    reply_delay: float = 0.0,
) -> None:
    """Child process: one multi-session prover host over one connection."""

    async def go() -> None:
        transport = await AsyncSocketTransport.connect(name, "analyst", host, port)
        node = AsyncServerNode(
            transport,
            {
                s: _server_rng(_session_seed(seed, s), name)
                for s in range(sessions)
            },
            timeout=timeout,
            reply_delay=reply_delay,
        )
        await node.run()
        await transport.aclose()

    asyncio.run(go())


def _async_clients_main(
    host: str,
    port: int,
    query: Query,
    values,
    seed: str | None,
    sessions: int,
    timeout: float = 60.0,
) -> None:
    """Child process: one client population per session, one connection."""

    async def go() -> None:
        transport = await AsyncSocketTransport.connect("clients", "analyst", host, port)
        runner = AsyncClientRunner(
            transport,
            {
                s: (
                    query,
                    _session_values(list(values), s),
                    _root_rng(_session_seed(seed, s)),
                )
                for s in range(sessions)
            },
            timeout=timeout,
        )
        await runner.run()
        await transport.aclose()

    asyncio.run(go())


def _async_shard_main(
    name: str,
    host: str,
    port: int,
    sessions: int,
    timeout: float = 60.0,
) -> None:
    """Child process: one blocking ShardWorker thread per session, each
    over its own session-scoped connection (the worker itself is the
    unchanged single-session code — scoped channels do the routing)."""

    def one(session: int) -> None:
        try:
            transport = SocketTransport.connect(
                name, "analyst", host, port, session=session, timeout=timeout
            )
        except OSError:
            return
        try:
            ShardWorker(transport, timeout=timeout).run()
        except ParameterError:
            raise
        except Exception:  # repro: allow[REP004] -- shard worker thread: the front-end already attributed the abort; re-raising here would only crash the demo harness
            pass  # an aborted session already has attribution front-end side
        finally:
            transport.close()

    threads = [
        threading.Thread(target=one, args=(s,), daemon=True)
        for s in range(sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def run_async_sessions(
    query: Query,
    values,
    *,
    sessions: int = 2,
    num_servers: int = 2,
    shards: int = 0,
    group: str = "p64-sim",
    nb_override: int | None = 64,
    chunk_size: int | None = None,
    seed: str | None = "serve",
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 120.0,
    reply_delay: float = 0.0,
    verify_equivalence: bool | None = None,
    metrics: ServingMetrics | None = None,
) -> dict:
    """N concurrent sessions through one :class:`SessionMux` front-end.

    The topology is the socket one of :func:`run_distributed_session`,
    made async: K :class:`AsyncServerNode` processes (each hosting one
    prover per session over a single connection) and one
    :class:`AsyncClientRunner` process (one population per session, with
    session s's values rotated by s), all multiplexed by a single
    front-end process.  Session *s* runs under seed ``{seed}/s{s}``, and
    ``verify_equivalence`` (default: on whenever seeded) replays every
    session through a solo in-process :class:`Session` and compares the
    wire-encoded releases byte for byte.

    ``shards > 0`` backs *every* session with that many
    :class:`ShardWorker` peers — the ``--async --shards`` composition:
    one front-end multiplexes N sessions, each fanning verification
    across S session-scoped shard workers, with the effective chunk size
    pinned so the solo replay stays byte-identical.

    ``reply_delay`` makes every server sleep that long before each RPC
    reply — simulated remote-prover latency, the idle time the mux
    exists to overlap (benchmark knob, zero by default).
    """
    if sessions < 1:
        raise ParameterError("sessions must be >= 1")
    if shards < 0:
        raise ParameterError("shards must be >= 0 (0 = unsharded sessions)")
    values = list(values)
    server_names = [f"prover-{k}" for k in range(num_servers)]
    shard_names = tuple(f"shard-{j}" for j in range(shards))
    if verify_equivalence is None:
        verify_equivalence = seed is not None

    params = query.build_params(
        num_provers=num_servers, group=group, nb_override=nb_override
    )
    effective_chunk = chunk_size
    if shard_names and effective_chunk is None:
        # The sharded default (at least two chunks per shard), pinned
        # here so the solo-replay equivalence check runs with the same
        # chunking the ShardedAnalyst will pick.
        effective_chunk = max(1, -(-params.nb // (2 * len(shard_names))))

    # Bind the listener before forking so children know the port; the
    # asyncio server adopts this socket inside the loop.
    listener_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener_sock.bind((host, port))
    listener_sock.listen(16)
    bound_port = listener_sock.getsockname()[1]

    context = get_context("fork")
    processes = [
        context.Process(
            target=_async_server_main,
            args=(name, host, bound_port, seed, sessions, timeout, reply_delay),
            daemon=True,
        )
        for name in server_names
    ]
    processes += [
        context.Process(
            target=_async_shard_main,
            args=(name, host, bound_port, sessions, timeout),
            daemon=True,
        )
        for name in shard_names
    ]
    processes.append(
        context.Process(
            target=_async_clients_main,
            args=(host, bound_port, query, values, seed, sessions, timeout),
            daemon=True,
        )
    )
    # Servers and clients hold one SESSION_ANY connection each; every
    # shard child holds one *scoped* connection per session.
    expected_conns = num_servers + 1 + shards * sessions

    mux_box: dict = {}
    start = time.perf_counter()

    async def front_end() -> None:
        transport = await AsyncSocketTransport.listen("analyst", sock=listener_sock)
        mux_box["transport"] = transport
        try:
            # Scope-pinned expectations: the multi-session hosts may only
            # handshake at SESSION_ANY and each shard worker only at its
            # own session, so a hostile handshake claiming an expected
            # name under an unoccupied scope (to hijack that session's
            # routing) is dropped.  Lockdown afterwards — the topology is
            # complete, late connections are not.
            await transport.accept(
                expected_conns,
                timeout,
                expected=[
                    (name, SESSION_ANY) for name in server_names + ["clients"]
                ]
                + [(name, s) for name in shard_names for s in range(sessions)],
            )
            transport.lockdown()
            specs = [
                SessionSpec(
                    query,
                    rng=_root_rng(_session_seed(seed, s)),
                    group=group,
                    nb_override=nb_override,
                    chunk_size=effective_chunk,
                    shards=shard_names,
                )
                for s in range(sessions)
            ]
            mux = SessionMux(
                specs, transport, server_names, timeout=timeout, metrics=metrics
            )
            mux_box["mux"] = mux
            await mux.run()
        finally:
            # Unblock children before they are joined (same lifecycle rule
            # as the sync path's cleanup ordering).
            await transport.aclose()

    started: list = []
    try:
        for process in processes:
            process.start()
            started.append(process)
        asyncio.run(front_end())
    except BaseException:
        _terminate_processes(started)
        listener_sock.close()
        raise
    finally:
        for process in started:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung child
                process.terminate()
    elapsed = time.perf_counter() - start

    mux = mux_box["mux"]
    transport = mux_box["transport"]
    for _, error in sorted(mux.errors.items()):
        if error is not None:
            raise error
    session_rows = []
    for s, result in sorted(mux.results.items()):
        release_bytes = encode_message(result.release)
        row = {
            "session": s,
            "accepted": result.release.accepted,
            "estimate": result.release.estimate,
            "elapsed_s": mux.session_seconds[s],
            "release_bytes": len(release_bytes),
        }
        if verify_equivalence:
            solo = Session(
                query,
                num_provers=num_servers,
                group=group,
                nb_override=nb_override,
                chunk_size=effective_chunk,
                rng=_root_rng(_session_seed(seed, s)),
            )
            solo.submit(_session_values(values, s))
            row["byte_identical"] = (
                encode_message(solo.release().release) == release_bytes
            )
        session_rows.append(row)

    outcome = {
        "transport": "async-socket",
        "sessions": sessions,
        "num_servers": num_servers,
        "shards": shards,
        "n_clients": len(values),
        "nb": params.nb,
        "group": group,
        "chunk_size": effective_chunk,
        "reply_delay_s": reply_delay,
        "elapsed_s": elapsed,
        "sessions_per_sec": sessions / elapsed if elapsed else float("inf"),
        "p50_session_s": statistics.median(mux.session_seconds.values()),
        "accepted": all(row["accepted"] for row in session_rows),
        "frontend_bytes_sent": transport.bytes_sent,
        "frontend_bytes_received": transport.bytes_received,
        "frontend_frames": transport.frames_sent + transport.frames_received,
        "session_rows": session_rows,
    }
    if verify_equivalence:
        outcome["byte_identical"] = all(
            row["byte_identical"] for row in session_rows
        )
    return outcome


# CLI entry --------------------------------------------------------------------


def main(args) -> int:
    """Drive the demo from parsed CLI arguments (see ``repro.cli``).

    Exit codes are a supervisor contract shared by every serving mode:
    0 released+verified, 1 rejected or byte-mismatched, 2 bad usage,
    :data:`EXIT_PROTOCOL_ABORT` for an attributed protocol abort,
    :data:`EXIT_INFRA_CRASH` for dead infrastructure — the attributed
    party (or the failing layer) lands on stderr either way.
    """
    try:
        return _dispatch(args)
    except ProtocolAbort as exc:
        party = exc.party if exc.party is not None else "unattributed"
        print(f"protocol abort (party: {party}): {exc}", file=sys.stderr)
        return EXIT_PROTOCOL_ABORT
    except ParameterError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # repro: allow[REP004] -- top-level supervisor boundary: unexpected failures map to EXIT_INFRA_CRASH with the type on stderr
        print(f"infrastructure crash: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INFRA_CRASH


def _dispatch(args) -> int:
    if args.bins > 1:
        query: Query = HistogramQuery(bins=args.bins, epsilon=1.0, delta=2**-10)
        values = [i % args.bins for i in range(args.clients)]
    else:
        query = CountQuery(epsilon=1.0, delta=2**-10)
        values = [i % 2 for i in range(args.clients)]
    if getattr(args, "fleet", False):
        return _main_fleet(args, query, values)
    if getattr(args, "use_async", False):
        return _main_async(args, query, values)
    outcome = run_distributed_session(
        query,
        values,
        transport=args.transport,
        num_servers=args.servers,
        shards=args.shards,
        group=args.group,
        nb_override=args.nb,
        chunk_size=args.chunk,
        seed=args.seed,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
    )
    sharded = f", S={outcome['shards']} shards" if outcome["shards"] else ""
    print(
        f"== distributed session ({outcome['transport']}, "
        f"K={outcome['num_servers']}{sharded}, n={outcome['n_clients']}, "
        f"nb={outcome['nb']}, {outcome['group']}) =="
    )
    print(f"accepted:          {outcome['accepted']}")
    print(f"estimate:          {tuple(round(v, 2) for v in outcome['estimate'])}")
    print(f"elapsed:           {outcome['elapsed_s']:.2f}s")
    print(
        "front-end traffic: "
        f"{outcome['frontend_bytes_sent']} B out, "
        f"{outcome['frontend_bytes_received']} B in, "
        f"{outcome['frontend_frames']} frames"
    )
    print(f"release frame:     {outcome['release_bytes']} B")
    if "byte_identical" in outcome:
        print(f"byte-identical to in-process Session: {outcome['byte_identical']}")
        if not outcome["byte_identical"]:
            return 1
    return 0 if outcome["accepted"] else 1


def _start_metrics(args):
    """Optional /metrics endpoint for a serving run (``--metrics-port``).

    Returns ``(metrics, server)`` — both ``None`` without the flag.
    Port 0 binds an ephemeral port; the bound port is announced on
    stdout either way so scrapers can find it.
    """
    if getattr(args, "metrics_port", None) is None:
        return None, None
    metrics = ServingMetrics()
    server = MetricsServer(metrics.registry, host=args.host, port=args.metrics_port)
    print(f"metrics: http://{args.host}:{server.port}/metrics", flush=True)
    return metrics, server


def _main_async(args, query: Query, values) -> int:
    metrics, metrics_server = _start_metrics(args)
    try:
        outcome = run_async_sessions(
            query,
            values,
            sessions=args.sessions,
            num_servers=args.servers,
            shards=args.shards,
            group=args.group,
            nb_override=args.nb,
            chunk_size=args.chunk,
            seed=args.seed,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
            metrics=metrics,
        )
    finally:
        if metrics_server is not None:
            metrics_server.close()
    sharded = f", S={outcome['shards']} shards/session" if outcome["shards"] else ""
    print(
        f"== async multiplexed serving (N={outcome['sessions']} sessions, "
        f"K={outcome['num_servers']}{sharded}, "
        f"n={outcome['n_clients']} clients/session, "
        f"nb={outcome['nb']}, {outcome['group']}) =="
    )
    for row in outcome["session_rows"]:
        estimate = tuple(round(v, 2) for v in row["estimate"])
        line = (
            f"session {row['session']}: accepted={row['accepted']} "
            f"estimate={estimate} elapsed={row['elapsed_s']:.2f}s"
        )
        if "byte_identical" in row:
            line += f" byte_identical={row['byte_identical']}"
        print(line)
    print(f"wall time:         {outcome['elapsed_s']:.2f}s")
    print(f"aggregate:         {outcome['sessions_per_sec']:.2f} sessions/s")
    print(f"p50 session:       {outcome['p50_session_s']:.2f}s")
    print(
        "front-end traffic: "
        f"{outcome['frontend_bytes_sent']} B out, "
        f"{outcome['frontend_bytes_received']} B in, "
        f"{outcome['frontend_frames']} frames"
    )
    if "byte_identical" in outcome:
        print(
            "byte-identical to solo in-process Sessions: "
            f"{outcome['byte_identical']}"
        )
        if not outcome["byte_identical"]:
            return 1
    return 0 if outcome["accepted"] else 1


def _main_fleet(args, query: Query, values) -> int:
    if getattr(args, "fleet_config", None):
        config = FleetConfig.from_file(args.fleet_config)
    else:
        config = FleetConfig(
            frontends=args.frontends,
            capacity=args.capacity,
            shards=args.shards,
            num_servers=args.servers,
            group=args.group,
            nb_override=args.nb,
            chunk_size=args.chunk,
            host=args.host,
            timeout=args.timeout,
        )
    if getattr(args, "listen", None) is not None:
        return _main_fleet_gateway(args, query, config)
    metrics, metrics_server = _start_metrics(args)
    try:
        outcome = run_fleet(
            query,
            values,
            sessions=args.sessions,
            config=config,
            seed=args.seed,
            metrics=metrics,
        )
    finally:
        if metrics_server is not None:
            metrics_server.close()
    sharded = f", S={outcome['shards']} shards/session" if outcome["shards"] else ""
    print(
        f"== fleet serving (F={outcome['frontends']} front-ends x "
        f"capacity {outcome['capacity']}{sharded}, "
        f"K={outcome['num_servers']}, N={outcome['sessions']} sessions, "
        f"n={outcome['n_clients']} clients/session, "
        f"nb={outcome['nb']}, {outcome['group']}) =="
    )
    for row in outcome["session_rows"]:
        if row["status"] == "released":
            estimate = tuple(round(v, 2) for v in row["estimate"])
            line = (
                f"session {row['session']} [{row['frontend']}]: released "
                f"accepted={row['accepted']} estimate={estimate} "
                f"elapsed={row['elapsed_s']:.2f}s"
            )
            if "byte_identical" in row:
                line += f" byte_identical={row['byte_identical']}"
        else:
            line = (
                f"session {row['session']} [{row['frontend']}]: "
                f"{row['status']} ({row.get('reason')})"
            )
        print(line)
    print(f"wall time:         {outcome['elapsed_s']:.2f}s")
    print(f"aggregate:         {outcome['sessions_per_sec']:.2f} sessions/s")
    print(
        f"fleet health:      released={outcome['released']} "
        f"aborted={outcome['aborted']} crashed={outcome['crashed']} "
        f"restarts={sum(outcome['restarts'].values())} "
        f"stolen={outcome['stolen']}"
    )
    print(f"front-ends used:   {', '.join(outcome['frontends_used']) or 'none'}")
    if "byte_identical" in outcome:
        print(
            "byte-identical to solo in-process Sessions: "
            f"{outcome['byte_identical']}"
        )
        if not outcome["byte_identical"]:
            return 1
    if outcome["released"] < outcome["sessions"]:
        return 1
    return 0 if outcome["accepted"] else 1


def _main_fleet_gateway(args, query: Query, config: FleetConfig) -> int:
    """``repro serve --fleet --listen PORT``: serve an open-ended session
    stream admitted over TCP (the ``repro loadgen`` target) instead of a
    fixed batch.  Runs until ``--serve-seconds`` elapses (or forever,
    Ctrl-C to stop), then drains: everything admitted finishes, nothing
    new is let in."""
    metrics, metrics_server = _start_metrics(args)
    dispatcher = FleetDispatcher(config, metrics=metrics)
    dispatcher.start()
    gateway = None
    try:
        gateway = FleetGateway(
            dispatcher,
            query,
            host=args.host,
            port=args.listen,
            timeout=config.timeout,
        )
        print(
            f"fleet gateway: {args.host}:{gateway.port} "
            f"(F={config.frontends} x capacity {config.capacity}, "
            f"K={config.num_servers}, nb={config.nb_override}, "
            f"{config.group})",
            flush=True,
        )
        serve_seconds = getattr(args, "serve_seconds", None)
        try:
            if serve_seconds is not None:
                time.sleep(serve_seconds)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        admitted = gateway.admitted
        gateway.close()
        gateway = None
        drained = dispatcher.drain(timeout=config.timeout)
    finally:
        if gateway is not None:
            gateway.close()
        dispatcher.stop()
        if metrics_server is not None:
            metrics_server.close()
    statuses: dict[str, int] = {}
    for outcome in dispatcher.outcomes.values():
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
    print(
        f"gateway summary: admitted={admitted} "
        f"released={statuses.get('released', 0)} "
        f"aborted={statuses.get('aborted', 0)} "
        f"crashed={statuses.get('crashed', 0)} "
        f"drained={drained}"
    )
    return 0 if drained else EXIT_INFRA_CRASH
