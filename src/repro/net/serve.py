"""The multi-process serving demo behind ``python -m repro serve``.

Runs one full verifiable-DP session as real communicating nodes — the
analyst front-end in the calling process/thread, one
:class:`~repro.net.nodes.ServerNode` per prover and one
:class:`~repro.net.nodes.ClientRunner` for the population — over any of
the three transports:

* ``memory``      — node threads over :class:`InMemoryTransport`,
* ``multiprocess``— separate OS processes over ``multiprocessing`` pipes,
* ``socket``      — separate OS processes over localhost TCP.

With a seed, the distributed release is compared byte-for-byte against
the in-process :class:`repro.api.Session` release — the equivalence the
redesign promises (same engine, same RNG streams, different substrate).
"""

from __future__ import annotations

import threading
import time
from multiprocessing import get_context

from repro.api.queries import CountQuery, HistogramQuery, Query
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ParameterError
from repro.net.nodes import AnalystNode, ClientRunner, ServerNode
from repro.net.shard import ShardWorker, ShardedAnalyst
from repro.net.transport import InMemoryHub, SocketTransport, multiprocess_star
from repro.utils.rng import RNG, SeededRNG, SystemRNG

__all__ = ["run_distributed_session", "main"]

_TRANSPORTS = ("memory", "multiprocess", "socket")


def _root_rng(seed: str | None) -> RNG:
    return SeededRNG(seed) if seed is not None else SystemRNG()


def _server_rng(seed: str | None, name: str) -> RNG:
    # Matches the in-process engine: prover k draws from root.fork(name).
    return SeededRNG(seed).fork(name) if seed is not None else SystemRNG()


def _server_main_pipes(
    transport, seed: str | None, name: str, timeout: float = 60.0
) -> None:
    ServerNode(transport, _server_rng(seed, name), timeout=timeout).run()


def _clients_main_pipes(
    transport, query: Query, values, seed: str | None, timeout: float = 60.0
) -> None:
    ClientRunner(transport, query, values, rng=_root_rng(seed), timeout=timeout).run()


def _server_main_socket(
    name: str, host: str, port: int, seed: str | None, timeout: float = 60.0
) -> None:
    transport = SocketTransport.connect(name, "analyst", host, port)
    ServerNode(transport, _server_rng(seed, name), timeout=timeout).run()


def _shard_main_pipes(transport, timeout: float = 60.0) -> None:
    ShardWorker(transport, timeout=timeout).run()


def _shard_main_socket(name: str, host: str, port: int, timeout: float = 60.0) -> None:
    transport = SocketTransport.connect(name, "analyst", host, port)
    ShardWorker(transport, timeout=timeout).run()


def _clients_main_socket(
    host: str, port: int, query: Query, values, seed: str | None, timeout: float = 60.0
) -> None:
    transport = SocketTransport.connect("clients", "analyst", host, port)
    ClientRunner(transport, query, values, rng=_root_rng(seed), timeout=timeout).run()


def run_distributed_session(
    query: Query,
    values,
    *,
    transport: str = "multiprocess",
    num_servers: int = 2,
    shards: int = 0,
    group: str = "p64-sim",
    nb_override: int | None = 64,
    chunk_size: int | None = None,
    seed: str | None = "serve",
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 120.0,
    verify_equivalence: bool | None = None,
) -> dict:
    """Run one session as separate nodes; returns a result/metrics dict.

    ``shards > 0`` serves through a :class:`ShardedAnalyst` with that
    many :class:`ShardWorker` peers (threads on the memory transport,
    processes otherwise) — verification fans out, Morra and the release
    stay single.  ``verify_equivalence`` (default: on whenever seeded)
    replays the same query through the in-process :class:`Session` with
    the same seed *and the same effective chunk size* and compares the
    wire-encoded releases byte for byte.
    """
    if transport not in _TRANSPORTS:
        raise ParameterError(f"transport must be one of {_TRANSPORTS}")
    if shards < 0:
        raise ParameterError("shards must be >= 0 (0 = unsharded front-end)")
    values = list(values)
    server_names = [f"prover-{k}" for k in range(num_servers)]
    shard_names = [f"shard-{s}" for s in range(shards)]
    if verify_equivalence is None:
        verify_equivalence = seed is not None

    start = time.perf_counter()
    if transport == "memory":
        analyst_transport, cleanup = _start_memory(
            query, values, server_names, shard_names, seed, timeout
        )
    elif transport == "multiprocess":
        analyst_transport, cleanup = _start_multiprocess(
            query, values, server_names, shard_names, seed, timeout
        )
    else:
        analyst_transport, cleanup = _start_socket(
            query, values, server_names, shard_names, seed, host, port, timeout
        )

    try:
        if shards:
            analyst = ShardedAnalyst(
                query,
                analyst_transport,
                server_names,
                shard_names,
                group=group,
                nb_override=nb_override,
                chunk_size=chunk_size,
                rng=_root_rng(seed),
                timeout=timeout,
            )
        else:
            analyst = AnalystNode(
                query,
                analyst_transport,
                server_names,
                group=group,
                nb_override=nb_override,
                chunk_size=chunk_size,
                rng=_root_rng(seed),
                timeout=timeout,
            )
        result = analyst.run()
    finally:
        cleanup()
        analyst_transport.close()
    elapsed = time.perf_counter() - start
    effective_chunk = getattr(analyst, "chunk_size", chunk_size)

    release_bytes = encode_message(result.release)
    outcome = {
        "transport": transport,
        "num_servers": num_servers,
        "shards": shards,
        "n_clients": len(values),
        "nb": analyst.params.nb,
        "group": group,
        "chunk_size": effective_chunk,
        "accepted": result.release.accepted,
        "estimate": result.release.estimate,
        "elapsed_s": elapsed,
        "frontend_bytes_sent": analyst_transport.bytes_sent,
        "frontend_bytes_received": analyst_transport.bytes_received,
        "frontend_frames": analyst_transport.frames_sent
        + analyst_transport.frames_received,
        "release_bytes": len(release_bytes),
        "release": result.release,
    }

    if verify_equivalence:
        session = Session(
            query,
            num_provers=num_servers,
            group=group,
            nb_override=nb_override,
            chunk_size=effective_chunk,
            rng=_root_rng(seed),
        )
        session.submit(values)
        in_process = session.release().release
        outcome["byte_identical"] = encode_message(in_process) == release_bytes
    return outcome


# Per-transport node launchers -------------------------------------------------


def _start_memory(query, values, server_names, shard_names, seed, timeout):
    hub = InMemoryHub()
    analyst_transport = hub.endpoint("analyst")
    threads = []
    for name in server_names:
        node = ServerNode(hub.endpoint(name), _server_rng(seed, name), timeout=timeout)
        threads.append(threading.Thread(target=node.run, name=name, daemon=True))
    for name in shard_names:
        worker = ShardWorker(hub.endpoint(name), timeout=timeout)
        threads.append(threading.Thread(target=worker.run, name=name, daemon=True))
    runner = ClientRunner(
        hub.endpoint("clients"), query, values, rng=_root_rng(seed), timeout=timeout
    )
    threads.append(threading.Thread(target=runner.run, name="clients", daemon=True))
    for thread in threads:
        thread.start()

    def cleanup():
        for thread in threads:
            thread.join(timeout=10.0)

    return analyst_transport, cleanup


def _start_multiprocess(query, values, server_names, shard_names, seed, timeout):
    context = get_context("fork")
    analyst_transport, peer_transports = multiprocess_star(
        "analyst", server_names + shard_names + ["clients"]
    )
    processes = [
        context.Process(
            target=_server_main_pipes,
            args=(peer_transports[name], seed, name, timeout),
            daemon=True,
        )
        for name in server_names
    ]
    processes += [
        context.Process(
            target=_shard_main_pipes,
            args=(peer_transports[name], timeout),
            daemon=True,
        )
        for name in shard_names
    ]
    processes.append(
        context.Process(
            target=_clients_main_pipes,
            args=(peer_transports["clients"], query, values, seed, timeout),
            daemon=True,
        )
    )
    for process in processes:
        process.start()
    # The child ends of the pipes belong to the children now.
    for peer_transport in peer_transports.values():
        peer_transport.close()

    def cleanup():
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung child
                process.terminate()

    return analyst_transport, cleanup


def _start_socket(query, values, server_names, shard_names, seed, host, port, timeout):
    context = get_context("fork")
    analyst_transport = SocketTransport.listen("analyst", host, port)
    bound_port = analyst_transport.port
    processes = [
        context.Process(
            target=_server_main_socket,
            args=(name, host, bound_port, seed, timeout),
            daemon=True,
        )
        for name in server_names
    ]
    processes += [
        context.Process(
            target=_shard_main_socket,
            args=(name, host, bound_port, timeout),
            daemon=True,
        )
        for name in shard_names
    ]
    processes.append(
        context.Process(
            target=_clients_main_socket,
            args=(host, bound_port, query, values, seed, timeout),
            daemon=True,
        )
    )
    for process in processes:
        process.start()
    analyst_transport.accept(
        len(processes), timeout, expected=server_names + shard_names + ["clients"]
    )

    def cleanup():
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung child
                process.terminate()

    return analyst_transport, cleanup


# CLI entry --------------------------------------------------------------------


def main(args) -> int:
    """Drive the demo from parsed CLI arguments (see ``repro.cli``)."""
    if args.bins > 1:
        query: Query = HistogramQuery(bins=args.bins, epsilon=1.0, delta=2**-10)
        values = [i % args.bins for i in range(args.clients)]
    else:
        query = CountQuery(epsilon=1.0, delta=2**-10)
        values = [i % 2 for i in range(args.clients)]
    outcome = run_distributed_session(
        query,
        values,
        transport=args.transport,
        num_servers=args.servers,
        shards=args.shards,
        group=args.group,
        nb_override=args.nb,
        chunk_size=args.chunk,
        seed=args.seed,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
    )
    sharded = f", S={outcome['shards']} shards" if outcome["shards"] else ""
    print(
        f"== distributed session ({outcome['transport']}, "
        f"K={outcome['num_servers']}{sharded}, n={outcome['n_clients']}, "
        f"nb={outcome['nb']}, {outcome['group']}) =="
    )
    print(f"accepted:          {outcome['accepted']}")
    print(f"estimate:          {tuple(round(v, 2) for v in outcome['estimate'])}")
    print(f"elapsed:           {outcome['elapsed_s']:.2f}s")
    print(
        "front-end traffic: "
        f"{outcome['frontend_bytes_sent']} B out, "
        f"{outcome['frontend_bytes_received']} B in, "
        f"{outcome['frontend_frames']} frames"
    )
    print(f"release frame:     {outcome['release_bytes']} B")
    if "byte_identical" in outcome:
        print(f"byte-identical to in-process Session: {outcome['byte_identical']}")
        if not outcome["byte_identical"]:
            return 1
    return 0 if outcome["accepted"] else 1
