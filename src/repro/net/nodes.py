"""Role nodes: ΠBin's parties as processes behind a :class:`Transport`.

The design keeps :class:`repro.api.engine.ProtocolEngine` *unchanged*:
the analyst front-end constructs the engine exactly as an in-process
:class:`repro.api.Session` would, but hands it :class:`RemoteProver`
proxies whose prover-facing methods are RPCs to a :class:`ServerNode`
hosting the real :class:`repro.core.prover.Prover`.  Because the engine
drives proxies through the same call sequence, a distributed run under
seeded RNG produces a release *byte-identical* to the in-process path
(the equivalence tests in ``tests/net`` assert exactly this).

Topology: a star around the analyst.  Clients send wire-encoded
enrollment bundles (public broadcast + K private share messages) to the
front-end, which feeds ``engine.submit_prepared`` and forwards each
private share to its server inside the share-check RPC.  In a hardened
deployment the share channel would run client→server directly (the
front-end is the analyst, who must not learn openings); the routing here
reproduces the simulator's trust model, not a production key layout —
see DESIGN.md.

Morra runs through the same proxies: the server samples and commits on
its own randomness tape (preserving per-party RNG streams), the analyst
verifier co-samples, and :func:`repro.mpc.morra.run_morra_batch` checks
every opening as usual.  A server's contributions never cross the wire
before the reveal round — the sample RPC reports only a count, so even
a malicious front-end cannot see the values it must commit against.
"""

from __future__ import annotations

import time

from repro.api.engine import EngineResult, fork_rng
from repro.api.queries import ComposedQuery, Query
from repro.api.session import build_engine
from repro.core.messages import (
    ClientBroadcast,
    ClientShareMessage,
    CoinCommitmentMessage,
    ProverOutputMessage,
    Release,
)
from repro.core.params import PublicParams
from repro.core.plan import AggregationPlan
from repro.core.prover import Prover
from repro.crypto.serialization import (
    decode_message,
    encode_message,
    encode_message_cached,
)
from repro.errors import (
    EncodingError,
    NotOnGroupError,
    ParameterError,
    ProtocolAbort,
    ReproError,
)
from repro.mpc.commit import HashCommitment, HashCommitmentScheme
from repro.mpc.morra import MorraParticipant
from repro.net import wire
from repro.net.transport import Transport
from repro.utils.encoding import bytes_to_int, int_to_bytes
from repro.utils.rng import RNG, SystemRNG

__all__ = [
    "RemoteProver",
    "ServerNode",
    "AnalystNode",
    "ClientRunner",
    "shutdown_peers",
    "abort_peers",
]

_ANALYST = "analyst"
_CLIENTS = "clients"

# Teardown is post-release housekeeping: a dead peer must not stall it
# for the full protocol timeout, let alone timeout × remaining peers.
_SHUTDOWN_GRACE = 5.0


def shutdown_peers(transport, peers, timeout, audit=None, *, grace=_SHUTDOWN_GRACE):
    """Shut peers down concurrently: send every shutdown control first,
    then collect the acks under one shared grace deadline.

    The serial predecessor paid a full ``timeout`` recv per dead peer —
    one crashed server stalled teardown by timeout × remaining peers —
    and its bare ``except ReproError: pass`` discarded *which* peer was
    dead.  Here the total wait is bounded by ``min(grace, timeout)``
    (acks from healthy peers are already queued by the time their recv
    runs, so the deadline is shared, not per-peer), and every
    unresponsive peer is named in the audit notes.  Returns the
    unresponsive peer names.

    Callers run this *before* publishing the release, so the note lands
    in the bytes that ship (never a post-publication mutation of the
    audit record).  Deliberate consequence: a peer dying at teardown
    makes the published release differ from a solo seeded run by exactly
    this note — the byte-identity gate flags the degraded deployment
    instead of silently passing it.
    """
    if timeout is not None:
        grace = min(grace, timeout)
    unresponsive: list[str] = []
    pending: list[str] = []
    for name in peers:
        try:
            transport.send(name, wire.encode_control("shutdown"))
            pending.append(name)
        except ReproError:
            unresponsive.append(name)
    deadline = time.monotonic() + grace
    for name in pending:
        # The floor drains acks that are already queued even once a dead
        # peer has exhausted the shared deadline.
        remaining = max(deadline - time.monotonic(), 0.05)
        try:
            transport.recv(name, remaining)
        except ReproError:
            unresponsive.append(name)
    if unresponsive and audit is not None:
        audit.note("unresponsive at shutdown: " + ", ".join(unresponsive))
    return unresponsive


def abort_peers(transport, peers, reason, *, clients_peer=None):
    """Tell every peer of a dead session to stop waiting, best-effort.

    ``shutdown`` is the *healthy* teardown: request/ack, run after a
    release.  A session that dies mid-phase (protocol abort, front-end
    drain-kill) has no release and may have peers blocked in recv for
    the full protocol timeout — this one-way ``abort`` control turns
    that silent hang into a prompt, attributed exit: servers and shard
    workers return, the client runner raises a :class:`ProtocolAbort`
    naming the front-end.  Send failures are swallowed: an already-dead
    peer is exactly who this is for.
    """
    frame = wire.encode_control("abort", reason.encode())
    targets = list(peers) + ([clients_peer] if clients_peer is not None else [])
    for name in targets:
        try:
            transport.send(name, frame)
        except (ReproError, OSError):
            pass


class RemoteProver(MorraParticipant):
    """Engine-facing proxy for a prover living behind a transport.

    Implements every method :class:`~repro.api.engine.ProtocolEngine`
    (and :func:`~repro.mpc.morra.run_morra_batch`) calls on a prover by
    round-tripping wire frames to the :class:`ServerNode` of the same
    name.  Holds no secrets and no randomness of its own.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        params: PublicParams,
        *,
        timeout: float | None = 60.0,
    ) -> None:
        super().__init__(name, SystemRNG())
        self.transport = transport
        self.params = params
        self.timeout = timeout

    # RPC plumbing -----------------------------------------------------------

    def _call(self, method: str, *parts: bytes) -> list[bytes]:
        self.transport.send(self.name, wire.encode_rpc(method, *parts))
        frame = self.transport.recv(self.name, self.timeout)
        try:
            ok, reply = wire.decode_reply(frame)
        except EncodingError as exc:
            # A garbage reply is the server's fault: abort with the
            # server named so the engine records it, never a raw
            # EncodingError crashing the front-end.
            raise ProtocolAbort(
                f"undecodable reply from server: {exc}", party=self.name
            ) from exc
        if not ok:
            reason = reply[0].decode() if reply else "remote prover aborted"
            raise ProtocolAbort(reason, party=self.name)
        return reply

    # Client phase -----------------------------------------------------------

    def receive_client_share(
        self,
        broadcast: ClientBroadcast,
        message: ClientShareMessage,
        prover_index: int,
    ) -> bool:
        # The same broadcast goes into every prover's share-check RPC —
        # the cached encoder makes that one encoding, not K.
        reply = self._call(
            "share-check",
            encode_message_cached(broadcast),
            encode_message(message),
            int_to_bytes(prover_index),
        )
        return bool(reply) and reply[0] == b"\x01"

    def absorb_validated_clients(self, valid_ids, *, discard=()) -> None:
        self._call(
            "absorb-clients",
            wire.encode_str_list(valid_ids),
            wire.encode_str_list(discard),
        )

    # Coin phase -------------------------------------------------------------

    def commit_coins(self, context: bytes) -> CoinCommitmentMessage:
        return self._coin_message(self._call("commit-coins", context))

    def begin_coin_stream(self, context: bytes) -> None:
        self._call("begin-coin-stream", context)

    def commit_coin_chunk(self, count: int) -> CoinCommitmentMessage:
        return self._coin_message(self._call("commit-coin-chunk", int_to_bytes(count)))

    def absorb_public_bits(self, public_bits) -> None:
        self._call("absorb-bits", wire.encode_bit_matrix(public_bits))

    def _coin_message(self, reply: list[bytes]) -> CoinCommitmentMessage:
        message = self._decoded(reply, CoinCommitmentMessage)
        if message.prover_id != self.name:
            raise ProtocolAbort(
                f"server answered for {message.prover_id!r}", party=self.name
            )
        return message

    # Output phase -----------------------------------------------------------

    def compute_output(self, valid_ids, public_bits) -> ProverOutputMessage:
        reply = self._call(
            "compute-output",
            wire.encode_str_list(valid_ids),
            wire.encode_bit_matrix(public_bits),
        )
        return self._decoded(reply, ProverOutputMessage)

    def finish_output(self) -> ProverOutputMessage:
        return self._decoded(self._call("finish-output"), ProverOutputMessage)

    def _decoded(self, reply: list[bytes], expected_type):
        if not reply:
            raise ProtocolAbort("empty reply from server", party=self.name)
        try:
            message = decode_message(self.params.group, reply[0])
        except (EncodingError, ValueError) as exc:  # incl. NotOnGroupError
            raise ProtocolAbort(
                f"undecodable message from server: {exc}", party=self.name
            ) from exc
        if not isinstance(message, expected_type):
            raise ProtocolAbort(
                f"expected {expected_type.__name__} from server", party=self.name
            )
        return message

    # Morra (Algorithm 1), proxied --------------------------------------------

    def sample_values(self, q: int, count: int) -> list[int]:
        """Ask the server to sample; its contributions stay on the server.

        The reply carries only a count — returning the actual values
        would hand the analyst every server's secret contribution before
        the commit round, voiding Morra's hiding.  Placeholder zeros are
        enough for :func:`~repro.mpc.morra.run_morra_batch`, which only
        length-checks this list and combines the values from the
        commitment-verified reveal round.
        """
        reply = self._call("morra-sample", int_to_bytes(q), int_to_bytes(count))
        if not reply or bytes_to_int(reply[0]) != count:
            raise ProtocolAbort("morra sample count mismatch", party=self.name)
        return [0] * count

    def commitments(self, scheme: HashCommitmentScheme, values):
        reply = self._call("morra-commit", scheme.domain)
        if not reply:
            raise ProtocolAbort("malformed morra commit from server", party=self.name)
        try:
            digests = wire.decode_bytes_list(reply[0])
        except EncodingError as exc:
            raise ProtocolAbort(
                f"malformed morra commit from server: {exc}", party=self.name
            ) from exc
        commitments = [HashCommitment(d) for d in digests]
        if len(commitments) != len(values):
            raise ProtocolAbort("morra commit count mismatch", party=self.name)
        # The opening randomness stays on the server until reveal.
        return commitments, [b""] * len(commitments)

    def reveal(self, values, randomness, observed):
        reply = self._call("morra-reveal")
        if len(reply) != 2:
            raise ProtocolAbort("malformed morra reveal from server", party=self.name)
        try:
            opened_values = wire.decode_int_list(reply[0])
            opened_randomness = wire.decode_bytes_list(reply[1])
        except EncodingError as exc:
            raise ProtocolAbort(
                f"malformed morra reveal from server: {exc}", party=self.name
            ) from exc
        return opened_values, opened_randomness


class ServerNode:
    """One prover (curator) process: hosts a real Prover behind RPCs.

    Receives a setup frame (public parameters + aggregation plan), builds
    its :class:`~repro.core.prover.Prover` on its own randomness tape,
    then serves analyst RPCs until a shutdown control frame arrives.

    ``prover_factory(name, params, rng, plan)`` lets tests substitute the
    cheating prover subclasses — the verifier must catch them over the
    wire exactly as it does in process.
    """

    def __init__(
        self,
        transport: Transport,
        rng: RNG | None = None,
        *,
        analyst: str = _ANALYST,
        prover_factory=None,
        timeout: float | None = 60.0,
        reply_delay: float = 0.0,
    ) -> None:
        self.transport = transport
        self.rng = rng if rng is not None else SystemRNG()
        self.analyst = analyst
        self.prover_factory = prover_factory if prover_factory is not None else Prover
        self.timeout = timeout
        # Benchmark knob: sleep before every RPC reply, modelling a
        # remote prover's network/compute latency (the idle time an async
        # front-end overlaps across sessions).  Zero in production.
        self.reply_delay = reply_delay
        self.prover: Prover | None = None
        self._morra_values: list[int] = []
        self._morra_randomness: list[bytes] = []

    def run(self) -> None:
        """Serve one session: setup, RPC loop, shutdown."""
        self._setup()
        try:
            while True:
                frame = self.transport.recv(self.analyst, self.timeout)
                try:
                    kind = wire.frame_kind(frame)
                except EncodingError as exc:
                    self.transport.send(
                        self.analyst, wire.encode_abort_reply(str(exc))
                    )
                    continue
                if kind == "ctrl":
                    ctrl, _ = wire.decode_control(frame)
                    if ctrl == "shutdown":
                        self.transport.send(self.analyst, wire.encode_reply())
                        return
                    if ctrl == "abort":
                        # One-way: the session died on the front-end; no
                        # reply is expected, just a prompt exit.
                        return
                    self.transport.send(
                        self.analyst,
                        wire.encode_abort_reply(f"unexpected control {ctrl!r}"),
                    )
                    continue
                try:
                    method, parts = wire.decode_rpc(frame)
                    reply = self._dispatch(method, parts)
                except (ReproError, ValueError, IndexError, KeyError) as exc:
                    # Malformed or short frames get an abort reply, never a
                    # dead server: the analyst attributes and moves on.
                    reply = wire.encode_abort_reply(f"{type(exc).__name__}: {exc}")
                if self.reply_delay:
                    time.sleep(self.reply_delay)
                self.transport.send(self.analyst, reply)
        finally:
            self.transport.close()

    def _setup(self) -> None:
        frame = self.transport.recv(self.analyst, self.timeout)
        ctrl, parts = wire.decode_control(frame)
        if ctrl != "setup" or len(parts) != 3:
            raise ProtocolAbort("expected a setup frame", party=self.analyst)
        params = wire.decode_params(parts[0])
        plan = wire.decode_plan(parts[1])
        name = parts[2].decode()
        self.prover = self.prover_factory(name, params, self.rng, plan=plan)
        self.transport.send(self.analyst, wire.encode_reply())

    # RPC dispatch -----------------------------------------------------------

    def _dispatch(self, method: str, parts: list[bytes]) -> bytes:
        prover = self.prover
        group = prover.params.group
        if method == "share-check":
            broadcast = decode_message(group, parts[0])
            share = decode_message(group, parts[1])
            ok = prover.receive_client_share(broadcast, share, bytes_to_int(parts[2]))
            return wire.encode_reply(b"\x01" if ok else b"\x00")
        if method == "absorb-clients":
            prover.absorb_validated_clients(
                wire.decode_str_list(parts[0]), discard=wire.decode_str_list(parts[1])
            )
            return wire.encode_reply()
        if method == "commit-coins":
            return wire.encode_reply(encode_message(prover.commit_coins(parts[0])))
        if method == "begin-coin-stream":
            prover.begin_coin_stream(parts[0])
            return wire.encode_reply()
        if method == "commit-coin-chunk":
            message = prover.commit_coin_chunk(bytes_to_int(parts[0]))
            return wire.encode_reply(encode_message(message))
        if method == "absorb-bits":
            prover.absorb_public_bits(wire.decode_bit_matrix(parts[0]))
            return wire.encode_reply()
        if method == "compute-output":
            output = prover.compute_output(
                wire.decode_str_list(parts[0]), wire.decode_bit_matrix(parts[1])
            )
            return wire.encode_reply(encode_message(output))
        if method == "finish-output":
            return wire.encode_reply(encode_message(prover.finish_output()))
        if method == "morra-sample":
            q, count = bytes_to_int(parts[0]), bytes_to_int(parts[1])
            self._morra_values = prover.sample_values(q, count)
            # Count only: the contributions are secret until the reveal
            # round (hiding against the front-end).
            return wire.encode_reply(int_to_bytes(len(self._morra_values)))
        if method == "morra-commit":
            scheme = HashCommitmentScheme(parts[0])
            commitments, randomness = prover.commitments(scheme, self._morra_values)
            self._morra_randomness = randomness
            return wire.encode_reply(
                wire.encode_bytes_list([c.digest for c in commitments])
            )
        if method == "morra-reveal":
            response = prover.reveal(
                self._morra_values, self._morra_randomness, {}
            )
            if response is None:
                return wire.encode_abort_reply("prover went silent during reveal")
            values, randomness = response
            return wire.encode_reply(
                wire.encode_int_list(values), wire.encode_bytes_list(randomness)
            )
        return wire.encode_abort_reply(f"unknown rpc method {method!r}")


class AnalystNode:
    """The serving front-end: verifier plus the unchanged protocol engine.

    Builds parameters from a declarative query exactly as
    :class:`repro.api.Session` does, ships setup frames to the servers
    and a parameter announcement to the client peer, ingests wire-encoded
    enrollments through ``engine.submit_prepared``, then drives the phase
    machine to a release and publishes it back to the clients.
    """

    def __init__(
        self,
        query: Query,
        transport: Transport,
        servers: list[str],
        *,
        group: str = "modp-2048",
        nb_override: int | None = None,
        chunk_size: int | None = None,
        rng: RNG | None = None,
        clients_peer: str = _CLIENTS,
        timeout: float | None = 60.0,
    ) -> None:
        if isinstance(query, ComposedQuery):
            raise ParameterError("composed queries are not served distributed yet")
        if not servers:
            raise ParameterError("need at least one server (K >= 1)")
        self.query = query
        self.transport = transport
        self.servers = list(servers)
        self.clients_peer = clients_peer
        self.timeout = timeout
        self.rng = rng if rng is not None else SystemRNG()
        params = query.build_params(
            num_provers=len(servers), group=group, nb_override=nb_override
        )
        self.engine = build_engine(
            query,
            num_provers=len(servers),
            params=params,
            provers=[
                RemoteProver(name, transport, params, timeout=timeout)
                for name in self.servers
            ],
            rng=self.rng,
            chunk_size=chunk_size,
        )
        self.params = self.engine.params
        self.plan = self.engine.plan
        self.result: EngineResult | None = None

    def run(self) -> EngineResult:
        """Serve one full session and return the engine result."""
        params_frame = wire.encode_params(self.params)
        plan_frame = wire.encode_plan(self.plan)
        for name in self.servers:
            self.transport.send(
                name,
                wire.encode_control("setup", params_frame, plan_frame, name.encode()),
            )
            ok, reply = wire.decode_reply(self.transport.recv(name, self.timeout))
            if not ok:
                reason = reply[0].decode() if reply else "setup rejected"
                raise ProtocolAbort(f"server setup failed: {reason}", party=name)
        self.transport.send(
            self.clients_peer, wire.encode_control("params", params_frame, plan_frame)
        )
        self._ingest()
        self.result = self.engine.run_release()
        # Servers shut down *before* the release is published: an
        # unresponsive peer's audit note must land in the bytes the
        # clients receive, not mutate the audit record of an
        # already-shipped release.
        self._shutdown_servers()
        self.transport.send(
            self.clients_peer,
            wire.encode_control("release", encode_message(self.result.release)),
        )
        return self.result

    def _ingest(self) -> None:
        """Accept enrollment bundles until the finalize control arrives.

        A frame that fails to decode — truncated, bit-flipped into a
        non-element, wrong shape — drops exactly that enrollment (with an
        audit note), never the session: a hostile client cannot crash the
        front-end.
        """
        group = self.params.group
        while True:
            frame = self.transport.recv(self.clients_peer, self.timeout)
            try:
                kind = wire.frame_kind(frame)
            except EncodingError:
                self.engine.verifier.audit.note("dropped an unclassifiable frame")
                continue
            if kind == "ctrl":
                try:
                    ctrl, _ = wire.decode_control(frame)
                except EncodingError:
                    self.engine.verifier.audit.note("dropped a malformed control frame")
                    continue
                if ctrl == "finalize":
                    return
                raise ProtocolAbort(
                    f"unexpected control {ctrl!r} during enrollment",
                    party=self.clients_peer,
                )
            if kind != "enroll":
                raise ProtocolAbort(
                    f"unexpected {kind!r} frame during enrollment",
                    party=self.clients_peer,
                )
            try:
                broadcast, privates = wire.decode_enrollment(group, frame)
            except (EncodingError, NotOnGroupError, ValueError) as exc:
                self.engine.verifier.audit.note(f"dropped undecodable enrollment: {exc}")
                continue
            if (
                len(broadcast.share_commitments) != self.params.num_provers
                or any(
                    len(row) != self.params.dimension
                    for row in broadcast.share_commitments
                )
            ):
                # A shape lie (e.g. fewer commitment rows than provers)
                # must never reach the share-check RPCs: a prover indexing
                # a missing row would abort the session blaming itself.
                self.engine.verifier.audit.note(
                    f"rejected enrollment from {broadcast.client_id!r}: "
                    "share commitments do not match K provers x M coordinates"
                )
                continue
            if any(m.client_id != broadcast.client_id for m in privates):
                # Same class of lie: a mismatched share id would raise
                # ParameterError inside the prover's check, aborting the
                # session with blame on the honest prover.
                self.engine.verifier.audit.note(
                    f"rejected enrollment from {broadcast.client_id!r}: "
                    "private share client id does not match the broadcast"
                )
                continue
            try:
                self.engine.submit_prepared([(broadcast, privates)])
            except ParameterError as exc:
                # Duplicate/reserved client id, wrong share count, … — a
                # hostile enrollment is dropped, never the session.
                self.engine.verifier.audit.note(
                    f"rejected enrollment from {broadcast.client_id!r}: {exc}"
                )

    def _shutdown_servers(self) -> None:
        shutdown_peers(
            self.transport, self.servers, self.timeout, self.engine.verifier.audit
        )

    @property
    def release(self) -> Release:
        if self.result is None:
            raise ParameterError("session has not released yet")
        return self.result.release


class ClientRunner:
    """Drives a population of clients against a serving front-end.

    Receives the parameter announcement, builds each client with the same
    name and forked randomness stream the in-process session would
    (``client-{i}``, fork of the shared root), wire-encodes its Line 2
    submission and ships it, then waits for the published release.
    """

    def __init__(
        self,
        transport: Transport,
        query: Query,
        values,
        *,
        rng: RNG | None = None,
        analyst: str = _ANALYST,
        timeout: float | None = 60.0,
        tamper=None,
    ) -> None:
        self.transport = transport
        self.query = query
        self.values = list(values)
        self.rng = rng if rng is not None else SystemRNG()
        self.analyst = analyst
        self.timeout = timeout
        self.tamper = tamper
        self.release: Release | None = None

    def run(self) -> Release:
        ctrl, parts = wire.decode_control(self.transport.recv(self.analyst, self.timeout))
        self._check_abort(ctrl, parts)
        if ctrl != "params" or not parts:
            raise ProtocolAbort("expected a params announcement", party=self.analyst)
        params = wire.decode_params(parts[0])
        for index, value in enumerate(self.values):
            name = f"client-{index}"
            client = (
                value
                if hasattr(value, "submit")
                else self.query.make_client(name, value, fork_rng(self.rng, name))
            )
            broadcast, privates = client.submit(params)
            frame = wire.encode_enrollment(broadcast, privates)
            if self.tamper is not None:
                frame = self.tamper(index, frame)
            self.transport.send(self.analyst, frame)
        self.transport.send(self.analyst, wire.encode_control("finalize"))
        ctrl, parts = wire.decode_control(self.transport.recv(self.analyst, self.timeout))
        self._check_abort(ctrl, parts)
        if ctrl != "release" or not parts:
            raise ProtocolAbort("expected the release", party=self.analyst)
        release = decode_message(params.group, parts[0])
        if not isinstance(release, Release):
            raise EncodingError("release frame carried a different message")
        self.release = release
        return release

    def _check_abort(self, ctrl: str, parts: list[bytes]) -> None:
        if ctrl == "abort":
            reason = parts[0].decode() if parts else "session aborted"
            raise ProtocolAbort(
                f"session aborted by front-end: {reason}", party=self.analyst
            )
