"""Sharded serving: one client stream, S verification front-ends.

The analyst is verifier-bound: it must check every client's validity
proof and every prover's Σ-OR coin proofs, so a single
:class:`~repro.net.nodes.AnalystNode` caps serving throughput no matter
how many prover servers exist.  This module horizontally scales exactly
that bottleneck:

* :class:`ShardWorker` — a verification worker (process or thread behind
  any :class:`~repro.net.transport.Transport`) hosting a plain
  :class:`~repro.core.verifier.PublicVerifier`.  It validates the client
  chunks routed to it and verifies the coin chunks it *owns*; chunks
  owned by other shards are fast-forwarded through the evolving
  Fiat–Shamir transcript at pure hashing cost
  (:meth:`PublicVerifier.skip_coin_chunk`), so every shard holds the
  correct transcript state while paying the RLC multi-exponentiation for
  only 1/S of the stream.
* :class:`ShardedAnalyst` — the front-end.  It drives the *unchanged*
  :class:`~repro.api.engine.ProtocolEngine` (same RNG fork labels, same
  Morra draws) but plugs in a :class:`_ShardedVerifier` whose heavy
  verification methods fan work out to the shards and whose
  ``finish_coin_stream`` merges their answers.

**Merge rules** (why a sharded release is byte-identical to an unsharded
seeded :class:`~repro.api.Session` at the same ``chunk_size``):

* client verdicts re-enter the audit record in global submission order
  (shards report per-chunk, the front-end reorders by chunk start);
* the per-(prover, coordinate) client commitment products and the
  per-lane Line 12 products Com(k₁,0)·Π_keep/Π_flip are products in an
  abelian group, so per-shard partials multiply into exactly the
  unsharded value (Com is additively homomorphic in k₁);
* everything that draws randomness — Morra co-sampling, the engine's
  phase machine, the provers — runs unsharded, once, on the front-end
  and the servers.  Shards only *check*; they never sample.

One deviation from the unsharded failure path: coin chunks are verified
asynchronously, so a cheating prover's Morra bits for chunks *after* its
bad one are still drawn (the unsharded engine stops at the bad chunk).
Soundness is unaffected — every coin is still committed before its bit
is drawn, and the prover is rejected with the same pinpointing note
(plus shard attribution) when the shards report back — the extra Morra
draws are simply wasted on a run that will not release.
"""

from __future__ import annotations

from repro.api.engine import EngineResult, fork_rng
from repro.api.queries import ComposedQuery, Query
from repro.api.session import build_engine
from repro.core.messages import ClientStatus, CoinCommitmentMessage, Release
from repro.core.params import PublicParams
from repro.core.plan import AggregationPlan
from repro.core.verifier import PublicVerifier
from repro.crypto.pedersen import Commitment
from repro.crypto.serialization import (
    decode_commitment,
    decode_message,
    encode_message_cached,
)
from repro.errors import (
    EncodingError,
    NotOnGroupError,
    ParameterError,
    ProtocolAbort,
    ReproError,
)
from repro.net import wire
from repro.net.nodes import RemoteProver, shutdown_peers
from repro.net.transport import Transport
from repro.utils.encoding import (
    bytes_to_int,
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)
from repro.utils.rng import RNG, SystemRNG

__all__ = ["ShardWorker", "ShardedAnalyst"]

_ANALYST = "analyst"
_CLIENTS = "clients"

_STATUS_CODE = {
    ClientStatus.VALID: 0,
    ClientStatus.INVALID_PROOF: 1,
    ClientStatus.BAD_OPENING: 2,
}
_CODE_STATUS = {code: status for status, code in _STATUS_CODE.items()}


def _encode_element(element) -> bytes:
    return element.to_bytes()


class ShardWorker:
    """One verification shard: a PublicVerifier behind a transport.

    Receives a setup frame (public parameters + plan + shard index), then
    serves the analyst's dispatch stream.  Chunk-dispatch RPCs are
    one-way (the analyst never blocks on a shard mid-stream); only the
    two ``*-finish`` collection RPCs and ``shutdown`` reply.  Errors on
    the internal analyst↔shard channel are remembered and surfaced as an
    abort reply at the next collection point, never a dead worker.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        analyst: str = _ANALYST,
        timeout: float | None = 60.0,
    ) -> None:
        self.transport = transport
        self.analyst = analyst
        self.timeout = timeout
        self.index = 0
        self.count = 1
        self.params: PublicParams | None = None
        self.verifier: PublicVerifier | None = None
        # Client phase: (chunk start index, [(client id, status), ...]).
        self._client_chunks: list[tuple[int, list[tuple[str, ClientStatus]]]] = []
        # Coin phase bookkeeping per prover.
        self._received: dict[str, int] = {}
        self._failed: dict[str, str] = {}
        self._error: str | None = None

    def run(self) -> None:
        """Serve one session: setup, dispatch loop, shutdown."""
        self._setup()
        try:
            while True:
                frame = self.transport.recv(self.analyst, self.timeout)
                try:
                    kind = wire.frame_kind(frame)
                except EncodingError as exc:
                    self._note_error(f"unclassifiable frame: {exc}")
                    continue
                if kind == "ctrl":
                    ctrl, _ = wire.decode_control(frame)
                    if ctrl == "shutdown":
                        self.transport.send(self.analyst, wire.encode_reply())
                        return
                    if ctrl == "abort":
                        # One-way: the front-end's session died; exit
                        # promptly instead of waiting out the timeout.
                        return
                    self._note_error(f"unexpected control {ctrl!r}")
                    continue
                try:
                    method, parts = wire.decode_rpc(frame)
                    self._dispatch(method, parts)
                except (ReproError, ValueError, IndexError, KeyError) as exc:
                    self._note_error(f"{type(exc).__name__}: {exc}")
        finally:
            self.transport.close()

    def _setup(self) -> None:
        frame = self.transport.recv(self.analyst, self.timeout)
        ctrl, parts = wire.decode_control(frame)
        if ctrl != "setup" or len(parts) != 4:
            raise ProtocolAbort("expected a shard setup frame", party=self.analyst)
        self.params = wire.decode_params(parts[0])
        plan = wire.decode_plan(parts[1])
        self.index = bytes_to_int(parts[2])
        self.count = bytes_to_int(parts[3])
        # Shards never co-sample Morra; their RNG only seeds batch RLC
        # weights, which must be unpredictable — system randomness.
        self.verifier = PublicVerifier(self.params, SystemRNG(), plan=plan)
        self.transport.send(self.analyst, wire.encode_reply())

    def _note_error(self, message: str) -> None:
        if self._error is None:
            self._error = message

    # Dispatch ----------------------------------------------------------------

    def _dispatch(self, method: str, parts: list[bytes]) -> None:
        if method == "clients-chunk":
            self._clients_chunk(parts)
        elif method == "clients-finish":
            self.transport.send(self.analyst, self._clients_finish())
        elif method == "coin-begin":
            prover_id = parts[0].decode()
            self.verifier.begin_coin_stream(prover_id, parts[1])
            self._received[prover_id] = 0
            self._failed.pop(prover_id, None)
        elif method == "coin-chunk":
            self._coin_chunk(parts)
        elif method == "bits-chunk":
            self._bits_chunk(parts)
        elif method == "coin-finish":
            self.transport.send(self.analyst, self._coin_finish(parts[0].decode()))
        else:
            self._note_error(f"unknown shard rpc {method!r}")

    # Client phase ------------------------------------------------------------

    def _clients_chunk(self, parts: list[bytes]) -> None:
        start = bytes_to_int(parts[0])
        complained = set(wire.decode_str_list(parts[1]))
        broadcasts = [
            decode_message(self.params.group, frame) for frame in parts[2:]
        ]
        # The union of prover complaints is all validate_clients uses.
        valid = self.verifier.validate_clients(
            broadcasts, {"servers": sorted(complained)} if complained else None
        )
        self.verifier.fold_client_commitments(broadcasts, valid)
        verdicts = [
            (b.client_id, self.verifier.audit.clients[b.client_id])
            for b in broadcasts
        ]
        self._client_chunks.append((start, verdicts))

    def _clients_finish(self) -> bytes:
        if self._error is not None:
            return wire.encode_abort_reply(self._error)
        chunk_blobs = []
        for start, verdicts in self._client_chunks:
            chunk_blobs.append(
                encode_length_prefixed(
                    int_to_bytes(start),
                    wire.encode_str_list([cid for cid, _ in verdicts]),
                    bytes(_STATUS_CODE[status] for _, status in verdicts),
                )
            )
        product_rows = []
        for row in self.verifier.client_products():
            product_rows.append(
                encode_length_prefixed(
                    *[
                        b"" if element is None else _encode_element(element)
                        for element in row
                    ]
                )
            )
        return wire.encode_reply(
            encode_length_prefixed(*chunk_blobs), encode_length_prefixed(*product_rows)
        )

    # Coin phase --------------------------------------------------------------

    def _coin_chunk(self, parts: list[bytes]) -> None:
        prover_id = parts[0].decode()
        rows = bytes_to_int(parts[1])
        owned = parts[2] == b"\x01"
        frame = parts[3]
        if prover_id in self._failed:
            return
        if not owned:
            if self.verifier.skip_coin_chunk(prover_id, frame, rows):
                self._received[prover_id] += rows
            else:
                self._failed[prover_id] = self._last_note(prover_id)
            return
        try:
            message = decode_message(self.params.group, frame)
        except (EncodingError, NotOnGroupError, ValueError) as exc:
            self._failed[prover_id] = f"undecodable coin chunk: {exc}"
            return
        if (
            not isinstance(message, CoinCommitmentMessage)
            or message.prover_id != prover_id
        ):
            self._failed[prover_id] = "coin chunk frame carried a different message"
            return
        if not self.verifier.verify_coin_chunk(message):
            # verify_coin_chunk recorded the pinpointing note (sequential
            # replay names the exact coin); keep it for the merge reply.
            self._failed[prover_id] = self._last_note(prover_id)
            return
        self._received[prover_id] += rows

    def _last_note(self, prover_id: str) -> str:
        notes = self.verifier.audit.notes
        if not notes:
            return "coin chunk rejected"
        # Audit notes carry a "{prover}: " prefix; the analyst re-adds it
        # (with shard attribution) when it records the merged verdict.
        return notes[-1].removeprefix(f"{prover_id}: ")

    def _bits_chunk(self, parts: list[bytes]) -> None:
        prover_id = parts[0].decode()
        if prover_id in self._failed:
            return
        self.verifier.apply_public_bits_chunk(
            prover_id, wire.decode_bit_matrix(parts[1])
        )

    def _coin_finish(self, prover_id: str) -> bytes:
        if self._error is not None:
            return wire.encode_abort_reply(self._error)
        received = self._received.get(prover_id, 0)
        note = self._failed.get(prover_id)
        if note is None:
            healthy, products = self.verifier.partial_adjusted_products(prover_id)
            if healthy:
                return wire.encode_reply(
                    b"\x01",
                    b"",
                    int_to_bytes(received),
                    *[_encode_element(product.element) for product in products],
                )
            note = "coin stream unhealthy"
        return wire.encode_reply(b"\x00", note.encode(), int_to_bytes(received))


class _ShardedVerifier(PublicVerifier):
    """The front-end's verifier: fan out the heavy checks, merge results.

    Client validation is routed by :class:`ShardedAnalyst` itself (it
    owns the enrollment stream); this subclass intercepts the engine's
    streamed coin-phase calls.  ``verify_coin_chunk`` dispatches and
    returns optimistically; the real verdict lands in
    ``finish_coin_stream`` when every shard has answered for the prover.
    """

    def __init__(self, params, rng, *, plan, analyst: "ShardedAnalyst") -> None:
        super().__init__(params, rng, plan=plan)
        self._analyst = analyst

    def begin_coin_stream(self, prover_id: str, context: bytes) -> None:
        self._analyst._begin_coin_stream(prover_id, context)

    def verify_coin_chunk(self, message) -> bool:
        self._analyst._dispatch_coin_chunk(message)
        return True

    def apply_public_bits_chunk(self, prover_id: str, public_bits) -> None:
        self._analyst._dispatch_bits_chunk(prover_id, public_bits)

    def finish_coin_stream(self, prover_id: str) -> bool:
        ok, note, products = self._analyst._collect_coin_stream(prover_id)
        if not ok:
            self._reject_coins(prover_id, note)
            return False
        self.install_adjusted_products(prover_id, products)
        return True


class ShardedAnalyst:
    """A serving front-end that spreads verification over S shards.

    Drop-in for :class:`~repro.net.nodes.AnalystNode` with one extra peer
    group: ``shards`` names S :class:`ShardWorker` peers on the same
    transport.  Clients are dispatched round-robin in engine-sized
    chunks; every coin chunk goes to every shard (owners verify, the
    rest fast-forward); Morra, ε-accounting and the release stay single.
    Under a seed the merged release is byte-identical to an unsharded
    :class:`~repro.api.Session` run at the same ``chunk_size``.
    """

    def __init__(
        self,
        query: Query,
        transport: Transport,
        servers: list[str],
        shards: list[str],
        *,
        group: str = "modp-2048",
        nb_override: int | None = None,
        chunk_size: int | None = None,
        rng: RNG | None = None,
        clients_peer: str = _CLIENTS,
        timeout: float | None = 60.0,
    ) -> None:
        if isinstance(query, ComposedQuery):
            raise ParameterError("composed queries are not served sharded yet")
        if not servers:
            raise ParameterError("need at least one server (K >= 1)")
        if not shards:
            raise ParameterError("need at least one shard worker (S >= 1)")
        self.query = query
        self.transport = transport
        self.servers = list(servers)
        self.shards = list(shards)
        self.clients_peer = clients_peer
        self.timeout = timeout
        self.rng = rng if rng is not None else SystemRNG()
        params = query.build_params(
            num_provers=len(servers), group=group, nb_override=nb_override
        )
        if chunk_size is None:
            # At least two chunks per shard so ownership round-robins.
            chunk_size = max(1, -(-params.nb // max(2 * len(self.shards), 1)))
        self.chunk_size = chunk_size
        plan = query.build_plan()
        verifier = _ShardedVerifier(
            params, fork_rng(self.rng, "verifier"), plan=plan, analyst=self
        )
        self.engine = build_engine(
            query,
            num_provers=len(servers),
            params=params,
            provers=[
                RemoteProver(name, transport, params, timeout=timeout)
                for name in self.servers
            ],
            verifier=verifier,
            rng=self.rng,
            chunk_size=chunk_size,
        )
        self.params = self.engine.params
        self.plan = self.engine.plan
        self.result: EngineResult | None = None
        # Round-robin dispatch state.
        self._chunk_counter = 0
        self._pending: list[tuple] = []  # (broadcast, privates, broadcast frame)
        self._dispatched = 0  # clients shipped to shards so far
        self._client_chunks = 0
        self._coin_owners: dict[str, list[int]] = {}  # FIFO of owners per prover

    # Serving -----------------------------------------------------------------

    def run(self) -> EngineResult:
        """Serve one full session and return the engine result."""
        params_frame = wire.encode_params(self.params)
        plan_frame = wire.encode_plan(self.plan)
        for name in self.servers:
            self.transport.send(
                name,
                wire.encode_control("setup", params_frame, plan_frame, name.encode()),
            )
            self._expect_ok(name, "server setup failed")
        for index, name in enumerate(self.shards):
            self.transport.send(
                name,
                wire.encode_control(
                    "setup",
                    params_frame,
                    plan_frame,
                    int_to_bytes(index),
                    int_to_bytes(len(self.shards)),
                ),
            )
            self._expect_ok(name, "shard setup failed")
        self.transport.send(
            self.clients_peer, wire.encode_control("params", params_frame, plan_frame)
        )
        self._ingest()
        self._finish_clients()
        self.result = self.engine.run_release()
        # Peers shut down *before* the release is published, so an
        # unresponsive peer's audit note is part of the published bytes
        # (never a post-publication mutation of the shipped record).
        self._shutdown_peers()
        self.transport.send(
            self.clients_peer,
            wire.encode_control(
                "release", encode_message_cached(self.result.release)
            ),
        )
        return self.result

    def _expect_ok(self, name: str, what: str) -> None:
        ok, reply = wire.decode_reply(self.transport.recv(name, self.timeout))
        if not ok:
            reason = reply[0].decode() if reply else "rejected"
            raise ProtocolAbort(f"{what}: {reason}", party=name)

    @property
    def release(self) -> Release:
        if self.result is None:
            raise ParameterError("session has not released yet")
        return self.result.release

    # Client phase ------------------------------------------------------------

    def _ingest(self) -> None:
        """Accept enrollments until finalize, dispatching full chunks.

        Hostile-input handling mirrors :class:`AnalystNode`: an
        enrollment that fails to decode, lies about its shape, or reuses
        a client id is dropped with an audit note, never the session.
        """
        audit = self.engine.verifier.audit
        group = self.params.group
        while True:
            frame = self.transport.recv(self.clients_peer, self.timeout)
            try:
                kind = wire.frame_kind(frame)
            except EncodingError:
                audit.note("dropped an unclassifiable frame")
                continue
            if kind == "ctrl":
                try:
                    ctrl, _ = wire.decode_control(frame)
                except EncodingError:
                    audit.note("dropped a malformed control frame")
                    continue
                if ctrl == "finalize":
                    self._dispatch_client_chunk()
                    return
                raise ProtocolAbort(
                    f"unexpected control {ctrl!r} during enrollment",
                    party=self.clients_peer,
                )
            if kind != "enroll":
                raise ProtocolAbort(
                    f"unexpected {kind!r} frame during enrollment",
                    party=self.clients_peer,
                )
            try:
                broadcast_frame, private_frames = wire.split_enrollment(frame)
                broadcast = decode_message(group, broadcast_frame)
                privates = [decode_message(group, raw) for raw in private_frames]
            except (EncodingError, NotOnGroupError, ValueError) as exc:
                audit.note(f"dropped undecodable enrollment: {exc}")
                continue
            if not self._enrollment_shape_ok(broadcast, privates, audit):
                continue
            try:
                self.engine.adopt_enrollment(broadcast)
            except ParameterError as exc:
                audit.note(
                    f"rejected enrollment from {broadcast.client_id!r}: {exc}"
                )
                continue
            self._pending.append((broadcast, privates, broadcast_frame))
            if len(self._pending) >= self.chunk_size:
                self._dispatch_client_chunk()

    def _enrollment_shape_ok(self, broadcast, privates, audit) -> bool:
        from repro.core.messages import ClientBroadcast, ClientShareMessage

        if not isinstance(broadcast, ClientBroadcast) or not all(
            isinstance(m, ClientShareMessage) for m in privates
        ):
            audit.note("dropped an enrollment with wrong message types")
            return False
        if len(privates) != self.params.num_provers:
            audit.note(
                f"rejected enrollment from {broadcast.client_id!r}: "
                "one private share message per prover required"
            )
            return False
        if len(broadcast.share_commitments) != self.params.num_provers or any(
            len(row) != self.params.dimension for row in broadcast.share_commitments
        ):
            audit.note(
                f"rejected enrollment from {broadcast.client_id!r}: "
                "share commitments do not match K provers x M coordinates"
            )
            return False
        if any(m.client_id != broadcast.client_id for m in privates):
            audit.note(
                f"rejected enrollment from {broadcast.client_id!r}: "
                "private share client id does not match the broadcast"
            )
            return False
        return True

    def _dispatch_client_chunk(self) -> None:
        entries = self._pending
        self._pending = []
        if not entries:
            return
        # Private share routing and complaints first (prover work, exactly
        # the unsharded per-chunk order), so the shard can fold verdicts
        # and complaints in one pass.
        complained: dict[str, None] = {}
        for k, prover in enumerate(self.engine.provers):
            for broadcast, privates, _ in entries:
                if not prover.receive_client_share(broadcast, privates[k], k):
                    complained.setdefault(broadcast.client_id)
        shard = self.shards[self._chunk_counter % len(self.shards)]
        self._chunk_counter += 1
        self.transport.send(
            shard,
            wire.encode_rpc(
                "clients-chunk",
                int_to_bytes(self._dispatched),
                wire.encode_str_list(list(complained)),
                *[frame for _, _, frame in entries],
            ),
        )
        self._dispatched += len(entries)
        self._client_chunks += 1

    def _finish_clients(self) -> None:
        """Collect every shard's verdicts and products, merge in order."""
        verifier = self.engine.verifier
        chunk_records: list[tuple[int, list[tuple[str, ClientStatus]]]] = []
        for index, shard in enumerate(self.shards):
            self.transport.send(shard, wire.encode_rpc("clients-finish"))
            ok, reply = wire.decode_reply(self.transport.recv(shard, self.timeout))
            if not ok or len(reply) != 2:
                reason = reply[0].decode() if reply else "no client verdicts"
                raise ProtocolAbort(f"shard {index}: {reason}", party=shard)
            for blob in decode_length_prefixed(reply[0]):
                start_raw, ids_raw, codes = decode_length_prefixed(blob)
                ids = wire.decode_str_list(ids_raw)
                if len(codes) != len(ids):
                    raise ProtocolAbort(
                        f"shard {index}: verdict shape mismatch", party=shard
                    )
                chunk_records.append(
                    (
                        bytes_to_int(start_raw),
                        [
                            (cid, _CODE_STATUS[code])
                            for cid, code in zip(ids, codes)
                        ],
                    )
                )
            product_rows = decode_length_prefixed(reply[1])
            if len(product_rows) != self.params.num_provers:
                raise ProtocolAbort(
                    f"shard {index}: client product shape mismatch", party=shard
                )
            partial = [
                [
                    None
                    if raw == b""
                    else decode_commitment(self.params.group, raw).element
                    for raw in decode_length_prefixed(row)
                ]
                for row in product_rows
            ]
            verifier.merge_client_products(partial)
        chunk_records.sort(key=lambda record: record[0])
        if len(chunk_records) != self._client_chunks or sum(
            len(verdicts) for _, verdicts in chunk_records
        ) != self._dispatched:
            raise ProtocolAbort("shards returned an incomplete client record")  # repro: allow[REP004] -- aggregate merge inconsistency across shards; per-shard faults were attributed when their frames were read
        ordered = [pair for _, verdicts in chunk_records for pair in verdicts]
        valid = verifier.record_client_verdicts(ordered)
        self.engine.adopt_valid_ids(valid)
        valid_set = set(valid)
        invalid = [cid for cid, _ in ordered if cid not in valid_set]
        for prover in self.engine.provers:
            prover.absorb_validated_clients(valid, discard=invalid)

    # Coin phase (called by _ShardedVerifier) ---------------------------------

    def _begin_coin_stream(self, prover_id: str, context: bytes) -> None:
        self._coin_owners[prover_id] = []
        for shard in self.shards:
            self.transport.send(
                shard, wire.encode_rpc("coin-begin", prover_id.encode(), context)
            )

    def _dispatch_coin_chunk(self, message) -> None:
        frame = encode_message_cached(message)
        rows = int_to_bytes(len(message.commitments))
        owner = self._chunk_counter % len(self.shards)
        self._chunk_counter += 1
        self._coin_owners[message.prover_id].append(owner)
        prover = message.prover_id.encode()
        for index, shard in enumerate(self.shards):
            self.transport.send(
                shard,
                wire.encode_rpc(
                    "coin-chunk",
                    prover,
                    rows,
                    b"\x01" if index == owner else b"\x00",
                    frame,
                ),
            )

    def _dispatch_bits_chunk(self, prover_id: str, public_bits) -> None:
        owners = self._coin_owners[prover_id]
        if not owners:
            raise ParameterError("public bits without a dispatched coin chunk")
        owner = owners.pop(0)
        self.transport.send(
            self.shards[owner],
            wire.encode_rpc(
                "bits-chunk", prover_id.encode(), wire.encode_bit_matrix(public_bits)
            ),
        )

    def _collect_coin_stream(
        self, prover_id: str
    ) -> tuple[bool, str, list[Commitment]]:
        """Gather every shard's verdict + Line 12 partials for one prover.

        Merge rule: accept iff every shard accepted and saw all nb rows;
        the per-lane products multiply homomorphically.  On rejection the
        note names the reporting shard *and* carries its pinpointing note
        (the exact coin index, from sequential replay on the owner).
        """
        merged: list | None = None
        failure: str | None = None
        for index, shard in enumerate(self.shards):
            self.transport.send(
                shard, wire.encode_rpc("coin-finish", prover_id.encode())
            )
            ok, reply = wire.decode_reply(self.transport.recv(shard, self.timeout))
            if not ok:
                reason = reply[0].decode() if reply else "shard aborted"
                raise ProtocolAbort(f"shard {index}: {reason}", party=shard)
            if len(reply) < 3:
                raise ProtocolAbort(
                    f"shard {index}: malformed coin verdict", party=shard
                )
            accepted = reply[0] == b"\x01"
            received = bytes_to_int(reply[2])
            if not accepted:
                note = reply[1].decode() or "coin stream rejected"
                if failure is None:
                    failure = f"shard {index}: {note}"
                continue
            if received != self.params.nb:
                if failure is None:
                    failure = (
                        f"shard {index}: incomplete coin stream "
                        f"({received}/{self.params.nb} coins)"
                    )
                continue
            products = reply[3:]
            if len(products) != self.plan.lanes:
                raise ProtocolAbort(
                    f"shard {index}: Line 12 partials do not match the plan",
                    party=shard,
                )
            if merged is None:
                merged = [
                    decode_commitment(self.params.group, raw).element
                    for raw in products
                ]
            else:
                merged = [
                    held * decode_commitment(self.params.group, raw).element
                    for held, raw in zip(merged, products)
                ]
        if failure is not None:
            return False, failure, []
        if merged is None:  # pragma: no cover - shards list is never empty
            return False, "no shards reported", []
        return True, "", [Commitment(element) for element in merged]

    # Teardown ----------------------------------------------------------------

    def _shutdown_peers(self) -> None:
        shutdown_peers(
            self.transport,
            self.servers + self.shards,
            self.timeout,
            self.engine.verifier.audit,
        )
