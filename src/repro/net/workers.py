"""Parallel coin-proof verification across worker processes.

The verifier's dominant cost is checking nb Σ-OR coin proofs per prover
(Table 1's Σ-verification column).  Two axes of parallelism are free:

* **per prover** — each prover's coin message verifies against its own
  fresh Fiat–Shamir transcript, so K provers are K independent tasks;
* **per chunk** — a streamed prover's chunks share one *evolving*
  transcript, but transcript evolution is a deterministic function of the
  public messages alone (absorb commitments and announcements, extract
  the challenge — no group exponentiations).  A worker assigned chunk i
  therefore *fast-forwards* the transcript over chunks < i with pure
  hashing, then pays the expensive RLC multi-exponentiation only for its
  own chunk.  Hashing is orders of magnitude cheaper than the group
  work, so the chunks are embarrassingly parallel in the part that costs.

Work items travel as wire frames (bytes) and workers rebuild the public
parameters from a spec frame once per process, so nothing unpicklable
crosses the process boundary.  ``benchmarks/bench_distributed_session.py``
measures the speedup and emits ``BENCH_distributed.json``.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.core.params import PublicParams
from repro.core.prover import coin_transcript
from repro.crypto.serialization import (
    advance_coin_transcript,
    advance_coin_transcript_frame,
    decode_message,
)
from repro.crypto.sigma.batch import SigmaBatch
from repro.crypto.sigma.or_bit import verify_bit
from repro.errors import EncodingError, ParameterError, VerificationError
from repro.net import wire
from repro.utils.rng import SystemRNG

# The transcript fast-forward helpers now live next to the frame codec
# in repro.crypto.serialization (core code uses them too); re-exported
# here because this is where the worker pattern is documented.
__all__ = [
    "VerificationPool",
    "verify_coin_frame",
    "advance_coin_transcript",
    "advance_coin_transcript_frame",
]

_WORKER_PARAMS: PublicParams | None = None


def verify_coin_frame(
    params: PublicParams,
    frame: bytes,
    context: bytes,
    *,
    prior_frames: list[bytes] = (),
    start: int = 0,
) -> tuple[str, bool, str | None]:
    """Verify one wire-encoded coin message; returns (prover, ok, note).

    ``prior_frames`` are earlier chunks of the same stream, fast-forwarded
    (not verified) to reproduce the evolving transcript; ``start`` is the
    global index of this chunk's first coin, used in the pinpointing note.
    """
    try:
        message = decode_message(params.group, frame)
    except (EncodingError, ValueError) as exc:
        return "?", False, f"undecodable coin frame: {exc}"
    transcript = coin_transcript(params, message.prover_id, context)
    try:
        for prior in prior_frames:
            advance_coin_transcript_frame(params, transcript, prior)
    except (EncodingError, ValueError) as exc:
        # A broken earlier chunk must reject the stream gracefully from
        # every worker whose prefix contains it, not crash the pool.
        return message.prover_id, False, f"undecodable prior chunk in stream: {exc}"
    snapshot = transcript.clone()
    batch = SigmaBatch(params.pedersen, SystemRNG())
    try:
        for c_row, p_row in zip(message.commitments, message.proofs):
            for commitment, proof in zip(c_row, p_row):
                batch.add_bit_proof(commitment, proof, transcript)
        batch.verify()
        return message.prover_id, True, None
    except VerificationError:
        pass
    # Sequential replay from the snapshot to name the failing coin.
    for j, (c_row, p_row) in enumerate(zip(message.commitments, message.proofs)):
        for m, (commitment, proof) in enumerate(zip(c_row, p_row)):
            try:
                verify_bit(params.pedersen, commitment, proof, snapshot)
            except VerificationError as exc:
                note = f"coin proof rejected at coin {start + j}, coordinate {m} ({exc})"
                return message.prover_id, False, note
    return message.prover_id, False, "batch rejected (replay accepted)"


# Pool plumbing ----------------------------------------------------------------


def _init_worker(params_frame: bytes) -> None:
    global _WORKER_PARAMS
    _WORKER_PARAMS = wire.decode_params(params_frame)


def _prover_task(args: tuple[bytes, bytes]) -> tuple[str, bool, str | None]:
    frame, context = args
    return verify_coin_frame(_WORKER_PARAMS, frame, context, start=0)


def _chunk_task(
    args: tuple[bytes, list[bytes], int, int]
) -> tuple[str, int, bool, str | None]:
    context, prefix, index, start = args
    prover_id, ok, note = verify_coin_frame(
        _WORKER_PARAMS,
        prefix[-1],
        context,
        prior_frames=prefix[:-1],
        start=start,
    )
    return prover_id, index, ok, note


class VerificationPool:
    """A process pool verifying wire-encoded coin messages in parallel."""

    def __init__(self, params: PublicParams, *, processes: int | None = None) -> None:
        self.params = params
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        if self.processes < 1:
            raise ParameterError("need at least one worker process")
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            self.processes,
            initializer=_init_worker,
            initargs=(wire.encode_params(params),),
        )

    def verify_prover_messages(
        self, frames: list[bytes], context: bytes
    ) -> list[tuple[str, bool, str | None]]:
        """All provers' monolithic coin messages, one task per prover."""
        return self._pool.map(_prover_task, [(frame, context) for frame in frames])

    def verify_chunked_stream(
        self, frames: list[bytes], context: bytes, *, rows_per_chunk: int
    ) -> tuple[bool, str | None]:
        """One prover's chunked stream, one task per chunk.

        Chunks verify concurrently (each fast-forwards its transcript
        prefix); the stream is accepted iff every chunk is, and the note
        names the earliest failing coin.
        """
        # Each task ships only its prefix (chunk i needs frames[:i+1]);
        # suffix frames would be dead weight on the pool pipe.
        tasks = [
            (context, frames[: index + 1], index, index * rows_per_chunk)
            for index in range(len(frames))
        ]
        results = sorted(self._pool.map(_chunk_task, tasks), key=lambda r: r[1])
        for _, _, ok, note in results:
            if not ok:
                return False, note
        return True, None

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "VerificationPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
