"""A TCP admission gateway: drive a live fleet from outside its process.

``repro serve --fleet`` historically ran a fixed batch of sessions and
exited — fine for demos, useless for load generation, where the client
decides *when* sessions arrive.  :class:`FleetGateway` turns a running
:class:`~repro.net.fleet.FleetDispatcher` into a server: clients connect
over plain TCP and speak newline-delimited JSON —

* ``{"op": "session", "id": 7, "values": [1,0,1], "seed": "run/g7"}``
  admits one session (the gateway owns the query; values and seed are
  the client's).  One reply line comes back whenever that session gets
  an outcome: ``{"id": 7, "status": "released", "accepted": true,
  "estimate": [...], "elapsed_s": ..., "frontend": "fe-1",
  "release_bytes": ...}`` — or ``status`` ``aborted`` / ``crashed`` /
  ``rejected`` / ``timeout`` with a ``reason``.
* ``{"op": "ping"}`` answers ``{"ok": true}`` (liveness probe).

Replies are per-session and unordered — the whole point of an open-loop
client (:mod:`repro.loadgen`) is that arrivals never wait for
completions, so the gateway must not serialize them either.  Each
admitted session gets a waiter thread parked on
``dispatcher.wait({id})``; the dispatcher's no-hang invariant (every
admitted request gets an outcome, crash or not) bounds every waiter.

This is deliberately *not* the protocol wire format
(:mod:`repro.net.wire`): the gateway is a control-plane admission
surface in the trusted front-end tier, not a protocol participant, and
JSON lines keep it scriptable (``nc``, a five-line client, the load
generator).
"""

from __future__ import annotations

import json
import socket
import threading

from repro.api.queries import Query
from repro.errors import ParameterError, ProtocolAbort, ReproError
from repro.net.fleet import FleetDispatcher, SessionRequest

__all__ = ["FleetGateway"]

_MAX_LINE_BYTES = 1 << 20  # a session request is small; a 1 MiB line is hostile


class FleetGateway:
    """Admit sessions into a :class:`FleetDispatcher` over TCP JSON lines."""

    def __init__(
        self,
        dispatcher: FleetDispatcher,
        query: Query,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 120.0,
    ) -> None:
        self.dispatcher = dispatcher
        self.query = query
        self.timeout = timeout
        self._lock = threading.Lock()
        self._next_id = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self.admitted = 0
        self.rejected = 0
        self._closed = threading.Event()
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.host = host
        self.port = self._sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"gateway-accept-{self.port}", daemon=True
        )
        self._accept_thread.start()

    # Accept/serve loops -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_conn(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        waiters: list[threading.Thread] = []
        try:
            with conn.makefile("rb") as lines:
                for line in lines:
                    if len(line) > _MAX_LINE_BYTES:
                        break  # hostile framing; drop the connection
                    with self._lock:
                        self.bytes_received += len(line)
                    if not line.strip():
                        continue
                    waiter = self._handle_line(conn, write_lock, line)
                    if waiter is not None:
                        waiters.append(waiter)
        except OSError:
            pass  # peer went away; waiters still resolve their sessions
        finally:
            for waiter in waiters:
                waiter.join(timeout=self.timeout + 5.0)
            self._discard(conn)

    def _handle_line(self, conn, write_lock, line: bytes):
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            op = payload.get("op", "session")
            if op == "ping":
                self._reply(conn, write_lock, {"ok": True})
                return None
            if op != "session":
                raise ValueError(f"unknown op {op!r}")
            values = payload["values"]
            if not isinstance(values, list):
                raise ValueError("values must be a list")
        except (ValueError, KeyError, TypeError) as exc:
            self._reply(
                conn,
                write_lock,
                {"id": None, "status": "rejected", "reason": f"bad request: {exc}"},
            )
            with self._lock:
                self.rejected += 1
            return None

        client_id = payload.get("id")
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
        request = SessionRequest(
            request_id, self.query, list(values), seed=payload.get("seed")
        )
        try:
            self.dispatcher.submit(request)
        except (ParameterError, ProtocolAbort) as exc:
            self._reply(
                conn,
                write_lock,
                {"id": client_id, "status": "rejected", "reason": str(exc)},
            )
            with self._lock:
                self.rejected += 1
            return None
        with self._lock:
            self.admitted += 1
        waiter = threading.Thread(
            target=self._await_outcome,
            args=(conn, write_lock, client_id, request_id),
            name=f"gateway-wait-{request_id}",
            daemon=True,
        )
        waiter.start()
        return waiter

    def _await_outcome(self, conn, write_lock, client_id, request_id: int) -> None:
        finished = self.dispatcher.wait({request_id}, timeout=self.timeout)
        outcome = self.dispatcher.outcomes.get(request_id)
        if not finished or outcome is None:
            reply = {
                "id": client_id,
                "status": "timeout",
                "reason": f"no outcome within {self.timeout}s",
            }
        elif outcome.status == "released":
            reply = {
                "id": client_id,
                "status": "released",
                "accepted": outcome.accepted,
                "estimate": list(outcome.estimate),
                "elapsed_s": outcome.elapsed_s,
                "frontend": outcome.frontend,
                "release_bytes": (
                    len(outcome.release_frame)
                    if outcome.release_frame is not None
                    else 0
                ),
            }
        else:
            reply = {
                "id": client_id,
                "status": outcome.status,
                "frontend": outcome.frontend,
                "party": outcome.party,
                "reason": outcome.reason,
            }
        self._reply(conn, write_lock, reply)

    def _reply(self, conn, write_lock, reply: dict) -> None:
        data = (
            json.dumps(reply, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        try:
            with write_lock:
                conn.sendall(data)
        except (OSError, ReproError):
            return  # client hung up; the outcome stays in the dispatcher
        with self._lock:
            self.bytes_sent += len(data)

    def _discard(self, conn) -> None:
        with self._lock:
            self._conns.discard(conn)
        try:
            conn.close()
        except OSError:
            pass

    # Lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and drop every connection (idempotent).  The
        dispatcher — and any sessions still in flight — belong to the
        caller; draining it is the caller's decision."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)
