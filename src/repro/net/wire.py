"""Node-protocol framing over the typed message registry.

:mod:`repro.crypto.serialization` turns individual protocol messages into
tagged frames; this module adds the small amount of structure the role
nodes need on top of that:

* **setup specs** — public parameters and aggregation plans as bytes, so
  an analyst can ship ``pp`` to servers and clients and every process
  reconstructs an identical (same fingerprint) parameter set,
* **enrollment bundles** — one frame carrying a client's public broadcast
  plus its K private share messages, the unit the serving front-end
  ingests via ``Session.submit_prepared``,
* **RPC envelopes** — method-tagged request/reply frames the
  :class:`~repro.net.nodes.RemoteProver` proxy speaks to a
  :class:`~repro.net.nodes.ServerNode`,
* **control frames** — setup / finalize / release / shutdown signals,
* small list/matrix helpers (client-id lists, public-bit matrices).

Everything is length-prefixed and magic-tagged; malformed input raises
:class:`~repro.errors.EncodingError`, never a crash.
"""

from __future__ import annotations

import struct

from repro.core.params import PublicParams, _resolve_group
from repro.crypto.serialization import _decode_str
from repro.core.plan import AggregationPlan
from repro.crypto.pedersen import PedersenParams
from repro.errors import EncodingError, ReproError
from repro.utils.encoding import (
    bytes_to_int,
    decode_length_prefixed,
    encode_length_prefixed,
    int_to_bytes,
)

__all__ = [
    "encode_params",
    "decode_params",
    "encode_plan",
    "decode_plan",
    "encode_enrollment",
    "decode_enrollment",
    "split_enrollment",
    "encode_control",
    "decode_control",
    "encode_rpc",
    "decode_rpc",
    "encode_reply",
    "encode_abort_reply",
    "decode_reply",
    "encode_str_list",
    "decode_str_list",
    "encode_bytes_list",
    "decode_bytes_list",
    "encode_int_list",
    "decode_int_list",
    "encode_bit_matrix",
    "decode_bit_matrix",
    "frame_kind",
]

_MAGIC_PARAMS = b"repro.net.params.v1"
_MAGIC_PLAN = b"repro.net.plan.v1"
_MAGIC_ENROLL = b"repro.net.enroll.v1"
_MAGIC_CTRL = b"repro.net.ctrl.v1"
_MAGIC_RPC = b"repro.net.rpc.v1"
_MAGIC_REPLY = b"repro.net.reply.v1"

_REPLY_OK = b"ok"
_REPLY_ABORT = b"abort"


def _parts(data: bytes, magic: bytes, what: str) -> list[bytes]:
    parts = decode_length_prefixed(data)
    if not parts or parts[0] != magic:
        raise EncodingError(f"bad or missing {what} magic")
    return parts[1:]


def frame_kind(data: bytes) -> str:
    """Classify a frame by its leading magic ('enroll', 'ctrl', ...)."""
    parts = decode_length_prefixed(data)
    kinds = {
        _MAGIC_ENROLL: "enroll",
        _MAGIC_CTRL: "ctrl",
        _MAGIC_RPC: "rpc",
        _MAGIC_REPLY: "reply",
        _MAGIC_PARAMS: "params",
        _MAGIC_PLAN: "plan",
    }
    if not parts or parts[0] not in kinds:
        raise EncodingError("unknown frame kind")
    return kinds[parts[0]]


# Parameter and plan specs -----------------------------------------------------


def encode_params(params: PublicParams) -> bytes:
    """Public parameters as bytes; decoding reproduces the fingerprint.

    Only *named* groups travel (the name is the agreement; both sides
    re-derive generators locally), and ε/δ go as exact IEEE doubles so the
    reconstructed fingerprint — bound into every transcript — matches.
    """
    return encode_length_prefixed(
        _MAGIC_PARAMS,
        params.group.name.encode(),
        struct.pack(">d", params.epsilon),
        struct.pack(">d", params.delta),
        int_to_bytes(params.nb),
        int_to_bytes(params.num_provers),
        int_to_bytes(params.dimension),
    )


def decode_params(data: bytes) -> PublicParams:
    parts = _parts(data, _MAGIC_PARAMS, "params")
    if len(parts) != 6:
        raise EncodingError("params spec needs 6 fields")
    if len(parts[1]) != 8 or len(parts[2]) != 8:
        raise EncodingError("params epsilon/delta must be 8-byte doubles")
    try:
        group = _resolve_group(_decode_str(parts[0], "group name"))
    except (ReproError, ValueError) as exc:
        raise EncodingError(f"unknown group {parts[0]!r}: {exc}") from exc
    return PublicParams(
        pedersen=PedersenParams(group),
        epsilon=struct.unpack(">d", parts[1])[0],
        delta=struct.unpack(">d", parts[2])[0],
        nb=bytes_to_int(parts[3]),
        num_provers=bytes_to_int(parts[4]),
        dimension=bytes_to_int(parts[5]),
    )


def encode_plan(plan: AggregationPlan) -> bytes:
    return encode_length_prefixed(
        _MAGIC_PLAN,
        plan.validity.encode(),
        int_to_bytes(plan.lanes),
        int_to_bytes(plan.dimension),
        *[encode_int_list(row) for row in plan.lane_weights],
        encode_int_list(plan.noise_weights),
    )


def decode_plan(data: bytes) -> AggregationPlan:
    parts = _parts(data, _MAGIC_PLAN, "plan")
    if len(parts) < 4:
        raise EncodingError("plan spec needs validity, shape and weights")
    lanes = bytes_to_int(parts[1])
    dimension = bytes_to_int(parts[2])
    if len(parts) != 3 + lanes + 1:
        raise EncodingError(f"plan spec has {len(parts)} fields, expected {4 + lanes}")
    lane_weights = tuple(tuple(decode_int_list(raw)) for raw in parts[3:-1])
    if any(len(row) != dimension for row in lane_weights):
        raise EncodingError("plan lane weights do not match the declared dimension")
    return AggregationPlan(
        lane_weights=lane_weights,
        noise_weights=tuple(decode_int_list(parts[-1])),
        validity=_decode_str(parts[0], "plan validity"),
    )


# Enrollment bundles -----------------------------------------------------------


def encode_enrollment(broadcast, privates) -> bytes:
    """One client's Line 2 submission: broadcast + K private shares."""
    from repro.crypto.serialization import encode_message

    return encode_length_prefixed(
        _MAGIC_ENROLL,
        encode_message(broadcast),
        *[encode_message(message) for message in privates],
    )


def split_enrollment(data: bytes) -> tuple[bytes, list[bytes]]:
    """An enrollment's (broadcast frame, private share frames), undecoded.

    The sharded front-end forwards the broadcast frame to a shard worker
    verbatim — splitting without decoding means the bytes a shard
    validates are exactly the bytes the client sent, with no re-encoding
    on the dispatch path.
    """
    parts = _parts(data, _MAGIC_ENROLL, "enrollment")
    if len(parts) < 2:
        raise EncodingError("enrollment needs a broadcast and >= 1 share message")
    return parts[0], parts[1:]


def decode_enrollment(group, data: bytes):
    from repro.core.messages import ClientBroadcast, ClientShareMessage
    from repro.crypto.serialization import decode_message

    broadcast_frame, private_frames = split_enrollment(data)
    broadcast = decode_message(group, broadcast_frame)
    privates = [decode_message(group, raw) for raw in private_frames]
    if not isinstance(broadcast, ClientBroadcast) or not all(
        isinstance(m, ClientShareMessage) for m in privates
    ):
        raise EncodingError("enrollment bundle has wrong message types")
    return broadcast, privates


# Control and RPC envelopes ----------------------------------------------------


def encode_control(kind: str, *parts: bytes) -> bytes:
    return encode_length_prefixed(_MAGIC_CTRL, kind.encode(), *parts)


def decode_control(data: bytes) -> tuple[str, list[bytes]]:
    parts = _parts(data, _MAGIC_CTRL, "control")
    if not parts:
        raise EncodingError("control frame needs a kind")
    return _decode_str(parts[0], "control kind"), parts[1:]


def encode_rpc(method: str, *parts: bytes) -> bytes:
    return encode_length_prefixed(_MAGIC_RPC, method.encode(), *parts)


def decode_rpc(data: bytes) -> tuple[str, list[bytes]]:
    parts = _parts(data, _MAGIC_RPC, "rpc")
    if not parts:
        raise EncodingError("rpc frame needs a method")
    return _decode_str(parts[0], "rpc method"), parts[1:]


def encode_reply(*parts: bytes) -> bytes:
    return encode_length_prefixed(_MAGIC_REPLY, _REPLY_OK, *parts)


def encode_abort_reply(message: str) -> bytes:
    return encode_length_prefixed(_MAGIC_REPLY, _REPLY_ABORT, message.encode())


def decode_reply(data: bytes) -> tuple[bool, list[bytes]]:
    """Returns (ok, parts); an abort reply carries [reason]."""
    parts = _parts(data, _MAGIC_REPLY, "reply")
    if not parts or parts[0] not in (_REPLY_OK, _REPLY_ABORT):
        raise EncodingError("reply frame needs an ok/abort status")
    return parts[0] == _REPLY_OK, parts[1:]


# Small payload helpers --------------------------------------------------------


def encode_str_list(items) -> bytes:
    return encode_length_prefixed(*[item.encode() for item in items])


def decode_str_list(data: bytes) -> list[str]:
    return [_decode_str(raw, "list entry") for raw in decode_length_prefixed(data)]


def encode_bytes_list(items) -> bytes:
    return encode_length_prefixed(*items)


def decode_bytes_list(data: bytes) -> list[bytes]:
    return decode_length_prefixed(data)


def encode_int_list(values) -> bytes:
    out = []
    for value in values:
        if value < 0:
            raise EncodingError("int lists carry non-negative values")
        out.append(int_to_bytes(value))
    return encode_length_prefixed(*out)


def decode_int_list(data: bytes) -> list[int]:
    return [bytes_to_int(raw) for raw in decode_length_prefixed(data)]


def encode_bit_matrix(bits: list[list[int]]) -> bytes:
    """A public-bit matrix (rows × lanes of {0,1}) as one byte per bit."""
    rows = len(bits)
    lanes = len(bits[0]) if rows else 0
    if any(len(row) != lanes for row in bits):
        raise EncodingError("ragged bit matrix")
    flat = bytes(bit for row in bits for bit in row)
    if any(b not in (0, 1) for b in flat):
        raise EncodingError("bit matrix entries must be 0/1")
    return encode_length_prefixed(int_to_bytes(rows), int_to_bytes(lanes), flat)


def decode_bit_matrix(data: bytes) -> list[list[int]]:
    parts = decode_length_prefixed(data)
    if len(parts) != 3:
        raise EncodingError("bit matrix needs (rows, lanes, bits)")
    rows, lanes = bytes_to_int(parts[0]), bytes_to_int(parts[1])
    flat = parts[2]
    if len(flat) != rows * lanes:
        raise EncodingError("bit matrix payload does not match its shape")
    if any(b not in (0, 1) for b in flat):
        raise EncodingError("bit matrix entries must be 0/1")
    return [list(flat[j * lanes : (j + 1) * lanes]) for j in range(rows)]
