"""Transports: named-peer frame channels with exact byte accounting.

A :class:`Transport` is one node's view of the network: it can ``send``
an opaque frame (bytes) to a named peer and block on ``recv`` from a
named peer.  The node protocol is synchronous and star-shaped (servers
and clients talk to the analyst front-end), so three methods suffice and
every implementation stays small:

* :class:`InMemoryTransport` — an adapter over
  :class:`repro.mpc.bus.SimulatedNetwork`, so in-memory node runs reuse
  the simulator's ordered channels and its (now exact, frames are bytes)
  traffic accounting.  Thread-safe: nodes may run on threads.
* :class:`MultiprocessTransport` — ``multiprocessing`` duplex pipes;
  :func:`multiprocess_star` builds the analyst-centred topology.
* :class:`SocketTransport` — TCP with 4-byte big-endian length-prefixed
  frames and a one-frame name handshake.

All transports count frames and bytes both ways; a missing peer or a
timeout raises :class:`~repro.errors.ProtocolAbort` naming the silent
party, exactly as the simulator's ``receive`` does.
"""

from __future__ import annotations

import abc
import errno
import socket
import struct
import threading
import time
from multiprocessing import Pipe
from multiprocessing.connection import Connection

from repro.errors import ParameterError, ProtocolAbort
from repro.mpc.bus import SimulatedNetwork

__all__ = [
    "Transport",
    "InMemoryHub",
    "InMemoryTransport",
    "MultiprocessTransport",
    "SocketTransport",
    "multiprocess_star",
    "DEFAULT_MAX_FRAME_BYTES",
    "SESSION_ANY",
    "pack_frame",
    "pack_handshake",
    "split_header_word",
    "check_session_id",
    "check_frame_size",
]

_LEN = struct.Struct(">I")

# Frame header versioning.  A v1 header is the 4-byte big-endian payload
# length alone; legitimate frames are capped far below 2**31 bytes, so
# the top bit of the length word is free to mark a v2 header, which
# carries a 4-byte session id between the length and the payload:
#
#   v1 := len(frame)                    . frame           (session 0)
#   v2 := (len(frame) | _V2_FLAG) . sid . frame           (session sid)
#
# Session 0 is always written as v1, so a session-unaware peer and a
# session-aware one exchange byte-identical streams for the default
# session — sync and async transports interoperate on the wire.
_V2_FLAG = 0x8000_0000

# Handshake scope marker: a connection announcing SESSION_ANY serves
# every session (an async multi-session host).  Never a frame's session.
SESSION_ANY = 0xFFFF_FFFF

# Upper bound on a single frame an unauthenticated TCP peer can make a
# node buffer: well above any legitimate protocol frame (a nb=4096
# coin-commitment message over modp-2048 is a few MiB), far below the
# 4 GiB the length prefix could otherwise announce.  Must stay below
# _V2_FLAG so the version bit can never collide with a legal length.
DEFAULT_MAX_FRAME_BYTES = 1 << 28  # 256 MiB

# The pre-authentication handshake carries only a peer name; anything
# bigger is hostile and must not be buffered at the full frame cap.
_HANDSHAKE_MAX_BYTES = 1024

# Cap on recorded dropped-handshake diagnostics per listener.
_MAX_DROPPED_NOTES = 32


def pack_frame(frame: bytes, session: int = 0) -> bytes:
    """Wire bytes for one frame: v1 header for session 0, v2 otherwise."""
    if len(frame) >= _V2_FLAG:
        raise ParameterError("frame too large for the length prefix")
    if session == 0:
        return _LEN.pack(len(frame)) + frame
    if not 0 < session < SESSION_ANY:
        raise ParameterError("session id out of range")
    return _LEN.pack(_V2_FLAG | len(frame)) + _LEN.pack(session) + frame


def pack_handshake(name: str, session: int = 0) -> bytes:
    """The one-frame name announcement; its header carries the scope.

    Scope 0 is the v1 handshake every legacy peer already sends;
    ``SESSION_ANY`` announces a multi-session host.
    """
    if not 0 <= session <= SESSION_ANY:
        raise ParameterError("session id out of range")
    payload = name.encode()
    if session == 0:
        return _LEN.pack(len(payload)) + payload
    return _LEN.pack(_V2_FLAG | len(payload)) + _LEN.pack(session) + payload


def split_header_word(word: int) -> tuple[int, bool]:
    """A frame header's first word → (payload size, session id follows)."""
    if word & _V2_FLAG:
        return word & ~_V2_FLAG, True
    return word, False


def check_session_id(session: int, *, party: str, handshake: bool) -> None:
    """Reject v2 session ids the format reserves (0 is always written as
    v1; SESSION_ANY is a handshake scope, hostile in a data frame)."""
    if session == 0 or (session == SESSION_ANY and not handshake):
        raise ProtocolAbort(f"{party!r} sent an invalid v2 session id", party=party)


def check_frame_size(size: int, max_bytes: int, party: str) -> None:
    """The announced size is untrusted: abort before any buffering."""
    if size > max_bytes:
        raise ProtocolAbort(
            f"{party!r} announced an oversized frame ({size} bytes)", party=party
        )


class Transport(abc.ABC):
    """One node's frame channels to its named peers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    @abc.abstractmethod
    def _send(self, peer: str, frame: bytes) -> None: ...

    @abc.abstractmethod
    def _recv(self, peer: str, timeout: float | None) -> bytes: ...

    def send(self, peer: str, frame: bytes) -> None:
        """Deliver ``frame`` to ``peer`` (ordered per peer pair)."""
        if not isinstance(frame, (bytes, bytearray)):
            raise ParameterError("transports carry bytes frames only")
        self._send(peer, bytes(frame))
        self.bytes_sent += len(frame)
        self.frames_sent += 1

    def recv(self, peer: str, timeout: float | None = None) -> bytes:
        """Block until the next frame from ``peer`` arrives.

        Raises :class:`ProtocolAbort` (party=peer) on timeout or a closed
        channel — in a synchronous protocol a missing message is an abort.
        """
        frame = self._recv(peer, timeout)
        self.bytes_received += len(frame)
        self.frames_received += 1
        return frame

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


# In-memory -------------------------------------------------------------------


class InMemoryHub:
    """Shared substrate for in-memory transports (one per simulated host).

    Wraps a :class:`SimulatedNetwork` — frames land in its ordered queues
    and its per-sender byte accounting, which is exact here because every
    payload is already encoded bytes — plus a condition variable so node
    threads can block on ``recv``.
    """

    def __init__(self, network: SimulatedNetwork | None = None) -> None:
        self.network = network if network is not None else SimulatedNetwork()
        self.condition = threading.Condition()

    def endpoint(self, name: str) -> "InMemoryTransport":
        with self.condition:
            if name not in self.network.parties:
                self.network.register(name)
        return InMemoryTransport(name, self)


class InMemoryTransport(Transport):
    """Adapter presenting one :class:`InMemoryHub` party as a transport."""

    def __init__(self, name: str, hub: InMemoryHub) -> None:
        super().__init__(name)
        self.hub = hub

    def _send(self, peer: str, frame: bytes) -> None:
        with self.hub.condition:
            self.hub.network.send(self.name, peer, frame)
            self.hub.condition.notify_all()

    def _recv(self, peer: str, timeout: float | None) -> bytes:
        # Monotonic deadline: the hub condition wakes on *any* traffic, so
        # waiting the full timeout per wake would let unrelated sends
        # extend the block indefinitely.
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.hub.condition:
            while True:
                frame = self.hub.network.try_receive(self.name, peer)
                if frame is not None:
                    return frame
                if deadline is None:
                    self.hub.condition.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ProtocolAbort(
                        f"{self.name!r} timed out waiting for {peer!r}", party=peer
                    )
                self.hub.condition.wait(remaining)


# Multiprocessing pipes -------------------------------------------------------


class MultiprocessTransport(Transport):
    """Duplex ``multiprocessing`` pipes, one per peer.

    Construct via :func:`multiprocess_star`; the per-peer
    :class:`~multiprocessing.connection.Connection` objects are inherited
    by forked worker processes.
    """

    def __init__(self, name: str, connections: dict[str, Connection]) -> None:
        super().__init__(name)
        self._connections = dict(connections)

    def _connection(self, peer: str) -> Connection:
        conn = self._connections.get(peer)
        if conn is None:
            raise ParameterError(f"{self.name!r} has no channel to {peer!r}")
        return conn

    def _send(self, peer: str, frame: bytes) -> None:
        self._connection(peer).send_bytes(frame)

    def _recv(self, peer: str, timeout: float | None) -> bytes:
        conn = self._connection(peer)
        try:
            if timeout is not None and not conn.poll(timeout):
                raise ProtocolAbort(
                    f"{self.name!r} timed out waiting for {peer!r}", party=peer
                )
            return conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ProtocolAbort(
                f"channel to {peer!r} closed: {exc}", party=peer
            ) from exc

    def close(self) -> None:
        for conn in self._connections.values():
            conn.close()


def multiprocess_star(
    center: str, peers: list[str]
) -> tuple[MultiprocessTransport, dict[str, MultiprocessTransport]]:
    """Pipes for the serving topology: every peer talks to ``center``.

    Returns the center's transport plus one single-channel transport per
    peer; create before forking so both ends inherit their connections.
    """
    if len(set(peers)) != len(peers) or center in peers:
        raise ParameterError("star peers must be unique and distinct from center")
    center_conns: dict[str, Connection] = {}
    peer_transports: dict[str, MultiprocessTransport] = {}
    for peer in peers:
        center_end, peer_end = Pipe(duplex=True)
        center_conns[peer] = center_end
        peer_transports[peer] = MultiprocessTransport(peer, {center: peer_end})
    return MultiprocessTransport(center, center_conns), peer_transports


# TCP sockets -----------------------------------------------------------------


class SocketTransport(Transport):
    """TCP frame channels: 4-byte big-endian length prefix per frame.

    The listening side (the analyst front-end) calls :meth:`listen` then
    :meth:`accept`; connecting sides call :meth:`connect`, which sends a
    one-frame handshake carrying the connector's name so the listener can
    map sockets to peers.

    ``max_frame_bytes`` caps what a peer's length prefix can make this
    node buffer (default :data:`DEFAULT_MAX_FRAME_BYTES`); an oversized
    announcement aborts the channel before any allocation.

    ``session`` binds every frame this transport sends and accepts to one
    protocol session (see the v1/v2 header notes at :func:`pack_frame`).
    The default 0 is the legacy wire format unchanged; a non-zero binding
    lets a plain synchronous peer serve exactly one session of a
    multiplexing :class:`repro.net.aio.SessionMux` front-end.
    """

    def __init__(
        self,
        name: str,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        session: int = 0,
    ) -> None:
        super().__init__(name)
        if not 1 <= max_frame_bytes < _V2_FLAG:
            raise ParameterError("max_frame_bytes must be in [1, 2**31)")
        if not 0 <= session < SESSION_ANY:
            raise ParameterError("session id out of range")
        self.max_frame_bytes = max_frame_bytes
        self.session = session
        self.dropped_handshakes: list[str] = []
        self._dropped_overflow = 0
        self._sockets: dict[str, socket.socket] = {}
        self._listener: socket.socket | None = None
        self.port: int | None = None

    # Construction -----------------------------------------------------------

    @classmethod
    def listen(
        cls,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 16,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        session: int = 0,
    ) -> "SocketTransport":
        transport = cls(name, max_frame_bytes=max_frame_bytes, session=session)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(backlog)
        transport._listener = listener
        transport.port = listener.getsockname()[1]
        return transport

    def accept(
        self,
        count: int,
        timeout: float | None = 30.0,
        *,
        expected: list[str] | None = None,
    ) -> list[str]:
        """Accept ``count`` handshaking peers; returns their names.

        A connection whose handshake is broken — unreadable frame,
        non-UTF-8 name, a name already claimed, or (with ``expected``) a
        name outside the expected peer set — is dropped and accepting
        continues: an unauthenticated peer must not be able to kill the
        listener.  ``timeout`` is an overall monotonic deadline for the
        whole call (never re-armed per connection), so hostile peers can
        at worst exhaust it, after which the abort message names every
        dropped handshake — also kept on :attr:`dropped_handshakes` — so
        an honest misconfiguration (two workers sharing a name) stays
        diagnosable.

        Names are first-come-first-served: a squatter racing an expected
        peer to its name degrades to the malicious-server scenario ΠBin
        already tolerates (see DESIGN.md); a hardened deployment would
        authenticate the handshake.
        """
        if self._listener is None:
            raise ParameterError("accept requires a listening transport")
        deadline = None if timeout is None else time.monotonic() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            left = deadline - time.monotonic()
            if left <= 0:
                raise ProtocolAbort(self._accept_timeout_message())  # repro: allow[REP004] -- no single culprit: the timeout message names every absent peer
            return left

        names: list[str] = []
        while len(names) < count:
            try:
                self._listener.settimeout(remaining())
                sock, _ = self._listener.accept()
            except TimeoutError as exc:  # socket.timeout is an alias
                raise ProtocolAbort(self._accept_timeout_message()) from exc  # repro: allow[REP004] -- no single culprit: the timeout message names every absent peer
            except OSError as exc:
                # A connection that died in the accept queue (RST) is the
                # peer's problem; anything else (EMFILE, EBADF, ...) is a
                # listener failure that retrying would busy-spin on.
                if exc.errno not in (errno.ECONNABORTED, errno.ECONNRESET):
                    raise
                self._note_dropped("<aborted connection>")
                continue
            # Taken before the read so deadline expiry propagates with
            # the accept-timeout message instead of being misrecorded as
            # this peer's unreadable handshake.
            handshake_timeout = remaining()
            try:
                scope, raw_name = _read_session_frame(
                    sock,
                    handshake_timeout,
                    party="connecting peer",
                    max_bytes=_HANDSHAKE_MAX_BYTES,
                    handshake=True,
                )
                peer = raw_name.decode()
            except (ProtocolAbort, UnicodeDecodeError):
                sock.close()
                # Re-raises with the accept-timeout message if the overall
                # deadline expired mid-read — that peer did nothing wrong
                # and must not be recorded as a bad handshake.
                remaining()
                self._note_dropped("<unreadable handshake>")
                continue
            if scope not in (SESSION_ANY, self.session):
                # A peer bound to a different session has no business on a
                # single-session listener — connect it to a SessionMux.
                sock.close()
                self._note_dropped(
                    f"session-{scope} handshake from {peer[:64]!r} "
                    f"on a session-{self.session} listener"
                )
                continue
            if expected is not None and peer not in expected:
                sock.close()
                self._note_dropped(f"unexpected name {peer[:64]!r}")
                continue
            if peer in self._sockets:
                sock.close()
                self._note_dropped(f"duplicate name {peer[:64]!r}")
                continue
            self._sockets[peer] = sock
            names.append(peer)
        return names

    def _note_dropped(self, label: str) -> None:
        # Bounded: hostile connections must not grow the diagnostic list
        # (and the eventual abort message) without limit.
        if len(self.dropped_handshakes) < _MAX_DROPPED_NOTES:
            self.dropped_handshakes.append(label)
        else:
            self._dropped_overflow += 1

    def _accept_timeout_message(self) -> str:
        message = "timed out accepting peers"
        if self.dropped_handshakes:
            dropped = ", ".join(self.dropped_handshakes)
            if self._dropped_overflow:
                dropped += f", and {self._dropped_overflow} more"
            message += f" (dropped: {dropped})"
        return message

    @classmethod
    def connect(
        cls,
        name: str,
        peer: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        session: int = 0,
    ) -> "SocketTransport":
        """Connect and handshake.  ``session`` binds the channel: 0 (the
        default) emits the legacy v1 handshake and frames byte-for-byte;
        ``session=s`` announces the scope so a session-multiplexing
        listener (:class:`repro.net.aio.AsyncSocketTransport`) routes this
        connection's traffic to session *s*."""
        transport = cls(name, max_frame_bytes=max_frame_bytes, session=session)
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.sendall(pack_handshake(name, session))
        transport._sockets[peer] = sock
        return transport

    # Frame IO ---------------------------------------------------------------

    def _socket(self, peer: str) -> socket.socket:
        sock = self._sockets.get(peer)
        if sock is None:
            raise ParameterError(f"{self.name!r} has no socket to {peer!r}")
        return sock

    def _send(self, peer: str, frame: bytes) -> None:
        self._socket(peer).sendall(pack_frame(frame, self.session))

    def _recv(self, peer: str, timeout: float | None) -> bytes:
        session, frame = _read_session_frame(
            self._socket(peer), timeout, party=peer, max_bytes=self.max_frame_bytes
        )
        if session != self.session:
            raise ProtocolAbort(
                f"{peer!r} sent a session-{session} frame on a "
                f"session-{self.session} channel",
                party=peer,
            )
        return frame

    def close(self) -> None:
        for sock in self._sockets.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        if self._listener is not None:
            self._listener.close()


def _read_session_frame(
    sock: socket.socket,
    timeout: float | None,
    *,
    party: str,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    handshake: bool = False,
) -> tuple[int, bytes]:
    """One (session, frame) off a socket; v1 headers decode as session 0.

    ``handshake`` admits the :data:`SESSION_ANY` scope marker, which is
    hostile anywhere else.
    """
    # One monotonic deadline for the whole frame: re-arming the socket
    # timeout per recv would let a byte-trickling peer hold the read open
    # for timeout-per-byte instead of timeout-per-frame.
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        word = _LEN.unpack(_read_exact(sock, _LEN.size, party, deadline))[0]
        size, has_session = split_header_word(word)
        session = 0
        if has_session:
            session = _LEN.unpack(_read_exact(sock, _LEN.size, party, deadline))[0]
            check_session_id(session, party=party, handshake=handshake)
        check_frame_size(size, max_bytes, party)
        return session, _read_exact(sock, size, party, deadline)
    except TimeoutError as exc:
        raise ProtocolAbort(f"timed out waiting for {party!r}", party=party) from exc
    except OSError as exc:
        raise ProtocolAbort(f"socket to {party!r} failed: {exc}", party=party) from exc


def _read_exact(
    sock: socket.socket, n: int, party: str, deadline: float | None
) -> bytes:
    buffer = bytearray()
    while len(buffer) < n:
        if deadline is None:
            sock.settimeout(None)
        else:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("frame deadline elapsed")
            sock.settimeout(remaining)
        chunk = sock.recv(n - len(buffer))
        if not chunk:
            raise ProtocolAbort(f"{party!r} closed the connection", party=party)
        buffer += chunk
    return bytes(buffer)
