"""A dispatcher-orchestrated serving fleet: many front-ends, one admission point.

One :class:`~repro.net.aio.SessionMux` front-end overlaps N sessions'
idle time inside a single process (PR 5); one
:class:`~repro.net.shard.ShardedAnalyst` fans a single session's
verification across S workers (PR 4).  Neither scales past one
front-end process — the ROADMAP's top open item.  This module composes
them into a *fleet*:

* :class:`FleetConfig` — the declarative deployment: pool size,
  per-front-end session capacity, shard count per front-end, protocol
  knobs.  Loadable from a JSON file (``repro serve --fleet
  --fleet-config fleet.json``).
* :class:`FleetDispatcher` — the admission point.  Spawns one
  front-end worker process per pool slot, each running a *dynamic*
  ``SessionMux`` (sessions placed one at a time, up to ``capacity``
  concurrent).  A monitor thread multiplexes every worker's command
  pipe and process sentinel: it collects outcomes, polls per-worker
  liveness/stats on a health interval, steals queued sessions from a
  hot front-end into an idle one, re-attributes a crashed worker's
  in-flight sessions as *crashed* outcomes (never hangs), and respawns
  the worker up to ``max_restarts`` times.
* :func:`run_fleet` — the ``repro serve --fleet`` driver: submit a
  stream of session requests, wait, drain (stop admitting, finish
  in-flight, terminate), and verify the cross-cutting invariant —
  every fleet-served release is byte-identical to a seeded in-process
  :class:`repro.api.Session` run with the same seed and chunking.

Inside each worker a placed session gets its own *scoped* peer threads
— K :class:`~repro.net.nodes.ServerNode`, S
:class:`~repro.net.shard.ShardWorker` (the long-promised ``--async
--shards`` composition) and one :class:`~repro.net.nodes.ClientRunner`
— dialing back over blocking ``SocketTransport.connect(...,
session=s)`` channels, which the mux's async listener demultiplexes by
handshake scope.  In a real deployment those peers are remote
processes; session-scoped threads keep the fleet demo single-machine
while exercising exactly the wire paths remote peers would.

Failure semantics reuse PR 5's attribution machinery: a session that
dies mid-phase has its peers told to stop via the one-way ``abort``
control (:func:`repro.net.nodes.abort_peers` semantics) instead of
being left to time out, and the outcome names the party.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import get_context

from repro.api.queries import Query
from repro.api.session import Session
from repro.crypto.serialization import encode_message
from repro.errors import ParameterError, ProtocolAbort, ReproError
from repro.net import wire
from repro.net.aio import AsyncSocketTransport, SessionMux, SessionSpec
from repro.net.metrics import ServingMetrics
from repro.net.nodes import ClientRunner, ServerNode
from repro.net.shard import ShardWorker
from repro.net.transport import SocketTransport
from repro.utils.rng import RNG, SeededRNG, SystemRNG

__all__ = [
    "FleetConfig",
    "FleetDispatcher",
    "SessionRequest",
    "SessionOutcome",
    "run_fleet",
    "session_seed",
    "session_values",
]


def session_seed(seed: str | None, session: int) -> str | None:
    """Root seed for one session of a multi-session run: ``{seed}/s{s}``,
    so session *s* is reproducible solo via
    ``Session(query, rng=SeededRNG(session_seed(seed, s)))``."""
    return None if seed is None else f"{seed}/s{session}"


def session_values(values: list, session: int) -> list:
    """Distinct-but-derived per-session populations for demos/benchmarks:
    session *s* sees the shared values rotated by *s*."""
    shift = session % len(values) if values else 0
    return values[shift:] + values[:shift]


def _request_rng(seed: str | None) -> RNG:
    return SeededRNG(seed) if seed is not None else SystemRNG()


def _peer_rng(seed: str | None, name: str) -> RNG:
    # Matches the in-process engine: prover k draws from root.fork(name).
    return SeededRNG(seed).fork(name) if seed is not None else SystemRNG()


@dataclass
class FleetConfig:
    """The declarative fleet deployment.

    ``frontends`` front-end worker processes, each multiplexing up to
    ``capacity`` concurrent sessions; ``shards > 0`` backs every session
    with that many :class:`ShardWorker` peers (the ``--async --shards``
    composition).  The remaining knobs are the familiar serving
    parameters, applied uniformly across the pool.
    """

    frontends: int = 2
    capacity: int = 2
    shards: int = 0
    num_servers: int = 2
    group: str = "p64-sim"
    nb_override: int | None = 64
    chunk_size: int | None = None
    host: str = "127.0.0.1"
    timeout: float = 60.0
    health_interval: float = 0.25
    max_restarts: int = 2
    reply_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.frontends < 1:
            raise ParameterError("frontends must be >= 1")
        if self.capacity < 1:
            raise ParameterError("capacity must be >= 1")
        if self.shards < 0:
            raise ParameterError("shards must be >= 0 (0 = unsharded sessions)")
        if self.num_servers < 1:
            raise ParameterError("num_servers must be >= 1")
        if self.max_restarts < 0:
            raise ParameterError("max_restarts must be >= 0")
        if self.health_interval <= 0:
            raise ParameterError("health_interval must be > 0")

    @classmethod
    def from_file(cls, path: str) -> "FleetConfig":
        """Load a config from a JSON object file; unknown keys are errors
        (a typo silently ignored is a deployment mis-sized silently)."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ParameterError("fleet config must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ParameterError(f"unknown fleet config keys: {unknown}")
        return cls(**data)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class SessionRequest:
    """One admitted unit of work: a full protocol session.

    ``seed`` is the session's root seed (``None`` = system randomness,
    which also disables byte-identity verification for it);
    ``reply_delay`` overrides the fleet-wide simulated prover latency
    for this session (benchmark/test knob).
    """

    request_id: int
    query: Query
    values: list
    seed: str | None = None
    reply_delay: float | None = None


@dataclass
class SessionOutcome:
    """How one admitted session ended.

    ``status`` is ``"released"`` (the release is in ``release_frame``),
    ``"aborted"`` (the protocol rejected it; ``party``/``reason`` carry
    the attribution) or ``"crashed"`` (infrastructure died under it —
    e.g. its front-end process was killed; attributed to that worker,
    never left hanging).
    """

    request_id: int
    frontend: str
    status: str
    accepted: bool = False
    estimate: tuple = ()
    release_frame: bytes | None = None
    chunk_size: int | None = None
    elapsed_s: float | None = None
    party: str | None = None
    reason: str | None = None


# Front-end worker process -----------------------------------------------------


def _server_peer_main(name, host, port, sid, seed, timeout, reply_delay):
    try:
        transport = SocketTransport.connect(
            name, "analyst", host, port, session=sid, timeout=timeout
        )
    except OSError:
        return
    try:
        ServerNode(
            transport, _peer_rng(seed, name), timeout=timeout, reply_delay=reply_delay
        ).run()
    except (ReproError, SystemExit):
        pass
    finally:
        transport.close()


def _shard_peer_main(name, host, port, sid, timeout):
    try:
        transport = SocketTransport.connect(
            name, "analyst", host, port, session=sid, timeout=timeout
        )
    except OSError:
        return
    try:
        ShardWorker(transport, timeout=timeout).run()
    except (ReproError, SystemExit):
        pass
    finally:
        transport.close()


def _clients_peer_main(host, port, sid, query, values, seed, timeout):
    try:
        transport = SocketTransport.connect(
            "clients", "analyst", host, port, session=sid, timeout=timeout
        )
    except OSError:
        return
    try:
        ClientRunner(
            transport, query, values, rng=_request_rng(seed), timeout=timeout
        ).run()
    except (ReproError, SystemExit):
        pass
    finally:
        transport.close()


def _frontend_main(name: str, conn, config: FleetConfig) -> None:
    """Worker process entry: run one front-end until told to stop."""
    try:
        asyncio.run(_FrontEnd(name, conn, config).run())
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown race
            pass


class _FrontEnd:
    """One fleet worker: a dynamic :class:`SessionMux` plus the command
    loop that binds it to the dispatcher's pipe.

    Commands in: ``place`` (a :class:`SessionRequest`), ``steal`` (give
    back queued-but-unstarted requests), ``ping`` (report stats),
    ``drain`` (finish everything, then exit), ``stop`` (exit now).
    Events out: ``released`` / ``aborted`` / ``failed`` per session,
    ``stats`` per ping, ``stolen`` per steal, ``drained`` once idle
    after a drain.
    """

    def __init__(self, name: str, conn, config: FleetConfig) -> None:
        self.name = name
        self.conn = conn
        self.config = config
        self.server_names = [f"prover-{k}" for k in range(config.num_servers)]
        self.shard_names = tuple(f"shard-{j}" for j in range(config.shards))
        self.pending: deque[SessionRequest] = deque()
        self.inflight: dict[int, asyncio.Task] = {}
        self.completed = 0
        self.aborted = 0
        self.draining = False
        self._next_session = 0
        self._commands: asyncio.Queue | None = None
        self.transport: AsyncSocketTransport | None = None
        self.mux: SessionMux | None = None
        self._accept_lock: asyncio.Lock | None = None

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self._commands = asyncio.Queue()
        self._accept_lock = asyncio.Lock()
        self.transport = await AsyncSocketTransport.listen("analyst", self.config.host)
        # The listener stays open for the worker's whole life (sessions
        # arrive dynamically), so it cannot lock down; the standing
        # empty filter drops every handshake that no placement is
        # expecting right now.
        self.transport.default_expected = []
        self.mux = SessionMux(
            None,
            self.transport,
            self.server_names,
            timeout=self.config.timeout,
            max_concurrency=self.config.capacity,
        )
        reader = threading.Thread(
            target=self._read_commands, args=(loop,), daemon=True
        )
        reader.start()
        try:
            while True:
                command = await self._commands.get()
                cmd = command.get("cmd")
                if cmd == "place":
                    self.pending.append(command["request"])
                    self._pump()
                elif cmd == "steal":
                    self._steal(int(command.get("count", 1)))
                elif cmd == "ping":
                    self._send_stats()
                elif cmd == "drain":
                    self.draining = True
                    self._pump()
                    self._maybe_drained()
                elif cmd in ("stop", "_exit"):
                    break
        finally:
            for task in list(self.inflight.values()):
                task.cancel()
            if self.inflight:
                await asyncio.gather(
                    *self.inflight.values(), return_exceptions=True
                )
            self.mux.close()
            await self.transport.aclose()

    def _read_commands(self, loop) -> None:
        """Pipe → asyncio queue bridge (runs on its own thread)."""
        while True:
            try:
                command = self.conn.recv()
            except (EOFError, OSError):
                # Dispatcher gone: treat as stop so the worker exits
                # instead of serving headless forever.
                command = {"cmd": "stop"}
            try:
                loop.call_soon_threadsafe(self._commands.put_nowait, command)
            except RuntimeError:  # loop already closed
                return
            if command.get("cmd") == "stop":
                return

    def _send(self, event: dict) -> None:
        try:
            self.conn.send(event)
        except (OSError, ValueError, BrokenPipeError):
            pass  # dispatcher gone; the stop path will follow

    def _send_stats(self) -> None:
        self._send(
            {
                "event": "stats",
                "frontend": self.name,
                "in_flight": len(self.inflight),
                "pending": len(self.pending),
                "completed": self.completed,
                "aborted": self.aborted,
            }
        )

    def _steal(self, count: int) -> None:
        # Give back the newest queued requests (the oldest are closest
        # to a free slot here); an empty list is a valid answer and
        # clears the dispatcher's outstanding-steal flag.
        taken = []
        while self.pending and len(taken) < count:
            taken.append(self.pending.pop())
        self._send({"event": "stolen", "frontend": self.name, "requests": taken})
        self._maybe_drained()

    def _pump(self) -> None:
        while self.pending and len(self.inflight) < self.config.capacity:
            request = self.pending.popleft()
            task = asyncio.ensure_future(self._serve(request))
            self.inflight[request.request_id] = task
            task.add_done_callback(
                lambda t, rid=request.request_id: self._finished(rid, t)
            )

    def _finished(self, request_id: int, task: asyncio.Task) -> None:
        self.inflight.pop(request_id, None)
        if not task.cancelled():
            task.exception()  # consumed: _serve reported the outcome itself
        self._pump()
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        if self.draining and not self.inflight and not self.pending:
            self._send({"event": "drained", "frontend": self.name})
            self._commands.put_nowait({"cmd": "_exit"})

    async def _serve(self, request: SessionRequest) -> None:
        sid = self._next_session
        self._next_session += 1
        start = time.perf_counter()
        peer_names = [*self.server_names, *self.shard_names, "clients"]
        threads: list[threading.Thread] = []
        try:
            # Serialize placements through the accept: scoped peers of
            # one session must all handshake under this session's pins
            # before the next placement arms different ones.  The
            # standing filter mirrors the pins from the moment the peer
            # threads exist, so a handshake racing ahead of accept() is
            # admitted, not dropped.
            async with self._accept_lock:
                pins = [(name, sid) for name in peer_names]
                self.transport.default_expected = pins
                try:
                    threads = self._start_peers(request, sid)
                    await self.transport.accept(
                        len(pins), self.config.timeout, expected=pins
                    )
                finally:
                    self.transport.default_expected = []
            chunk = self.config.chunk_size
            if self.shard_names and chunk is None:
                # Pin the sharded default explicitly (at least two
                # chunks per shard) so the outcome can name the chunk
                # size the solo-replay equivalence check must use.
                params = request.query.build_params(
                    num_provers=len(self.server_names),
                    group=self.config.group,
                    nb_override=self.config.nb_override,
                )
                chunk = max(1, -(-params.nb // (2 * len(self.shard_names))))
            spec = SessionSpec(
                request.query,
                rng=_request_rng(request.seed),
                group=self.config.group,
                nb_override=self.config.nb_override,
                chunk_size=chunk,
                shards=self.shard_names,
            )
            result = await self.mux.serve_session(sid, spec)
        except ProtocolAbort as exc:
            await self._abort_session_peers(sid, str(exc))
            self.aborted += 1
            self._send(
                {
                    "event": "aborted",
                    "frontend": self.name,
                    "request_id": request.request_id,
                    "party": exc.party,
                    "reason": str(exc),
                }
            )
        except asyncio.CancelledError:
            await self._abort_session_peers(sid, "front-end stopping")
            raise
        except Exception as exc:  # repro: allow[REP004] -- supervisor boundary: any unexpected failure becomes an attributed 'failed' event and the session's peers are aborted, never a hang
            await self._abort_session_peers(sid, f"front-end failure: {exc}")
            self.aborted += 1
            self._send(
                {
                    "event": "failed",
                    "frontend": self.name,
                    "request_id": request.request_id,
                    "reason": f"{type(exc).__name__}: {exc}",
                }
            )
        else:
            self.completed += 1
            self._send(
                {
                    "event": "released",
                    "frontend": self.name,
                    "request_id": request.request_id,
                    "accepted": result.release.accepted,
                    "estimate": tuple(result.release.estimate),
                    "release": encode_message(result.release),
                    "chunk_size": chunk,
                    "elapsed_s": time.perf_counter() - start,
                    # Engine stage timings (including the per-phase
                    # ``phase:*`` entries) travel with the outcome so the
                    # dispatcher's /metrics histograms see work done in
                    # worker processes.
                    "stages": dict(result.timer.stages),
                }
            )
        finally:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._join_peers, threads)
            await self.transport.release_session(sid)

    def _start_peers(self, request: SessionRequest, sid: int) -> list:
        host, port = self.config.host, self.transport.port
        delay = (
            request.reply_delay
            if request.reply_delay is not None
            else self.config.reply_delay
        )
        timeout = self.config.timeout
        threads = []
        for name in self.server_names:
            threads.append(
                threading.Thread(
                    target=_server_peer_main,
                    args=(name, host, port, sid, request.seed, timeout, delay),
                    name=f"{self.name}-{name}-s{sid}",
                    daemon=True,
                )
            )
        for name in self.shard_names:
            threads.append(
                threading.Thread(
                    target=_shard_peer_main,
                    args=(name, host, port, sid, timeout),
                    name=f"{self.name}-{name}-s{sid}",
                    daemon=True,
                )
            )
        threads.append(
            threading.Thread(
                target=_clients_peer_main,
                args=(
                    host,
                    port,
                    sid,
                    request.query,
                    list(request.values),
                    request.seed,
                    timeout,
                ),
                name=f"{self.name}-clients-s{sid}",
                daemon=True,
            )
        )
        for thread in threads:
            thread.start()
        return threads

    async def _abort_session_peers(self, sid: int, reason: str) -> None:
        """Session-scoped :func:`~repro.net.nodes.abort_peers`: tell every
        peer of the dead session to stop waiting, best-effort."""
        frame = wire.encode_control("abort", reason.encode())
        for name in [*self.server_names, *self.shard_names, "clients"]:
            try:
                await self.transport.send(name, frame, session=sid)
            except (ReproError, OSError):
                pass

    def _join_peers(self, threads: list) -> None:
        for thread in threads:
            thread.join(timeout=5.0)


# Dispatcher -------------------------------------------------------------------


class _Worker:
    """Dispatcher-side record of one front-end process."""

    def __init__(self, name, process, conn):
        self.name = name
        self.process = process
        self.conn = conn
        # request_id -> SessionRequest: everything placed here that has
        # no outcome yet.  The no-hang invariant rests on this map:
        # every admitted request lives in exactly one worker's `placed`
        # until its outcome is recorded.
        self.placed: dict[int, SessionRequest] = {}
        self.stats = {"in_flight": 0, "pending": 0, "completed": 0, "aborted": 0}
        self.draining = False
        self.drained = False
        self.dead = False
        self.steal_outstanding = False

    @property
    def load(self) -> int:
        return len(self.placed)

    def send(self, command: dict) -> None:
        try:
            self.conn.send(command)
        except (OSError, ValueError, BrokenPipeError):
            pass  # the sentinel path re-attributes whatever was placed


class FleetDispatcher:
    """The admission point: places sessions, watches workers, never hangs.

    ``submit`` admits a :class:`SessionRequest` onto the least-loaded
    live front-end; outcomes accumulate in :attr:`outcomes` (keyed by
    request id) and :meth:`wait` blocks until every admitted request has
    one.  A monitor thread drives health pings, work-stealing, crash
    re-attribution and restarts.  Use as a context manager, or pair
    :meth:`start` with :meth:`stop`.
    """

    def __init__(
        self,
        config: FleetConfig,
        *,
        start_method: str = "fork",
        metrics: ServingMetrics | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self._context = get_context(start_method)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.workers: dict[str, _Worker] = {}
        self.outcomes: dict[int, SessionOutcome] = {}
        self.restarts: dict[str, int] = {}
        self.stolen = 0
        self._submitted: set[int] = set()
        self._draining = False
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    # Lifecycle --------------------------------------------------------------

    def start(self) -> "FleetDispatcher":
        with self._lock:
            for i in range(self.config.frontends):
                self._spawn(f"fe-{i}")
        self._thread = threading.Thread(
            target=self._run, name="fleet-dispatcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Terminate everything still running (no grace — use
        :meth:`drain` first for a graceful exit)."""
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            workers = list(self.workers.values())
        for worker in workers:
            if worker.process.is_alive():
                worker.send({"cmd": "stop"})
        for worker in workers:
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "FleetDispatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self, name: str) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_frontend_main,
            args=(name, child_conn, self.config),
            name=name,
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(name, process, parent_conn)
        self.workers[name] = worker
        return worker

    # Admission and placement ------------------------------------------------

    def submit(self, request: SessionRequest) -> str:
        """Admit one session onto the least-loaded live front-end;
        returns the chosen front-end's name."""
        with self._lock:
            if self._draining:
                raise ParameterError("fleet is draining; not admitting new sessions")
            if request.request_id in self._submitted:
                raise ParameterError(
                    f"request id {request.request_id} already admitted"
                )
            worker = self._placement_target()
            if worker is None:
                raise ProtocolAbort("no live front-end to place the session on")  # repro: allow[REP004] -- infrastructure exhaustion, not party misbehaviour; there is no protocol party to name
            self._place(worker, request)
            if self.metrics is not None:
                self.metrics.session_admitted()
            return worker.name

    def place(self, request: SessionRequest, frontend: str) -> None:
        """Pin one session onto a named front-end (tests and demos; the
        normal path is :meth:`submit`)."""
        with self._lock:
            worker = self.workers.get(frontend)
            if worker is None or worker.dead:
                raise ParameterError(f"no live front-end named {frontend!r}")
            self._place(worker, request)
            if self.metrics is not None:
                self.metrics.session_admitted()

    def _placement_target(self, exclude=()) -> _Worker | None:
        live = [
            w
            for w in self.workers.values()
            if not w.dead and not w.draining and w.name not in exclude
        ]
        if not live:
            return None
        return min(live, key=lambda w: (w.load, w.name))

    def _place(self, worker: _Worker, request: SessionRequest) -> None:
        worker.placed[request.request_id] = request
        self._submitted.add(request.request_id)
        worker.send({"cmd": "place", "request": request})

    # Waiting ----------------------------------------------------------------

    def wait(self, request_ids=None, timeout: float = 120.0) -> bool:
        """Block until every named (default: every admitted) request has
        an outcome; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                wanted = (
                    set(request_ids) if request_ids is not None else set(self._submitted)
                )
                if wanted <= set(self.outcomes):
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.25))

    def drain(self, timeout: float = 120.0) -> bool:
        """Graceful shutdown: stop admitting, let every front-end finish
        its pending and in-flight sessions, then reap them.  Returns
        True once every worker exited (False on timeout; ``stop`` still
        cleans up)."""
        with self._lock:
            self._draining = True
            for worker in self.workers.values():
                if not worker.dead:
                    worker.draining = True
                    worker.send({"cmd": "drain"})
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if not [w for w in self.workers.values() if not w.dead]:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.25))

    def worker_stats(self) -> dict:
        """Latest health-check stats per live front-end."""
        with self._lock:
            return {
                w.name: dict(w.stats)
                for w in self.workers.values()
                if not w.dead
            }

    # Monitor thread ---------------------------------------------------------

    def _run(self) -> None:
        last_health = 0.0
        while not self._stopped.is_set():
            with self._lock:
                live = [w for w in self.workers.values() if not w.dead]
                by_conn = {w.conn: w for w in live}
                by_sentinel = {w.process.sentinel: w for w in live}
            handles = list(by_conn) + list(by_sentinel)
            if not handles:
                self._stopped.wait(self.config.health_interval)
                continue
            try:
                ready = mp_connection.wait(handles, timeout=self.config.health_interval)
            except OSError:  # pragma: no cover - handle closed under us
                ready = []
            with self._lock:
                for handle in ready:
                    worker = by_conn.get(handle)
                    if worker is not None and not worker.dead:
                        self._drain_events(worker)
                for handle in ready:
                    worker = by_sentinel.get(handle)
                    if worker is not None and not worker.dead:
                        # Flush events the worker managed to send before
                        # exiting, then classify the exit.
                        self._drain_events(worker)
                        self._handle_exit(worker)
                now = time.monotonic()
                if now - last_health >= self.config.health_interval:
                    last_health = now
                    self._health_tick()
                self._cond.notify_all()

    def _drain_events(self, worker: _Worker) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                event = worker.conn.recv()
            except (EOFError, OSError):
                return
            self._handle_event(worker, event)

    def _record_outcome(
        self, outcome: SessionOutcome, stages: dict | None = None
    ) -> None:
        """The single funnel every outcome passes through: stores it and
        keeps the metrics ledger balanced (one admitted -> exactly one
        finished, so in-flight returns to zero after a drain)."""
        already = outcome.request_id in self.outcomes
        self.outcomes[outcome.request_id] = outcome
        if self.metrics is not None and not already:
            self.metrics.session_finished(
                outcome.status, stages=stages, elapsed_s=outcome.elapsed_s
            )

    def _handle_event(self, worker: _Worker, event: dict) -> None:
        kind = event.get("event")
        if kind == "released":
            request_id = event["request_id"]
            worker.placed.pop(request_id, None)
            self._record_outcome(
                SessionOutcome(
                    request_id,
                    worker.name,
                    "released",
                    accepted=event["accepted"],
                    estimate=tuple(event["estimate"]),
                    release_frame=event["release"],
                    chunk_size=event["chunk_size"],
                    elapsed_s=event["elapsed_s"],
                ),
                stages=event.get("stages"),
            )
        elif kind == "aborted":
            request_id = event["request_id"]
            worker.placed.pop(request_id, None)
            self._record_outcome(
                SessionOutcome(
                    request_id,
                    worker.name,
                    "aborted",
                    party=event.get("party"),
                    reason=event.get("reason"),
                )
            )
        elif kind == "failed":
            request_id = event["request_id"]
            worker.placed.pop(request_id, None)
            self._record_outcome(
                SessionOutcome(
                    request_id,
                    worker.name,
                    "crashed",
                    party=worker.name,
                    reason=event.get("reason"),
                )
            )
        elif kind == "stats":
            worker.stats = {
                key: event[key]
                for key in ("in_flight", "pending", "completed", "aborted")
            }
            if self.metrics is not None:
                self.metrics.frontend_stats(
                    worker.name, event["in_flight"], event["pending"]
                )
        elif kind == "stolen":
            worker.steal_outstanding = False
            self._replace_stolen(worker, event.get("requests", []))
        elif kind == "drained":
            worker.drained = True

    def _replace_stolen(self, worker: _Worker, requests) -> None:
        for request in requests:
            worker.placed.pop(request.request_id, None)
            target = None
            if not self._draining:
                target = self._placement_target(exclude=(worker.name,))
            if target is None:
                # Nowhere better (or draining): hand it straight back —
                # the worker serves its own queue rather than losing it.
                target = worker if not worker.dead else self._placement_target()
            elif target is not worker:
                self.stolen += 1
                if self.metrics is not None:
                    self.metrics.stolen.inc()
            if target is None:  # pragma: no cover - whole fleet died
                self._record_outcome(
                    SessionOutcome(
                        request.request_id,
                        worker.name,
                        "crashed",
                        party=worker.name,
                        reason="no live front-end to host the stolen session",
                    )
                )
                continue
            self._place(target, request)

    def _handle_exit(self, worker: _Worker) -> None:
        worker.dead = True
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.drained and not worker.placed:
            return  # clean drain exit
        # Crash: every session placed here and not yet decided would
        # otherwise hang its caller — re-attribute now, then respawn.
        for request_id in list(worker.placed):
            self._record_outcome(
                SessionOutcome(
                    request_id,
                    worker.name,
                    "crashed",
                    party=worker.name,
                    reason="front-end crashed with the session in flight",
                )
            )
        worker.placed.clear()
        if self.metrics is not None:
            self.metrics.frontend_stats(worker.name, 0, 0)
        if self._draining:
            return
        count = self.restarts.get(worker.name, 0)
        if count >= self.config.max_restarts:
            return
        self.restarts[worker.name] = count + 1
        if self.metrics is not None:
            self.metrics.restarts.inc(frontend=worker.name)
        self._spawn(worker.name)

    def _health_tick(self) -> None:
        live = [w for w in self.workers.values() if not w.dead]
        for worker in live:
            worker.send({"cmd": "ping"})
        if self._draining:
            return
        # Work-stealing: a front-end with sessions *queued* behind its
        # capacity while another has free slots is mis-placed load —
        # ask the hot one to give queued requests back for re-placement.
        for worker in live:
            if worker.steal_outstanding or worker.stats["pending"] <= 0:
                continue
            best_free, target = 0, None
            for other in live:
                if other is worker or other.draining:
                    continue
                free = self.config.capacity - other.load
                if free > best_free:
                    best_free, target = free, other
            if target is not None:
                worker.steal_outstanding = True
                worker.send(
                    {"cmd": "steal", "count": min(worker.stats["pending"], best_free)}
                )


# Driver -----------------------------------------------------------------------


def run_fleet(
    query: Query,
    values,
    *,
    sessions: int = 4,
    config: FleetConfig | None = None,
    frontends: int = 2,
    capacity: int = 2,
    shards: int = 0,
    num_servers: int = 2,
    group: str = "p64-sim",
    nb_override: int | None = 64,
    chunk_size: int | None = None,
    seed: str | None = "fleet",
    host: str = "127.0.0.1",
    timeout: float = 120.0,
    reply_delay: float = 0.0,
    verify_equivalence: bool | None = None,
    metrics: ServingMetrics | None = None,
) -> dict:
    """Serve ``sessions`` sessions through a fleet; returns a metrics dict.

    Session *s* runs under seed ``{seed}/s{s}`` with the shared values
    rotated by *s* — exactly the ``--async`` driver's convention — and
    ``verify_equivalence`` (default: on whenever seeded) replays every
    released session through a solo in-process :class:`Session` at the
    outcome's effective chunk size and compares the wire-encoded
    releases byte for byte.
    """
    if sessions < 1:
        raise ParameterError("sessions must be >= 1")
    if config is None:
        config = FleetConfig(
            frontends=frontends,
            capacity=capacity,
            shards=shards,
            num_servers=num_servers,
            group=group,
            nb_override=nb_override,
            chunk_size=chunk_size,
            host=host,
            timeout=timeout,
            reply_delay=reply_delay,
        )
    values = list(values)
    if verify_equivalence is None:
        verify_equivalence = seed is not None
    requests = [
        SessionRequest(
            s, query, session_values(values, s), seed=session_seed(seed, s)
        )
        for s in range(sessions)
    ]

    dispatcher = FleetDispatcher(config, metrics=metrics)
    start = time.perf_counter()
    try:
        dispatcher.start()
        for request in requests:
            dispatcher.submit(request)
        finished = dispatcher.wait(timeout=config.timeout + 30.0)
        elapsed = time.perf_counter() - start
        drained = dispatcher.drain(timeout=config.timeout)
    finally:
        dispatcher.stop()

    session_rows = []
    for request in requests:
        outcome = dispatcher.outcomes.get(request.request_id)
        if outcome is None:
            session_rows.append(
                {
                    "session": request.request_id,
                    "status": "lost",
                    "frontend": None,
                    "reason": "no outcome before the wait deadline",
                }
            )
            continue
        row = {
            "session": request.request_id,
            "status": outcome.status,
            "frontend": outcome.frontend,
        }
        if outcome.status == "released":
            row.update(
                accepted=outcome.accepted,
                estimate=outcome.estimate,
                elapsed_s=outcome.elapsed_s,
                release_bytes=len(outcome.release_frame),
            )
            if verify_equivalence and request.seed is not None:
                solo = Session(
                    request.query,
                    num_provers=config.num_servers,
                    group=config.group,
                    nb_override=config.nb_override,
                    chunk_size=outcome.chunk_size,
                    rng=SeededRNG(request.seed),
                )
                solo.submit(request.values)
                row["byte_identical"] = (
                    encode_message(solo.release().release) == outcome.release_frame
                )
        else:
            row.update(party=outcome.party, reason=outcome.reason)
        session_rows.append(row)

    released_rows = [r for r in session_rows if r["status"] == "released"]
    params = query.build_params(
        num_provers=config.num_servers, group=config.group,
        nb_override=config.nb_override,
    )
    outcome_dict = {
        "transport": "fleet",
        "frontends": config.frontends,
        "capacity": config.capacity,
        "shards": config.shards,
        "sessions": sessions,
        "num_servers": config.num_servers,
        "n_clients": len(values),
        "nb": params.nb,
        "group": config.group,
        "chunk_size": config.chunk_size,
        "reply_delay_s": config.reply_delay,
        "elapsed_s": elapsed,
        "sessions_per_sec": len(released_rows) / elapsed if elapsed else float("inf"),
        "released": len(released_rows),
        "aborted": sum(1 for r in session_rows if r["status"] == "aborted"),
        "crashed": sum(1 for r in session_rows if r["status"] == "crashed"),
        "finished": finished,
        "drained": drained,
        "restarts": dict(dispatcher.restarts),
        "stolen": dispatcher.stolen,
        "frontends_used": sorted(
            {r["frontend"] for r in session_rows if r["frontend"] is not None}
        ),
        "accepted": bool(released_rows)
        and all(r["accepted"] for r in released_rows),
        "session_rows": session_rows,
    }
    if verify_equivalence:
        outcome_dict["byte_identical"] = bool(released_rows) and all(
            r.get("byte_identical", False) for r in released_rows
        )
    return outcome_dict
