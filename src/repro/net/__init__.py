"""Transport-agnostic node layer: ΠBin as communicating processes.

The paper's setting is distributed — an analyst, K servers and n clients
exchanging commitments and Σ-proofs over a network — while the simulator
runs everything in one process over :class:`repro.mpc.bus.SimulatedNetwork`.
This package closes that gap without touching the protocol engine:

* :mod:`repro.net.transport` — a three-method :class:`Transport` interface
  (``send``/``recv``/``close`` over named peers) with in-memory,
  ``multiprocessing``-pipe and TCP-socket implementations.
* :mod:`repro.net.wire` — framing for the node protocol (setup specs, RPC
  envelopes, enrollment bundles) over the typed message registry of
  :mod:`repro.crypto.serialization`.
* :mod:`repro.net.nodes` — :class:`AnalystNode` (drives the unchanged
  :class:`repro.api.engine.ProtocolEngine` against :class:`RemoteProver`
  proxies), :class:`ServerNode` (hosts one real prover) and
  :class:`ClientRunner` (submits wire-encoded enrollments).
* :mod:`repro.net.workers` — a process pool for parallel per-prover and
  per-chunk coin verification (the streams are embarrassingly parallel).
* :mod:`repro.net.shard` — sharded serving: a :class:`ShardedAnalyst`
  front-end partitions one client stream across S :class:`ShardWorker`
  verification peers and merges their verdicts/products into a release
  byte-identical to the unsharded path (``python -m repro serve
  --shards S``).
* :mod:`repro.net.aio` — async serving: an :class:`AsyncSocketTransport`
  over asyncio streams (wire compatible with the blocking transport) and
  a :class:`SessionMux` front-end that multiplexes N concurrent sessions
  in one process, each driving the unchanged engine (``python -m repro
  serve --async --sessions N``).
* :mod:`repro.net.fleet` — the serving fleet: a
  :class:`FleetDispatcher` admits a stream of session requests and
  places them across a pool of :class:`SessionMux` front-end processes
  (each optionally backed by shard workers — the ``--async --shards``
  composition), with health checks, work-stealing, graceful drain and
  crash restart (``python -m repro serve --fleet``).
* :mod:`repro.net.serve` — the ``python -m repro serve`` demo driver: a
  full session as separate OS processes, byte-identical to the
  in-process path under seeded RNG.
"""

from repro.net.aio import (
    AsyncClientRunner,
    AsyncServerNode,
    AsyncSocketTransport,
    SessionChannel,
    SessionMux,
    SessionSpec,
)
from repro.net.fleet import (
    FleetConfig,
    FleetDispatcher,
    SessionOutcome,
    SessionRequest,
    run_fleet,
)
from repro.net.nodes import AnalystNode, ClientRunner, RemoteProver, ServerNode
from repro.net.serve import run_async_sessions, run_distributed_session
from repro.net.shard import ShardWorker, ShardedAnalyst
from repro.net.transport import (
    InMemoryHub,
    InMemoryTransport,
    MultiprocessTransport,
    SocketTransport,
    Transport,
    multiprocess_star,
)
from repro.net.workers import VerificationPool

__all__ = [
    "Transport",
    "InMemoryHub",
    "InMemoryTransport",
    "MultiprocessTransport",
    "SocketTransport",
    "multiprocess_star",
    "AnalystNode",
    "ServerNode",
    "ClientRunner",
    "RemoteProver",
    "VerificationPool",
    "ShardedAnalyst",
    "ShardWorker",
    "run_distributed_session",
    "run_async_sessions",
    "AsyncSocketTransport",
    "SessionChannel",
    "SessionMux",
    "SessionSpec",
    "AsyncServerNode",
    "AsyncClientRunner",
    "FleetConfig",
    "FleetDispatcher",
    "SessionRequest",
    "SessionOutcome",
    "run_fleet",
]
