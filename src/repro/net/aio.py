"""Async serving: one front-end multiplexing many sessions.

A deployment built on :mod:`repro.net.nodes` runs exactly one protocol
session per process: the front-end blocks in ``recv`` whenever a prover
is computing a Σ-proof or a client population is enrolling, and that
idle time is simply lost.  This module turns the front-end into a
multiplexer:

* :class:`AsyncSocketTransport` — the TCP transport over ``asyncio``
  streams.  Same length-prefixed frame protocol, same
  ``max_frame_bytes`` cap and whole-frame deadline semantics as the
  blocking :class:`~repro.net.transport.SocketTransport`, byte-for-byte
  wire compatible with it (session 0 traffic is the v1 format
  unchanged).  Each connection announces a *scope* in its handshake
  header — one session, or :data:`~repro.net.transport.SESSION_ANY` for
  a multi-session host — and a per-connection reader task demultiplexes
  inbound frames to per-``(peer, session)`` queues by the session id in
  the v2 frame header (v1 frames route to session 0).
* :class:`SessionChannel` — a synchronous
  :class:`~repro.net.transport.Transport` facade over one session of a
  shared :class:`AsyncSocketTransport`.  The protocol engine and the
  role nodes are synchronous and stay *unchanged*; a channel bridges
  their blocking ``send``/``recv`` calls into the owning event loop with
  ``asyncio.run_coroutine_threadsafe``.
* :class:`SessionMux` — the multiplexing front-end: N concurrent
  sessions in one process.  Each session is an asyncio task driving an
  unchanged :class:`~repro.net.nodes.AnalystNode` (hence the unchanged
  :class:`~repro.api.engine.ProtocolEngine` with its
  :class:`~repro.net.nodes.RemoteProver` proxies) on an executor
  thread; while one session's engine waits on a prover RPC or a client
  chunk, the event loop keeps every other session's frames moving.
  Under seeded RNG each released session is byte-identical to a solo
  in-process :class:`repro.api.Session` run with the same seed.
* :class:`AsyncServerNode` / :class:`AsyncClientRunner` — multi-session
  peers: thin wrappers hosting one unchanged
  :class:`~repro.net.nodes.ServerNode` /
  :class:`~repro.net.nodes.ClientRunner` per session over one shared
  connection.  The prover and client logic is untouched.

Mixed topologies interoperate: a plain blocking
``SocketTransport.connect(..., session=s)`` peer serves exactly session
*s* of a mux (its scoped handshake routes it), while a session-0-only
legacy peer works against a mux front-end with no changes at all.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.engine import EngineResult
from repro.api.queries import Query
from repro.errors import ParameterError, ProtocolAbort
from repro.net.nodes import AnalystNode, ClientRunner, ServerNode
from repro.net.transport import (
    _HANDSHAKE_MAX_BYTES,
    _LEN,
    _MAX_DROPPED_NOTES,
    _V2_FLAG,
    DEFAULT_MAX_FRAME_BYTES,
    SESSION_ANY,
    Transport,
    check_frame_size,
    check_session_id,
    pack_frame,
    pack_handshake,
    split_header_word,
)
from repro.utils.rng import RNG, SystemRNG

__all__ = [
    "AsyncSocketTransport",
    "SessionChannel",
    "SessionMux",
    "SessionSpec",
    "AsyncServerNode",
    "AsyncClientRunner",
]

# Queue sentinel: the connection feeding this queue failed; the reason
# lives on the connection record.
_FAILED = object()


class _SessionMap(dict):
    """Per-session bookkeeping: a dict that reads ``None`` for sessions
    it has no entry for, so ``mux.results[s]``/``mux.errors[s]`` keep the
    pre-dynamic-mux list semantics (absent == not recorded)."""

    def __missing__(self, key):
        return None

_DEFAULT_HANDSHAKE_TIMEOUT = 30.0

# Inbound frames a (peer, session) queue buffers before the reader task
# stops draining that connection's TCP stream.  This is the async
# equivalent of the blocking transport's kernel-buffer backpressure: a
# peer flooding frames faster than the engine consumes them fills the
# queue, then its own socket, then blocks — it cannot grow front-end
# memory without bound.
_MAX_QUEUED_FRAMES = 1024

# Distinct session ids one connection may touch: far above any real
# deployment's session count, low enough that a registered-but-hostile
# peer spraying random session ids cannot materialize queues forever.
_MAX_SESSIONS_PER_CONN = 4096


class _Conn:
    """One accepted or dialed connection: a scope, streams, a reader task."""

    __slots__ = ("peer", "scope", "reader", "writer", "task", "failure", "sessions")

    def __init__(self, peer, scope, reader, writer):
        self.peer = peer
        self.scope = scope  # a session id, or SESSION_ANY
        self.reader = reader
        self.writer = writer
        self.task: asyncio.Task | None = None
        self.failure: str | None = None
        self.sessions: set[int] = set()


class AsyncSocketTransport:
    """TCP frames over asyncio streams, demultiplexed by session id.

    The async counterpart of :class:`~repro.net.transport.SocketTransport`
    — same frame protocol, caps and abort semantics — except ``send`` and
    ``recv`` take a ``session`` and one transport carries any number of
    concurrent sessions over its connections.  Outbound frames route to
    the connection scoped to that exact session if one exists, else to
    the peer's :data:`SESSION_ANY` connection; inbound frames route to
    per-``(peer, session)`` queues by their header's session id.

    All methods must run on the owning event loop; synchronous code uses
    a :class:`SessionChannel`.
    """

    def __init__(
        self, name: str, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        if not 1 <= max_frame_bytes < _V2_FLAG:
            raise ParameterError("max_frame_bytes must be in [1, 2**31)")
        self.name = name
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.dropped_handshakes: list[str] = []
        self._dropped_overflow = 0
        self._conns: dict[tuple[str, int], _Conn] = {}
        self._queues: dict[tuple[str, int], asyncio.Queue] = {}
        self._server: asyncio.base_events.Server | None = None
        self._accepted: asyncio.Queue[str] = asyncio.Queue()
        self._accept_expected: list | None = None
        self._accept_active = False
        self._accept_deadline: float | None = None
        self._locked_down = False
        # Standing expectation filter, consulted whenever no accept() is
        # in flight.  A fleet front-end keeps its listener open for the
        # whole deployment (sessions arrive dynamically, each bringing
        # scoped peer connections), so unlike the static-topology mux it
        # cannot lock down — this filter is what keeps the idle listener
        # from handshaking strangers between placements (default None
        # preserves the historical allow-any behavior; [] drops all).
        self.default_expected: list | None = None
        self.port: int | None = None

    # Construction -----------------------------------------------------------

    @classmethod
    async def listen(
        cls,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sock=None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncSocketTransport":
        """Start the listener (``sock``: adopt a pre-bound listening
        socket, e.g. one created before forking peer processes)."""
        transport = cls(name, max_frame_bytes=max_frame_bytes)
        if sock is not None:
            server = await asyncio.start_server(transport._handle_connection, sock=sock)
        else:
            server = await asyncio.start_server(transport._handle_connection, host, port)
        transport._server = server
        transport.port = server.sockets[0].getsockname()[1]
        return transport

    @classmethod
    async def connect(
        cls,
        name: str,
        peer: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        session: int = SESSION_ANY,
        timeout: float | None = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncSocketTransport":
        """Dial ``peer`` and handshake.  The default scope announces a
        multi-session host; pass a session id to bind one session."""
        transport = cls(name, max_frame_bytes=max_frame_bytes)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        writer.write(pack_handshake(name, session))
        await writer.drain()
        transport._register(_Conn(peer, session, reader, writer))
        return transport

    def _register(self, conn: _Conn) -> None:
        self._conns[(conn.peer, conn.scope)] = conn
        conn.task = asyncio.ensure_future(self._reader_loop(conn))

    # Accepting --------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if self._locked_down:
            # Serving topologies are fixed at accept time; a connection
            # arriving mid-session is hostile (or lost) and must not be
            # registered, read from, or buffered.
            self._note_dropped("<connection after lockdown>")
            writer.close()
            return
        try:
            scope, raw = await self._read_wire_frame(
                reader,
                max_bytes=_HANDSHAKE_MAX_BYTES,
                party="connecting peer",
                handshake=True,
                timeout=self._handshake_timeout(),
            )
            peer = raw.decode()
        except (ProtocolAbort, UnicodeDecodeError, asyncio.TimeoutError, OSError):
            self._note_dropped("<unreadable handshake>")
            writer.close()
            return
        if self._locked_down:
            # Re-checked after the read: a peer that connected inside the
            # accept window but trickled its handshake until after
            # lockdown must not slip past the (now disarmed) expectation
            # filter and register — e.g. claiming an expected name under
            # a session scope to capture that session's routing.
            self._note_dropped("<connection after lockdown>")
            writer.close()
            return
        if not self._handshake_expected(peer, scope):
            label = "" if scope == SESSION_ANY else f" (session {scope})"
            self._note_dropped(f"unexpected name {peer[:64]!r}{label}")
            writer.close()
            return
        if (peer, scope) in self._conns:
            label = "" if scope == SESSION_ANY else f" (session {scope})"
            self._note_dropped(f"duplicate name {peer[:64]!r}{label}")
            writer.close()
            return
        self._register(_Conn(peer, scope, reader, writer))
        self._accepted.put_nowait(peer)

    def _handshake_expected(self, peer: str, scope: int) -> bool:
        """Apply the accept() expectation filter to one handshake.

        A plain name admits that peer at any scope; a ``(name, scope)``
        pair pins the scope too — which is what stops an impostor from
        registering an expected *name* under a session scope the real
        (``SESSION_ANY``) peer does not occupy and hijacking that
        session's traffic (exact-scope connections outrank the ANY one
        on the send path).
        """
        expected = (
            self._accept_expected if self._accept_active else self.default_expected
        )
        if expected is None:
            return True
        for entry in expected:
            if isinstance(entry, tuple):
                if entry == (peer, scope):
                    return True
            elif entry == peer:
                return True
        return False

    def _handshake_timeout(self) -> float:
        if self._accept_deadline is not None:
            return max(self._accept_deadline - time.monotonic(), 0.01)
        return _DEFAULT_HANDSHAKE_TIMEOUT

    async def accept(
        self,
        count: int,
        timeout: float | None = 30.0,
        *,
        expected: list | None = None,
    ) -> list[str]:
        """Await ``count`` handshaken connections; returns their names
        (one entry per connection — a name repeats when the same peer
        connects once per session scope).

        ``expected`` entries are peer names, or ``(name, scope)`` pairs
        to additionally pin the handshake's session scope — a front-end
        whose topology is known should pin scopes, so a hostile peer
        cannot claim an expected name under an unoccupied session scope.

        Mirrors the blocking transport's hardening: broken, duplicate or
        unexpected handshakes are dropped while accepting continues under
        one overall monotonic deadline, and the timeout abort names every
        dropped handshake.  Call :meth:`lockdown` once the topology is
        complete.
        """
        if self._server is None:
            raise ParameterError("accept requires a listening transport")
        deadline = None if timeout is None else time.monotonic() + timeout
        self._accept_deadline = deadline
        self._accept_expected = list(expected) if expected is not None else None
        self._accept_active = True
        names: list[str] = []
        try:
            while len(names) < count:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ProtocolAbort(self._accept_timeout_message())  # repro: allow[REP004] -- no single culprit: the timeout message names every absent peer
                try:
                    names.append(await asyncio.wait_for(self._accepted.get(), remaining))
                except asyncio.TimeoutError as exc:
                    raise ProtocolAbort(self._accept_timeout_message()) from exc  # repro: allow[REP004] -- no single culprit: the timeout message names every absent peer
            return names
        finally:
            self._accept_deadline = None
            self._accept_expected = None
            self._accept_active = False

    def lockdown(self) -> None:
        """Refuse all future connections: the topology is complete.

        The blocking transport never reads sockets outside ``accept``;
        this is the async listener's equivalent — without it, the open
        listener would keep handshaking (and buffering) strangers for as
        long as the mux serves.
        """
        self._locked_down = True

    def _note_dropped(self, label: str) -> None:
        if len(self.dropped_handshakes) < _MAX_DROPPED_NOTES:
            self.dropped_handshakes.append(label)
        else:
            self._dropped_overflow += 1

    def _accept_timeout_message(self) -> str:
        message = "timed out accepting peers"
        if self.dropped_handshakes:
            dropped = ", ".join(self.dropped_handshakes)
            if self._dropped_overflow:
                dropped += f", and {self._dropped_overflow} more"
            message += f" (dropped: {dropped})"
        return message

    # Frame IO ---------------------------------------------------------------

    async def _read_wire_frame(
        self,
        reader: asyncio.StreamReader,
        *,
        max_bytes: int,
        party: str,
        handshake: bool = False,
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        """One (session, frame); the timeout covers the *whole* frame —
        the same per-frame (never per-byte) deadline the blocking
        transport enforces."""

        async def read() -> tuple[int, bytes]:
            word = _LEN.unpack(await reader.readexactly(_LEN.size))[0]
            size, has_session = split_header_word(word)
            session = 0
            if has_session:
                session = _LEN.unpack(await reader.readexactly(_LEN.size))[0]
                check_session_id(session, party=party, handshake=handshake)
            check_frame_size(size, max_bytes, party)
            return session, await reader.readexactly(size)

        try:
            if timeout is None:
                return await read()
            return await asyncio.wait_for(read(), timeout)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolAbort(
                f"{party!r} closed the connection", party=party
            ) from exc

    async def _reader_loop(self, conn: _Conn) -> None:
        """Pump one connection into the per-(peer, session) queues.

        The ``put`` awaits when a queue is full — backpressure through
        TCP onto the sending peer, exactly what the blocking transport
        gets from never reading faster than ``recv`` is called.
        """
        try:
            while True:
                session, frame = await self._read_wire_frame(
                    conn.reader, max_bytes=self.max_frame_bytes, party=conn.peer
                )
                if conn.scope != SESSION_ANY and session != conn.scope:
                    raise ProtocolAbort(
                        f"{conn.peer!r} sent a session-{session} frame on a "
                        f"session-{conn.scope} channel",
                        party=conn.peer,
                    )
                conn.sessions.add(session)
                if len(conn.sessions) > _MAX_SESSIONS_PER_CONN:
                    raise ProtocolAbort(
                        f"{conn.peer!r} touched more than "
                        f"{_MAX_SESSIONS_PER_CONN} sessions",
                        party=conn.peer,
                    )
                self.bytes_received += len(frame)
                self.frames_received += 1
                await self._queue(conn.peer, session).put(frame)
        except ProtocolAbort as exc:
            self._fail_conn(conn, str(exc))
        except (OSError, EOFError) as exc:
            self._fail_conn(conn, f"socket to {conn.peer!r} failed: {exc}")
        except asyncio.CancelledError:
            self._fail_conn(conn, "transport closed")
            raise

    def _fail_conn(self, conn: _Conn, reason: str) -> None:
        if conn.failure is None:
            conn.failure = reason
        conn.writer.close()
        # Wake every receiver this connection feeds; late-created queues
        # (and receivers behind a full queue) consult conn.failure once
        # they drain.
        for (peer, session), queue in self._queues.items():
            if peer == conn.peer and self._conn_for(peer, session) is conn:
                try:
                    queue.put_nowait(_FAILED)
                except asyncio.QueueFull:
                    pass

    def _queue(self, peer: str, session: int) -> asyncio.Queue:
        queue = self._queues.get((peer, session))
        if queue is None:
            queue = self._queues[(peer, session)] = asyncio.Queue(_MAX_QUEUED_FRAMES)
        return queue

    def _conn_for(self, peer: str, session: int) -> _Conn | None:
        conn = self._conns.get((peer, session))
        if conn is None:
            conn = self._conns.get((peer, SESSION_ANY))
        return conn

    async def send(self, peer: str, frame: bytes, session: int = 0) -> None:
        """Deliver ``frame`` to ``peer`` within ``session`` (ordered per
        connection)."""
        if not isinstance(frame, (bytes, bytearray)):
            raise ParameterError("transports carry bytes frames only")
        conn = self._conn_for(peer, session)
        if conn is None:
            raise ParameterError(
                f"{self.name!r} has no channel to {peer!r} for session {session}"
            )
        if conn.failure is not None:
            raise ProtocolAbort(conn.failure, party=peer)
        conn.writer.write(pack_frame(bytes(frame), session))
        try:
            await conn.writer.drain()
        except (ConnectionError, OSError) as exc:
            self._fail_conn(conn, f"socket to {peer!r} failed: {exc}")
            raise ProtocolAbort(
                f"socket to {peer!r} failed: {exc}", party=peer
            ) from exc
        self.bytes_sent += len(frame)
        self.frames_sent += 1

    async def recv(
        self, peer: str, session: int = 0, timeout: float | None = None
    ) -> bytes:
        """Await the next frame from ``peer`` within ``session``.

        Raises :class:`ProtocolAbort` (party=peer) on timeout or a failed
        connection — identical semantics to the blocking transport.
        """
        queue = self._queue(peer, session)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if not queue.empty():
                frame = queue.get_nowait()
            else:
                conn = self._conn_for(peer, session)
                if conn is not None and conn.failure is not None:
                    raise ProtocolAbort(conn.failure, party=peer)
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ProtocolAbort(
                            f"{self.name!r} timed out waiting for {peer!r}",
                            party=peer,
                        )
                try:
                    frame = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError as exc:
                    raise ProtocolAbort(
                        f"{self.name!r} timed out waiting for {peer!r}", party=peer
                    ) from exc
            if frame is _FAILED:
                # Leave the sentinel for any other waiter on this queue.
                try:
                    queue.put_nowait(_FAILED)
                except asyncio.QueueFull:
                    pass
                conn = self._conn_for(peer, session)
                reason = (conn.failure if conn is not None else None) or (
                    f"channel to {peer!r} closed"
                )
                raise ProtocolAbort(reason, party=peer)
            return frame

    async def release_session(self, session: int) -> None:
        """Forget one finished session: close its scoped connections and
        drop its demux queues.

        A long-lived front-end (the fleet worker) serves an unbounded
        stream of sessions, each arriving with its own scoped peer
        connections; without this the ``_conns``/``_queues`` maps — and
        the dead sockets behind them — grow for the deployment's
        lifetime.  ``SESSION_ANY`` connections are untouched: they belong
        to every session.
        """
        if not 0 <= session < SESSION_ANY:
            raise ParameterError("session id out of range")
        for (peer, scope), conn in list(self._conns.items()):
            if scope != session:
                continue
            del self._conns[(peer, scope)]
            if conn.task is not None:
                conn.task.cancel()
            conn.writer.close()
            if conn.task is not None:
                try:
                    await conn.task
                except (asyncio.CancelledError, Exception):  # pragma: no cover  # repro: allow[REP004] -- reaping a cancelled reader task at session close; its failure already surfaced as a queue abort with attribution
                    pass
        for key in [k for k in self._queues if k[1] == session]:
            del self._queues[key]

    async def aclose(self) -> None:
        """Close the listener and every connection; cancel reader tasks."""
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover  # repro: allow[REP004] -- best-effort listener close during teardown; nothing protocol-visible can be lost here
                pass
        for conn in list(self._conns.values()):
            if conn.task is not None:
                conn.task.cancel()
            conn.writer.close()
        for conn in list(self._conns.values()):
            if conn.task is not None:
                try:
                    await conn.task
                except (asyncio.CancelledError, Exception):  # pragma: no cover  # repro: allow[REP004] -- reaping cancelled reader tasks at transport close; reader failures already surfaced as queue aborts with attribution
                    pass


class SessionChannel(Transport):
    """One session of a shared :class:`AsyncSocketTransport`, presented as
    a synchronous :class:`~repro.net.transport.Transport`.

    Role nodes and the protocol engine are synchronous; a channel lets
    them run unchanged on executor threads while all socket I/O happens
    on the owning event loop (``asyncio.run_coroutine_threadsafe``).
    Timeouts are enforced inside the loop, so abort semantics — a
    :class:`ProtocolAbort` naming the silent party — are exactly those of
    the blocking transport.  ``close`` is a no-op: the shared async
    transport outlives its sessions and is closed by its owner.
    """

    def __init__(
        self,
        aio: AsyncSocketTransport,
        session: int,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        super().__init__(aio.name)
        if not 0 <= session < SESSION_ANY:
            raise ParameterError("session id out of range")
        self.aio = aio
        self.session = session
        self.loop = loop

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result()

    def _send(self, peer: str, frame: bytes) -> None:
        self._call(self.aio.send(peer, frame, session=self.session))

    def _recv(self, peer: str, timeout: float | None) -> bytes:
        return self._call(self.aio.recv(peer, session=self.session, timeout=timeout))


@dataclass
class SessionSpec:
    """What one multiplexed session runs: a query plus its knobs.

    ``rng`` seeds the session exactly as it would a solo
    :class:`repro.api.Session` — same fork labels, hence byte-identical
    releases.  A non-empty ``shards`` names :class:`ShardWorker` peers
    (scoped to this session on the shared transport) and the session is
    driven by a :class:`~repro.net.shard.ShardedAnalyst` instead of a
    plain :class:`~repro.net.nodes.AnalystNode` — the ``--async
    --shards`` composition: one front-end multiplexes N sessions, each
    fanning its verification across S shard workers.
    """

    query: Query
    rng: RNG | None = None
    group: str = "modp-2048"
    nb_override: int | None = None
    chunk_size: int | None = None
    shards: tuple[str, ...] = ()


class SessionMux:
    """A serving front-end that runs N concurrent sessions in one process.

    Session *s* is an asyncio task driving an unchanged
    :class:`~repro.net.nodes.AnalystNode` over ``SessionChannel(s)`` on an
    executor thread: the engine, the ``RemoteProver`` proxies and every
    verification path are exactly the single-session code.  Whenever one
    session's engine blocks on a prover RPC or an enrollment chunk, the
    event loop keeps serving every other session's frames — the
    front-end's idle time becomes other sessions' progress.

    ``run`` returns per-session outcomes; a failed session (e.g. a dead
    prover mid-phase) records its exception without disturbing the
    others.

    Two serving modes share the machinery:

    * **static** — construct with the full ``specs`` list and ``await
      run()``, as the ``--async`` topology does: every session starts at
      once and the executor is torn down when the batch completes;
    * **dynamic** — construct with ``specs=None`` and call
      :meth:`serve_session` per placement, as the fleet worker does:
      sessions arrive as a stream, up to ``max_concurrency`` run at a
      time, and the mux lives until :meth:`close`.

    Results, errors and timings are dictionaries keyed by session id
    (static mode uses ids ``0..N-1``, so list-style indexing still
    reads naturally).
    """

    def __init__(
        self,
        specs: list[SessionSpec] | None,
        transport: AsyncSocketTransport,
        servers: list[str],
        *,
        clients_peer: str = "clients",
        timeout: float | None = 60.0,
        max_concurrency: int | None = None,
        metrics=None,
    ) -> None:
        if specs is not None and not specs:
            raise ParameterError("need at least one session spec")
        self.specs = list(specs) if specs is not None else None
        self.transport = transport
        self.servers = list(servers)
        self.clients_peer = clients_peer
        self.timeout = timeout
        if max_concurrency is None:
            max_concurrency = len(self.specs) if self.specs else 8
        if max_concurrency < 1:
            raise ParameterError("max_concurrency must be >= 1")
        self.max_concurrency = max_concurrency
        self.results: dict[int, EngineResult] = _SessionMap()
        self.errors: dict[int, BaseException] = _SessionMap()
        self.session_seconds: dict[int, float] = _SessionMap()
        # Optional repro.net.metrics.ServingMetrics: when set, the mux
        # keeps the admitted/completed/aborted/crashed ledger and feeds
        # per-phase engine timings — the fleet worker's mux leaves this
        # unset because its dispatcher owns the ledger.
        self.metrics = metrics
        self._executor: ThreadPoolExecutor | None = None

    def _session_executor(self) -> ThreadPoolExecutor:
        # Sized to the concurrency cap: a session queued behind a full
        # executor would leave its peers blocked in their setup recv
        # until the protocol timeout, so the cap must bound admissions
        # (the fleet worker's capacity), never surprise-serialize them.
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_concurrency, thread_name_prefix="mux-session"
            )
        return self._executor

    def _serve_one(
        self, session: int, spec: SessionSpec, loop: asyncio.AbstractEventLoop
    ) -> EngineResult:
        start = time.perf_counter()
        channel = SessionChannel(self.transport, session, loop)
        if spec.shards:
            # Late import: shard.py imports from nodes.py which sits
            # beside this module; importing at call time keeps the
            # module graph acyclic.
            from repro.net.shard import ShardedAnalyst

            analyst = ShardedAnalyst(
                spec.query,
                channel,
                self.servers,
                list(spec.shards),
                group=spec.group,
                nb_override=spec.nb_override,
                chunk_size=spec.chunk_size,
                rng=spec.rng if spec.rng is not None else SystemRNG(),
                clients_peer=self.clients_peer,
                timeout=self.timeout,
            )
        else:
            analyst = AnalystNode(
                spec.query,
                channel,
                self.servers,
                group=spec.group,
                nb_override=spec.nb_override,
                chunk_size=spec.chunk_size,
                rng=spec.rng if spec.rng is not None else SystemRNG(),
                clients_peer=self.clients_peer,
                timeout=self.timeout,
            )
        result = analyst.run()
        self.session_seconds[session] = time.perf_counter() - start
        return result

    async def serve_session(self, session: int, spec: SessionSpec) -> EngineResult:
        """Serve one session to completion (dynamic mode's unit of work).

        Runs the unchanged analyst on an executor thread; the result (or
        the failure) is recorded under ``session`` and returned (raised).
        """
        loop = asyncio.get_running_loop()
        if self.metrics is not None:
            self.metrics.session_admitted()
        try:
            result = await loop.run_in_executor(
                self._session_executor(), self._serve_one, session, spec, loop
            )
        except BaseException as exc:
            self.errors[session] = exc
            if self.metrics is not None:
                status = "aborted" if isinstance(exc, ProtocolAbort) else "crashed"
                self.metrics.session_finished(status)
            raise
        self.results[session] = result
        if self.metrics is not None:
            self.metrics.session_finished(
                "released",
                stages=dict(result.timer.stages),
                elapsed_s=self.session_seconds[session],
            )
        return result

    async def run(self) -> dict[int, EngineResult]:
        """Serve every constructor-given session concurrently; returns the
        results map (a failed session appears in :attr:`errors` instead)."""
        if self.specs is None:
            raise ParameterError(
                "this mux is dynamic: place sessions with serve_session"
            )
        try:
            await asyncio.gather(
                *[
                    self.serve_session(s, spec)
                    for s, spec in enumerate(self.specs)
                ],
                return_exceptions=True,
            )
        finally:
            # Never block the event loop on thread teardown; session
            # threads hold recv timeouts and die on their own.
            self.close()
        return self.results

    def close(self) -> None:
        """Release the session executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


class AsyncServerNode:
    """A multi-session prover host: one unchanged
    :class:`~repro.net.nodes.ServerNode` per session over one shared
    connection.  The prover logic is untouched — each session's node
    receives its own setup frame, serves its RPCs and exits on its
    shutdown control, all interleaved through the session channels.

    ``rngs`` maps session id → prover RNG tape (a plain list means
    sessions ``0..N-1``); to match the solo run seed each entry as
    ``SeededRNG(seed_s).fork(name)``.  In a mixed topology the mapping
    simply omits the sessions a scoped synchronous peer serves.
    """

    def __init__(
        self,
        transport: AsyncSocketTransport,
        rngs,
        *,
        analyst: str = "analyst",
        prover_factory=None,
        timeout: float | None = 60.0,
        reply_delay: float = 0.0,
    ) -> None:
        self.rngs = _as_session_map(rngs, "session rng")
        self.transport = transport
        self.analyst = analyst
        self.prover_factory = prover_factory
        self.timeout = timeout
        self.reply_delay = reply_delay
        self.errors: dict[int, BaseException] = {}

    def _node(self, session: int, loop) -> ServerNode:
        return ServerNode(
            SessionChannel(self.transport, session, loop),
            self.rngs[session],
            analyst=self.analyst,
            prover_factory=self.prover_factory,
            timeout=self.timeout,
            reply_delay=self.reply_delay,
        )

    async def run(self) -> None:
        await _run_session_nodes(self._node, self.rngs, self.errors, "server")


class AsyncClientRunner:
    """Multi-session client populations: one unchanged
    :class:`~repro.net.nodes.ClientRunner` per session.

    ``populations`` maps session id → ``(query, values, rng)`` (a plain
    list means sessions ``0..N-1``); the published releases land on
    :attr:`releases`.
    """

    def __init__(
        self,
        transport: AsyncSocketTransport,
        populations,
        *,
        analyst: str = "analyst",
        timeout: float | None = 60.0,
    ) -> None:
        self.populations = _as_session_map(populations, "session population")
        self.transport = transport
        self.analyst = analyst
        self.timeout = timeout
        self.runners: dict[int, ClientRunner] = {}
        self.errors: dict[int, BaseException] = {}

    @property
    def releases(self) -> dict:
        return {
            session: runner.release for session, runner in self.runners.items()
        }

    def _node(self, session: int, loop) -> ClientRunner:
        query, values, rng = self.populations[session]
        runner = ClientRunner(
            SessionChannel(self.transport, session, loop),
            query,
            values,
            rng=rng,
            analyst=self.analyst,
            timeout=self.timeout,
        )
        self.runners[session] = runner
        return runner

    async def run(self) -> None:
        await _run_session_nodes(
            self._node, self.populations, self.errors, "client-runner"
        )


def _as_session_map(entries, what) -> dict:
    """Normalize a list (sessions 0..N-1) or mapping of per-session state."""
    mapping = (
        dict(entries) if hasattr(entries, "keys") else dict(enumerate(entries))
    )
    if not mapping:
        raise ParameterError(f"need at least one {what}")
    for session in mapping:
        if not 0 <= session < SESSION_ANY:
            raise ParameterError("session id out of range")
    return mapping


async def _run_session_nodes(node_factory, sessions, errors, prefix) -> None:
    """Run one synchronous node per session on executor threads; a failed
    session records its exception without killing its siblings."""
    loop = asyncio.get_running_loop()
    order = sorted(sessions)
    executor = ThreadPoolExecutor(
        max_workers=len(order), thread_name_prefix=f"{prefix}-session"
    )
    try:
        outcomes = await asyncio.gather(
            *[
                loop.run_in_executor(executor, node_factory(s, loop).run)
                for s in order
            ],
            return_exceptions=True,
        )
    finally:
        executor.shutdown(wait=False)
    for s, outcome in zip(order, outcomes):
        if isinstance(outcome, BaseException):
            errors[s] = outcome
