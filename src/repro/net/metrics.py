"""Dependency-free Prometheus-text metrics for the serving stack.

Serving at fleet scale is only trustworthy if it is *observable while it
happens*: an open-loop load run (``repro loadgen``) needs live counters
to prove the fleet actually admitted/completed what the generator
offered, and a long-lived deployment needs queue depths and per-phase
engine timings without attaching a profiler.  This module provides the
whole surface with nothing beyond the standard library:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — labeled,
  thread-safe instruments over a shared :class:`MetricsRegistry` that
  renders the Prometheus text exposition format (``# HELP`` / ``# TYPE``
  plus one line per labeled series).
* :class:`MetricsServer` — a daemon-thread ``http.server`` answering
  ``GET /metrics`` with the registry's rendering; ephemeral-port
  friendly (``port=0`` binds one and exposes it as ``.port``).
* :class:`ServingMetrics` — the serving stack's instrument set, shared
  by :class:`~repro.net.fleet.FleetDispatcher` and
  :class:`~repro.net.aio.SessionMux`: session outcome counters
  (admitted / completed / aborted / crashed / stolen), in-flight and
  per-front-end queue gauges, and per-phase engine-latency histograms
  fed by the ``phase:*`` stage entries that
  :class:`~repro.api.engine.ProtocolEngine` accumulates at each phase
  transition.

Everything here is passive: instruments mutate ints/floats under a
lock, and scrapes render a snapshot.  Nothing in the protocol path
blocks on a scrape, and a serving mode constructed without metrics pays
only ``None`` checks.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "ServingMetrics",
    "DEFAULT_BUCKETS",
]

# Latency buckets tuned for this stack: pure-python sessions run tens of
# milliseconds (p64-sim, small nb) up to minutes (paper-scale nb).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared labeled-series plumbing for the three instrument kinds."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames=()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ParameterError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        with self._lock:
            series = sorted(self._series.items())
        for labelvalues, value in series:
            lines.extend(self._render_series(labelvalues, value))
        return lines

    def _render_series(self, labelvalues, value) -> list[str]:
        labels = _render_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_format_value(value)}"]


class Counter(_Metric):
    """A monotonically increasing count (per labeled series)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ParameterError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A value that goes up and down (in-flight sessions, queue depth)."""

    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Histogram(_Metric):
    """Cumulative-bucket latency distribution (Prometheus semantics)."""

    type_name = "histogram"

    def __init__(
        self, name, help_text, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ParameterError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"buckets": [0] * len(self.bounds), "sum": 0.0, "count": 0}
                self._series[key] = series
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    series["buckets"][i] += 1
            series["sum"] += value
            series["count"] += 1

    def _render_series(self, labelvalues, series) -> list[str]:
        lines = []
        for bound, count in zip(self.bounds, series["buckets"]):
            labels = _render_labels(
                self.labelnames, labelvalues, extra=(("le", _format_value(bound)),)
            )
            lines.append(f"{self.name}_bucket{labels} {count}")
        inf_labels = _render_labels(
            self.labelnames, labelvalues, extra=(("le", "+Inf"),)
        )
        lines.append(f"{self.name}_bucket{inf_labels} {series['count']}")
        labels = _render_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{labels} {_format_value(series['sum'])}")
        lines.append(f"{self.name}_count{labels} {series['count']}")
        return lines


class MetricsRegistry:
    """A named collection of instruments rendering to one text page."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labelnames != metric.labelnames
                ):
                    raise ParameterError(
                        f"metric {metric.name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str, labelnames=()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str, labelnames=()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self, name: str, help_text: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, buckets))

    def render(self) -> str:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


class MetricsServer:
    """``GET /metrics`` over a daemon-thread stdlib HTTP server."""

    def __init__(
        self, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        render = registry.render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # scrapes are not server news
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"metrics-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


class ServingMetrics:
    """The serving stack's instrument set over one registry.

    One instance is shared by whatever serves sessions in a process — a
    :class:`~repro.net.fleet.FleetDispatcher`, a
    :class:`~repro.net.aio.SessionMux`, or both — so a single
    ``/metrics`` page tells the whole story.  The outcome taxonomy is
    the fleet's: ``completed`` (released), ``aborted`` (the protocol
    rejected it, attributed), ``crashed`` (infrastructure died under
    it).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.admitted = r.counter(
            "repro_sessions_admitted_total", "Sessions admitted for serving"
        )
        self.completed = r.counter(
            "repro_sessions_completed_total", "Sessions released successfully"
        )
        self.aborted = r.counter(
            "repro_sessions_aborted_total",
            "Sessions the protocol aborted (attributed rejections)",
        )
        self.crashed = r.counter(
            "repro_sessions_crashed_total",
            "Sessions lost to infrastructure death (attributed, never hung)",
        )
        self.stolen = r.counter(
            "repro_sessions_stolen_total",
            "Queued sessions re-placed from a hot front-end onto an idle one",
        )
        self.restarts = r.counter(
            "repro_frontend_restarts_total",
            "Front-end worker processes respawned after a crash",
            labelnames=("frontend",),
        )
        self.in_flight = r.gauge(
            "repro_sessions_in_flight", "Admitted sessions without an outcome yet"
        )
        self.frontend_in_flight = r.gauge(
            "repro_frontend_in_flight",
            "Sessions currently executing on a front-end (health-ping stats)",
            labelnames=("frontend",),
        )
        self.frontend_queue_depth = r.gauge(
            "repro_frontend_queue_depth",
            "Sessions queued behind a front-end's capacity (health-ping stats)",
            labelnames=("frontend",),
        )
        self.phase_seconds = r.histogram(
            "repro_engine_phase_seconds",
            "Wall-clock seconds spent per ProtocolEngine phase",
            labelnames=("phase",),
        )
        self.session_seconds = r.histogram(
            "repro_session_seconds", "End-to-end seconds per served session"
        )
        # Materialize the label-less series at zero so the very first
        # scrape already shows the whole ledger (a counter that has
        # never fired still renders, and rate() over it is well-defined).
        for counter in (
            self.admitted,
            self.completed,
            self.aborted,
            self.crashed,
            self.stolen,
        ):
            counter.inc(0)
        self.in_flight.set(0)

    # Recording helpers -----------------------------------------------------

    def session_admitted(self, count: int = 1) -> None:
        self.admitted.inc(count)
        self.in_flight.inc(count)

    def session_finished(
        self,
        status: str,
        *,
        stages: dict | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        """Record one outcome: ``released`` / ``aborted`` / ``crashed``.

        Pairs with exactly one prior :meth:`session_admitted` — the
        in-flight gauge's return to zero after a drain is part of the
        endpoint's contract (and pinned by tests).
        """
        counter = {
            "released": self.completed,
            "aborted": self.aborted,
            "crashed": self.crashed,
        }.get(status)
        if counter is None:
            raise ParameterError(f"unknown session outcome status {status!r}")
        counter.inc()
        self.in_flight.dec()
        if elapsed_s is not None:
            self.session_seconds.observe(elapsed_s)
        if stages:
            self.observe_stages(stages)

    def observe_stages(self, stages: dict) -> None:
        """Feed a :class:`~repro.utils.timing.StageTimer` stages dict's
        ``phase:*`` entries into the per-phase histogram."""
        for name, seconds in stages.items():
            if name.startswith("phase:"):
                self.phase_seconds.observe(seconds, phase=name[len("phase:") :])

    def frontend_stats(self, frontend: str, in_flight: int, pending: int) -> None:
        self.frontend_in_flight.set(in_flight, frontend=frontend)
        self.frontend_queue_depth.set(pending, frontend=frontend)
