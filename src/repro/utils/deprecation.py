"""Once-per-process deprecation warnings for the legacy run_*() API.

The legacy classes remain importable and fully functional as thin shims
over :mod:`repro.api`, but each warns exactly once per calling module —
loud enough to steer migrations (and to trip the CI filter that
escalates DeprecationWarnings from repro-internal callers to errors),
quiet enough not to drown a batch run that calls ``run_bits`` ten
thousand times.  Keying the registry by caller means an external
(test-suite) use of a deprecated API can never silence a later
repro-internal use of the same API.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_once"]

_WARNED: set[tuple[str, str]] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` at most once per caller.

    ``stacklevel=3`` attributes the warning to the deprecated API's
    caller (warn_once → shim method → caller); the suppression registry
    is keyed by that same caller's module.
    """
    try:
        caller = sys._getframe(stacklevel - 1).f_globals.get("__name__", "?")
    except ValueError:
        caller = "?"
    if (key, caller) in _WARNED:
        return
    _WARNED.add((key, caller))
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def _reset() -> None:
    """Forget warned keys (test helper only)."""
    _WARNED.clear()
