"""Randomness sources.

Every probabilistic component in the library takes an :class:`RNG` so that

* production code defaults to :class:`SystemRNG` (``secrets``-quality), and
* tests inject :class:`SeededRNG` for reproducibility.

``SeededRNG`` is a deterministic expand-from-seed construction built on
SHA-256 in counter mode.  It is *not* the Mersenne Twister: protocol tests
exercise rejection-sampling paths whose statistics should match production,
and a hash-based stream keeps the two code paths identical.
"""

from __future__ import annotations

import abc
import hashlib
import secrets

from repro.errors import ParameterError

__all__ = ["RNG", "SystemRNG", "SeededRNG", "default_rng"]


class RNG(abc.ABC):
    """Abstract source of uniform randomness."""

    @abc.abstractmethod
    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` uniform bytes."""

    def randbits(self, bits: int) -> int:
        """Uniform integer in [0, 2**bits)."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(nbytes), "big")
        return value >> (nbytes * 8 - bits)

    def randbelow(self, bound: int) -> int:
        """Uniform integer in [0, bound) via rejection sampling."""
        if bound <= 0:
            raise ParameterError("bound must be positive")
        bits = bound.bit_length()
        while True:
            value = self.randbits(bits)
            if value < bound:
                return value

    def randrange(self, start: int, stop: int) -> int:
        """Uniform integer in [start, stop)."""
        if stop <= start:
            raise ParameterError("empty range")
        return start + self.randbelow(stop - start)

    def field_element(self, q: int) -> int:
        """Uniform element of Z_q."""
        return self.randbelow(q)

    def nonzero_field_element(self, q: int) -> int:
        """Uniform element of Z_q \\ {0}."""
        return 1 + self.randbelow(q - 1)

    def coin(self) -> int:
        """A single unbiased bit."""
        return self.randbits(1)

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]


class SystemRNG(RNG):
    """Cryptographically secure randomness from the operating system."""

    def random_bytes(self, n: int) -> bytes:
        return secrets.token_bytes(n)


class SeededRNG(RNG):
    """Deterministic SHA-256 counter-mode stream, for tests and simulations.

    The stream for a given seed is stable across Python versions (unlike
    ``random.Random``'s float-based helpers), which keeps recorded protocol
    transcripts reproducible.
    """

    def __init__(self, seed: int | bytes | str) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = hashlib.sha256(b"repro.seeded-rng" + seed).digest()
        self._counter = 0
        self._buffer = bytearray()

    def random_bytes(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = hashlib.sha256(self._key + self._counter.to_bytes(8, "big")).digest()
            self._counter += 1
            self._buffer += block
        out = bytes(self._buffer[:n])
        del self._buffer[:n]
        return out

    def fork(self, label: str) -> "SeededRNG":
        """An independent child stream, e.g. one per simulated party."""
        return SeededRNG(self._key + label.encode())


def default_rng(rng: RNG | None = None) -> RNG:
    """Normalize an optional RNG argument (None means SystemRNG)."""
    return rng if rng is not None else SystemRNG()
