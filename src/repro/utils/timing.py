"""Timing helpers for the experiment harness.

The paper reports wall-clock latency per protocol *stage* (Table 1 columns:
Σ-proof, Σ-verification, Morra, Aggregation, Check).  :class:`StageTimer`
accumulates named stages across a protocol run so the bench harness can
print the same rows.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "StageTimer"]


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer."""

    elapsed: float = 0.0
    _started: float | None = None

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = None
        return delta

    @contextmanager
    def running(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class StageTimer:
    """Named accumulating timers, one per protocol stage."""

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def merge(self, other: "StageTimer") -> None:
        for name, seconds in other.stages.items():
            self.add(name, seconds)

    def milliseconds(self) -> dict[str, float]:
        return {name: seconds * 1e3 for name, seconds in self.stages.items()}

    def total(self) -> float:
        return sum(self.stages.values())
