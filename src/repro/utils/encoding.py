"""Canonical byte encodings.

Fiat–Shamir security depends on every transcript message having exactly one
byte representation, so all encoders here are canonical and injective:
integers are fixed-width big-endian, composite messages are length-prefixed.
"""

from __future__ import annotations

from repro.errors import EncodingError

__all__ = [
    "int_to_bytes",
    "bytes_to_int",
    "encode_length_prefixed",
    "decode_length_prefixed",
    "byte_length",
]


def byte_length(n: int) -> int:
    """Number of bytes needed to represent the non-negative integer ``n``."""
    return max(1, (n.bit_length() + 7) // 8)


def int_to_bytes(value: int, width: int | None = None) -> bytes:
    """Big-endian encoding of a non-negative integer.

    ``width`` pins the output length (canonical form); without it the
    minimal length is used.
    """
    if value < 0:
        raise EncodingError(f"cannot encode negative integer {value}")
    if width is None:
        width = byte_length(value)
    try:
        return value.to_bytes(width, "big")
    except OverflowError as exc:
        raise EncodingError(f"{value} does not fit in {width} bytes") from exc


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def encode_length_prefixed(*parts: bytes) -> bytes:
    """Concatenate byte strings unambiguously with 4-byte length prefixes."""
    out = bytearray()
    for part in parts:
        if len(part) >= 1 << 32:
            raise EncodingError("part too long for 4-byte length prefix")
        out += len(part).to_bytes(4, "big")
        out += part
    return bytes(out)


def decode_length_prefixed(data: bytes) -> list[bytes]:
    """Inverse of :func:`encode_length_prefixed`."""
    parts: list[bytes] = []
    i = 0
    while i < len(data):
        if i + 4 > len(data):
            raise EncodingError("truncated length prefix")
        n = int.from_bytes(data[i : i + 4], "big")
        i += 4
        if i + n > len(data):
            raise EncodingError("truncated payload")
        parts.append(data[i : i + n])
        i += n
    return parts
