"""Shared low-level utilities: number theory, encoding, timing, randomness."""

from repro.utils.numth import (
    is_probable_prime,
    next_safe_prime,
    inverse_mod,
    legendre_symbol,
    sqrt_mod,
)
from repro.utils.encoding import (
    int_to_bytes,
    bytes_to_int,
    encode_length_prefixed,
    decode_length_prefixed,
)
from repro.utils.rng import SystemRNG, SeededRNG, RNG, default_rng
from repro.utils.timing import Stopwatch, StageTimer

__all__ = [
    "is_probable_prime",
    "next_safe_prime",
    "inverse_mod",
    "legendre_symbol",
    "sqrt_mod",
    "int_to_bytes",
    "bytes_to_int",
    "encode_length_prefixed",
    "decode_length_prefixed",
    "SystemRNG",
    "SeededRNG",
    "RNG",
    "default_rng",
    "Stopwatch",
    "StageTimer",
]
